//! Offline stand-in for `rayon`.
//!
//! The build container has no network access, so the workspace vendors the
//! parallel-iterator API subset it uses. Every `par_*` adapter returns the
//! corresponding **sequential** std iterator: rayon's contract is that
//! parallel iteration degrades gracefully to sequential execution, and this
//! host exposes a single core anyway (`nproc` = 1), so the sequential
//! schedule is also the optimal one. The thread-pool configuration types
//! are accepted and recorded so callers (e.g. `kemf-fl::engine`) can wire
//! `KEMF_THREADS` once and pick up real parallelism if the real crate is
//! ever swapped back in.

use std::sync::atomic::{AtomicUsize, Ordering};

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the "pool" runs: the configured count, or 1.
pub fn current_num_threads() -> usize {
    CONFIGURED_THREADS.load(Ordering::Relaxed).max(1)
}

/// Index of the current worker thread inside a pool, `None` outside one.
/// The sequential stand-in never runs inside a pool.
pub fn current_thread_index() -> Option<usize> {
    None
}

/// Error building a global pool (never produced by the stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Global thread-pool configuration (accepted, recorded, not spawned).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install as the global pool. Idempotent here; records the requested
    /// width so [`current_num_threads`] reflects the configuration.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        CONFIGURED_THREADS.store(self.num_threads.max(1), Ordering::Relaxed);
        Ok(())
    }
}

/// The `rayon::prelude` replacement: sequential `par_*` adapters.
pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelDrainRange, ParallelSlice, ParallelSliceMut,
    };

    /// Marker re-export so `use rayon::prelude::*` keeps compiling if code
    /// names the trait object.
    pub use super::ThreadPoolBuilder;
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for rayon's parallel mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for rayon's parallel chunks.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_iter` by reference.
pub trait IntoParallelRefIterator<'data> {
    /// Item type.
    type Item: 'data;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Sequential stand-in for rayon's `par_iter`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

/// `par_iter_mut` by reference.
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type.
    type Item: 'data;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Sequential stand-in for rayon's `par_iter_mut`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = std::slice::IterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.iter_mut()
    }
}

impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = std::slice::IterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.iter_mut()
    }
}

/// `into_par_iter` by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Sequential stand-in for rayon's `into_par_iter`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;

    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

/// `par_drain` on vectors.
pub trait ParallelDrainRange<T> {
    /// Sequential stand-in for rayon's `par_drain`.
    fn par_drain(&mut self, range: std::ops::RangeFull) -> std::vec::Drain<'_, T>;
}

impl<T> ParallelDrainRange<T> for Vec<T> {
    fn par_drain(&mut self, _range: std::ops::RangeFull) -> std::vec::Drain<'_, T> {
        self.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut buf = [0i32; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i as i32));
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);

        let mut src = vec![10, 20];
        let drained: Vec<i32> = src.par_drain(..).collect();
        assert_eq!(drained, vec![10, 20]);
        assert!(src.is_empty());
    }

    #[test]
    fn pool_builder_records_width() {
        super::ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(super::current_num_threads(), 3);
        assert_eq!(super::current_thread_index(), None);
    }
}
