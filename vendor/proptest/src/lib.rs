//! Offline stand-in for `proptest`.
//!
//! Keeps the property-based tests runnable without crates.io: the
//! `proptest!` macro, range and `prop::collection::vec` strategies,
//! `prop_map`, and the `prop_assert*` macros, executed as a deterministic
//! randomized sweep (fixed seed, `ProptestConfig::with_cases` cases). No
//! shrinking: a failing case reports its inputs via the panic message of
//! the assertion that tripped, which is enough to reproduce since the
//! stream is deterministic.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG driving every generated case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The fixed-seed generator each property function starts from.
    pub fn deterministic() -> Self {
        TestRng { inner: StdRng::seed_from_u64(0x9e3779b97f4a7c15) }
    }

    /// Access the underlying rand generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError { msg }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Run configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Value generators. Named `generate` rather than proptest's internal
/// machinery; only the macro calls it.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (mirrors proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng.rng(), self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng.rng(), self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The `proptest::prop` namespace replacement.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for fixed-length vectors of another strategy's values.
        pub struct VecStrategy<S> {
            element: S,
            len: usize,
        }

        /// `prop::collection::vec(element, len)`.
        pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                (0..self.len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@inner ($cfg) $($rest)*);
    };
    (@inner ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..cfg.cases {
                let outcome = (|rng: &mut $crate::TestRng|
                        -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })(&mut rng);
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed on case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@inner ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property body (reports and fails the case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -4.0f32..4.0, n in 1usize..9) {
            prop_assert!((-4.0..4.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_len_and_bounds(v in prop::collection::vec(0u64..100, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&u| u < 100));
        }

        #[test]
        fn prop_map_applies(v in prop::collection::vec(-1.0f64..1.0, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(b in 0usize..2) {
            prop_assert!(b < 2);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        proptest! {
            @inner (ProptestConfig::with_cases(1))
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
