//! Offline stand-in for the `rand` crate.
//!
//! This container builds with no network access and no crates.io mirror, so
//! the workspace vendors the small API subset it actually uses (see
//! `vendor/README.md`). The generator is xoshiro256** seeded through
//! splitmix64 — deterministic, well-mixed, and self-consistent across the
//! whole workspace, which is all the experiments require (every test that
//! involves randomness asserts *relative* properties or run-to-run
//! determinism, never a specific stream).

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers).
pub trait Standard: Sized {
    /// One standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample over a type's standard domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// ChaCha-based `StdRng`; distinct stream, same contract).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: i64 = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&v));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }
}
