//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON through the vendored `serde::Value` tree.
//! Covers the workspace's surface: `to_string`, `to_string_pretty`,
//! `from_str`, and an `Error` type. Non-finite floats serialize as
//! `null` (real serde_json errors instead; the histories and bench
//! summaries written here are always finite, so the difference never
//! bites — and `null` keeps a crash out of the metrics path if it ever
//! does).

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON error (serialization or parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse a JSON string into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ---------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Integral value: keep a fraction so it reads back as a float
        // (matches serde_json's `1.0` rendering).
        out.push_str(&format!("{f:.1}"));
    } else {
        // `{}` on floats is the shortest representation that round-trips.
        out.push_str(&format!("{f}"));
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in this
                            // workspace's identifiers; map them to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f32).unwrap(), "2.0");
        assert_eq!(to_string(&"hi\n\"there\"".to_string()).unwrap(), "\"hi\\n\\\"there\\\"\"");

        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>("\"hi\\u0041\"").unwrap(), "hiA");
    }

    #[test]
    fn float_precision_round_trips() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 3.4e38, -2.5e-7] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), x, "via {s}");
        }
        for &x in &[0.1f64, std::f64::consts::PI, 1e-300] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1.0f32, -0.5, 3.25];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.0,-0.5,3.25]");
        assert_eq!(from_str::<Vec<f32>>(&s).unwrap(), v);
        assert_eq!(from_str::<Vec<f32>>("[]").unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn pretty_printing_shape() {
        let v = vec![vec![1u64], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  [\n    1\n  ],\n  []\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("nil").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn nonfinite_serializes_as_null_reads_as_nan() {
        let s = to_string(&f32::NAN).unwrap();
        assert_eq!(s, "null");
        assert!(from_str::<f32>(&s).unwrap().is_nan());
    }
}
