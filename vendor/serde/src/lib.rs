//! Offline stand-in for `serde`.
//!
//! The container has no crates.io access, so the workspace vendors a small
//! serialization framework with the same spelling as serde: `Serialize` /
//! `Deserialize` traits plus `#[derive(Serialize, Deserialize)]` from the
//! companion `serde_derive` proc-macro. Instead of serde's visitor
//! machinery, everything round-trips through one in-memory [`Value`] tree;
//! `serde_json` (also vendored) renders and parses that tree. The derive
//! covers exactly the shapes this workspace uses: named-field structs and
//! enums with unit or struct variants, externally tagged like real serde.

pub use serde_derive::{Deserialize, Serialize};

/// In-memory serialization tree. The common currency between the derive
/// macro and format crates.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys (preserves field order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Deserialization error: a plain message, like `serde::de::Error` usage
/// in this workspace requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: &str) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Look up a required field in a decoded map.
pub fn get_field<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(&format!("missing field `{key}`")))
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    _ => return Err(DeError::custom("expected integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::custom("negative where unsigned expected"))?,
                    _ => return Err(DeError::custom("expected integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // JSON has no non-finite literals; the writer emits
                    // null for them, so null reads back as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::custom("expected number")),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i8::from_value(&Value::Int(-5)), Ok(-5));
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert_eq!(f32::from_value(&0.25f32.to_value()), Ok(0.25));
        assert_eq!(
            Vec::<usize>::from_value(&vec![1usize, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn field_lookup() {
        let map = vec![("a".to_string(), Value::Int(1))];
        assert!(get_field(&map, "a").is_ok());
        assert!(get_field(&map, "b").is_err());
    }
}
