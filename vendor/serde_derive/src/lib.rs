//! Offline stand-in for `serde_derive`.
//!
//! Emits impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! value-model traits. Written against the bare `proc_macro` API (the
//! container has no `syn`/`quote`), so it hand-parses the item token
//! stream and emits code as strings. Supported shapes are exactly what
//! this workspace derives on: named-field structs and enums whose
//! variants are unit or struct-like. Tuple structs, tuple variants,
//! generics, and `#[serde(...)]` attributes are rejected loudly rather
//! than mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item being derived on.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        /// `(variant, None)` = unit variant, `(variant, Some(fields))` =
        /// struct variant.
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

/// Skip attributes (`#[...]`, including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Field names of a `{ name: Type, ... }` body. Types are skipped with
/// angle-bracket depth tracking so `Map<K, V>`-style commas don't split
/// a field early.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected field name, found `{other}`"),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde derive: expected `:` after field `{name}` (tuple structs unsupported)"),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Parse the derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde derive: generics are not supported on `{name}`")
        }
        other => panic!(
            "serde derive: expected `{{ ... }}` body for `{name}` \
             (tuple structs unsupported), found {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => {
            let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut i = 0;
            while i < tokens.len() {
                i = skip_attrs(&tokens, i);
                let vname = match tokens.get(i) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    Some(other) => panic!("serde derive: expected variant name, found `{other}`"),
                    None => break,
                };
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        variants.push((vname, Some(parse_named_fields(g))));
                        i += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("serde derive: tuple variant `{name}::{vname}` unsupported")
                    }
                    _ => variants.push((vname, None)),
                }
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// `("a".to_string(), ::serde::Serialize::to_value(EXPR))` entries joined.
fn map_entries(fields: &[String], expr: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_value({})),",
                expr(f)
            )
        })
        .collect()
}

/// `field: ::serde::Deserialize::from_value(::serde::get_field(MAP, "field")?)?,` joined.
fn field_builders(fields: &[String], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::get_field({map_var}, \"{f}\")?)?,"
            )
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries = map_entries(&fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    None => format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                    ),
                    Some(fields) => {
                        let pat = fields.join(", ");
                        let entries = map_entries(fields, |f| f.to_string());
                        format!(
                            "{name}::{vname} {{ {pat} }} => ::serde::Value::Map(vec![\
                                 (\"{vname}\".to_string(), ::serde::Value::Map(vec![{entries}]))\
                             ]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let builders = field_builders(&fields, "fields");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let fields = v.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected map for {name}\"))?;\n\
                         let _ = &fields;\n\
                         Ok({name} {{ {builders} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|(vname, f)| f.as_ref().map(|fields| (vname, fields)))
                .map(|(vname, fields)| {
                    let builders = field_builders(fields, "fields");
                    format!(
                        "\"{vname}\" => {{\n\
                             let fields = inner.as_map().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected map for {name}::{vname}\"))?;\n\
                             let _ = &fields;\n\
                             Ok({name}::{vname} {{ {builders} }})\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError::custom(&format!(\
                                     \"unknown unit variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = &inner;\n\
                                 match tag.as_str() {{\n\
                                     {struct_arms}\n\
                                     other => Err(::serde::DeError::custom(&format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::DeError::custom(\"expected variant tag for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde derive: generated Deserialize impl parses")
}
