//! Offline stand-in for `criterion`.
//!
//! Real wall-clock measurement behind criterion's harness surface:
//! `Criterion` configuration, `benchmark_group`/`bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Per benchmark it calibrates a batch size,
//! collects `sample_size` timed batches for roughly `measurement_time`,
//! and prints min/mean/max ns per iteration. No statistics engine, HTML
//! reports, or saved baselines — comparisons are done by the caller (see
//! `kemf-bench`'s kernel summary binary).

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed batches.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self, None, id, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group; benchmark ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let group = self.name.clone();
        run_bench(self.criterion, Some(&group), id, f);
        self
    }

    /// End the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters_per_batch: u64,
    samples: usize,
    warm_up: Duration,
    /// Nanoseconds per iteration for each timed batch.
    batch_ns: Vec<f64>,
}

impl Bencher {
    /// Measure a routine. Criterion's contract: call the routine many
    /// times, timing batches, with `black_box` protection left to the
    /// caller's argument wrapping.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run untimed until the warm-up budget is spent, while
        // estimating a batch size that makes one batch ≥ ~1 ms.
        let warm_start = Instant::now();
        let mut per_iter_est = Duration::ZERO;
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let t = Instant::now();
            black_box(f());
            per_iter_est = t.elapsed();
            warm_iters += 1;
            if warm_iters > 10_000 {
                break;
            }
        }
        let per_iter_ns = per_iter_est.as_nanos().max(1) as u64;
        self.iters_per_batch = (1_000_000 / per_iter_ns).clamp(1, 1_000_000);

        self.batch_ns.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            self.batch_ns
                .push(elapsed.as_nanos() as f64 / self.iters_per_batch as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, group: Option<&str>, id: &str, mut f: F) {
    let mut b = Bencher {
        iters_per_batch: 1,
        samples: c.sample_size,
        warm_up: c.warm_up_time,
        batch_ns: Vec::new(),
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.batch_ns.is_empty() {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    let min = b.batch_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.batch_ns.iter().cloned().fold(0.0f64, f64::max);
    let mean = b.batch_ns.iter().sum::<f64>() / b.batch_ns.len() as f64;
    println!(
        "{label:<40} time: [{:>12.1} ns {:>12.1} ns {:>12.1} ns]  ({} samples x {} iters)",
        min, mean, max, b.batch_ns.len(), b.iters_per_batch
    );
}

/// Define a benchmark group function (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_times_a_routine() {
        let mut c = quick();
        c.bench_function("sum_1k", |b| {
            b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
        });
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
