//! Quickstart: train FedKEMF on a synthetic CIFAR-10-like task and watch
//! the global knowledge network's accuracy climb.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Set `KEMF_TRACE=/path/to/trace.jsonl` to record the run through a
//! [`TraceSink`]: the example writes one JSON object per round-lifecycle
//! span to that path and prints the per-phase summary table (see the
//! Observability section of EXPERIMENTS.md).

use fedkemf::prelude::*;
use fedkemf::core::fedkemf::{FedKemf, FedKemfConfig};

fn main() {
    // 1. A synthetic vision task (stands in for CIFAR-10; see DESIGN.md).
    let task = SynthTask::new(SynthConfig::cifar_like(42));
    let train = task.generate(480, 0);
    let test = task.generate(160, 1);

    // 2. Federated world: 8 clients, Dirichlet(0.1) non-IID shards,
    //    half the clients sampled each round.
    let cfg = FlConfig {
        n_clients: 8,
        sample_ratio: 0.5,
        rounds: 10,
        alpha: 0.1,
        min_per_client: 10,
        seed: 42,
        ..Default::default()
    };
    let ctx = FlContext::new(cfg, &train, test);
    println!(
        "partitioned {} samples over {} clients (heterogeneity {:.2})",
        ctx.total_train_samples(),
        cfg.n_clients,
        ctx.heterogeneity
    );

    // 3. FedKEMF: VGG-11 local models, a tiny ResNet-20 knowledge network
    //    on the wire, ensemble distillation on an unlabeled server pool.
    let knowledge = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 999);
    let clients = uniform_specs(Arch::Vgg11, cfg.n_clients, 3, 16, 10, 7);
    let pool = task.generate_unlabeled(160, 3);
    let mut algo = FedKemf::new(FedKemfConfig::uniform(knowledge, clients, pool));
    println!(
        "knowledge network on the wire: {} bytes/round/client/direction",
        algo.payload_bytes()
    );

    // 4. Train and report. With KEMF_TRACE set, record every
    //    round-lifecycle span; tracing draws no randomness, so the
    //    history is bit-identical either way.
    let trace_path = std::env::var("KEMF_TRACE").ok();
    let history = if trace_path.is_some() {
        let faults = ctx.cfg.fault_plan();
        fedkemf::fl::engine::run_recorded(&mut algo, &ctx, &faults).0
    } else {
        fedkemf::fl::engine::run(&mut algo, &ctx)
    };
    for r in &history.records {
        println!(
            "round {:>2}: test accuracy {:>5.1}%  (train loss {:.3}, {:.1} MB total)",
            r.round + 1,
            r.test_acc * 100.0,
            r.train_loss,
            r.cum_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "\nbest {:.1}% | converged {:.1}% | total communication {:.1} MB",
        history.best_accuracy() * 100.0,
        history.converged_accuracy(3) * 100.0,
        history.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 5. Export the trace, when one was recorded.
    if let Some(path) = trace_path {
        let trace = history.trace.as_ref().expect("recorded run attaches a trace");
        std::fs::write(&path, trace.to_jsonl()).expect("trace written");
        // Sanity: the export round-trips and every round is complete.
        let parsed = RunTrace::from_jsonl(&std::fs::read_to_string(&path).unwrap())
            .expect("trace parses back");
        assert_eq!(&parsed, trace);
        for round in 0..parsed.rounds() {
            for phase in Phase::ALL {
                assert!(
                    parsed.round_spans(round).iter().any(|s| s.phase == phase),
                    "round {round} missing {} span",
                    phase.name()
                );
            }
        }
        println!("\n{} spans -> {path}\n\n{}", parsed.spans.len(), parsed.summary_table());
    }
}
