//! Quickstart: train FedKEMF on a synthetic CIFAR-10-like task and watch
//! the global knowledge network's accuracy climb.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Environment knobs:
//!
//! * `KEMF_TRACE=/path/to/trace.jsonl` — record the run through a
//!   [`TraceSink`]: one JSON object per round-lifecycle span plus the
//!   per-phase summary table (see the Observability section of
//!   EXPERIMENTS.md).
//! * `KEMF_ROUNDS=n` — override the round horizon (default 10).
//! * `KEMF_CHECKPOINT=/path/to/dir` — resumable run: checkpoint every
//!   2 rounds into the directory and, when it already holds a
//!   checkpoint, resume from the newest one. Kill the process mid-run,
//!   rerun with the same directory, and the final history is
//!   bit-identical to an uninterrupted run (see "Resumable runs" in
//!   EXPERIMENTS.md).
//! * `KEMF_HISTORY=/path/to/history.json` — write the run's history JSON
//!   to that path (what the CI resume smoke diffs).

use fedkemf::prelude::*;
use fedkemf::core::fedkemf::{FedKemf, FedKemfConfig};

fn main() {
    // 1. A synthetic vision task (stands in for CIFAR-10; see DESIGN.md).
    let task = SynthTask::new(SynthConfig::cifar_like(42));
    let train = task.generate(480, 0);
    let test = task.generate(160, 1);

    // 2. Federated world: 8 clients, Dirichlet(0.1) non-IID shards,
    //    half the clients sampled each round.
    let rounds = std::env::var("KEMF_ROUNDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&r| r > 0)
        .unwrap_or(10);
    let cfg = FlConfig {
        n_clients: 8,
        sample_ratio: 0.5,
        rounds,
        alpha: 0.1,
        min_per_client: 10,
        seed: 42,
        ..Default::default()
    };
    let ctx = FlContext::new(cfg, &train, test);
    println!(
        "partitioned {} samples over {} clients (heterogeneity {:.2})",
        ctx.total_train_samples(),
        cfg.n_clients,
        ctx.heterogeneity
    );

    // 3. FedKEMF: VGG-11 local models, a tiny ResNet-20 knowledge network
    //    on the wire, ensemble distillation on an unlabeled server pool.
    let knowledge = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 999);
    let clients = uniform_specs(Arch::Vgg11, cfg.n_clients, 3, 16, 10, 7);
    let pool = task.generate_unlabeled(160, 3);
    let mut algo = FedKemf::new(FedKemfConfig::uniform(knowledge, clients, pool));
    println!(
        "knowledge network on the wire: {} bytes/round/client/direction",
        algo.payload_bytes()
    );

    // 4. Train and report. With KEMF_TRACE set, record every
    //    round-lifecycle span; tracing draws no randomness, so the
    //    history is bit-identical either way. With KEMF_CHECKPOINT set,
    //    checkpoint every 2 rounds and resume from the newest checkpoint
    //    in the directory when one exists. Note: the run fingerprint
    //    deliberately ignores the round horizon, so a checkpoint written
    //    at KEMF_ROUNDS=3 resumes cleanly toward KEMF_ROUNDS=10.
    let trace_path = std::env::var("KEMF_TRACE").ok();
    let mut opts = RunOptions::new().faults(ctx.cfg.fault_plan());
    if trace_path.is_some() {
        opts = opts.record_trace();
    }
    if let Some(dir) = std::env::var("KEMF_CHECKPOINT").ok().filter(|d| !d.is_empty()) {
        let dir = std::path::PathBuf::from(dir);
        opts = opts.checkpoint(CheckpointPolicy::new(&dir, 2));
        if matches!(fedkemf::fl::checkpoint::latest_checkpoint(&dir), Ok(Some(_))) {
            opts = opts.resume_from(&dir);
        }
    }
    let report = Engine::run(&mut algo, &ctx, opts).expect("run failed");
    if let Some(done) = report.resumed_from {
        println!("resumed from checkpoint: {done} rounds already complete");
    }
    let history = report.history;
    for r in &history.records {
        println!(
            "round {:>2}: test accuracy {:>5.1}%  (train loss {:.3}, {:.1} MB total)",
            r.round + 1,
            r.test_acc * 100.0,
            r.train_loss,
            r.cum_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "\nbest {:.1}% | converged {:.1}% | total communication {:.1} MB",
        history.best_accuracy() * 100.0,
        history.converged_accuracy(3) * 100.0,
        history.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 5. Export the history, when asked (the CI resume smoke compares
    //    these files byte for byte across straight and resumed runs).
    if let Some(path) = std::env::var("KEMF_HISTORY").ok().filter(|p| !p.is_empty()) {
        std::fs::write(&path, history.to_json()).expect("history written");
        println!("history -> {path}");
    }

    // 6. Export the trace, when one was recorded.
    if let Some(path) = trace_path {
        let trace = history.trace.as_ref().expect("recorded run attaches a trace");
        std::fs::write(&path, trace.to_jsonl()).expect("trace written");
        // Sanity: the export round-trips and every round is complete.
        let parsed = RunTrace::from_jsonl(&std::fs::read_to_string(&path).unwrap())
            .expect("trace parses back");
        assert_eq!(&parsed, trace);
        for round in 0..parsed.rounds() {
            for phase in Phase::ALL {
                assert!(
                    parsed.round_spans(round).iter().any(|s| s.phase == phase),
                    "round {round} missing {} span",
                    phase.name()
                );
            }
        }
        println!("\n{} spans -> {path}\n\n{}", parsed.spans.len(), parsed.summary_table());
    }
}
