//! Resource-aware multi-model deployment — the paper's motivating
//! scenario. A fleet of edge devices with three compute tiers each runs a
//! model sized to its hardware (ResNet-20/32/44); FedKEMF fuses all of
//! their knowledge through the shared tiny knowledge network, something
//! weight-averaging FL cannot do across architectures at all.
//!
//! ```sh
//! cargo run --release --example heterogeneous_devices
//! ```

use fedkemf::core::fedkemf::{FedKemf, FedKemfConfig};
use fedkemf::prelude::*;

fn main() {
    let task = SynthTask::new(SynthConfig::cifar_like(7));
    let train = task.generate(540, 0);
    let test = task.generate(150, 1);
    let n_clients = 9;

    // Assign device tiers: sensors → ResNet-20, phones → ResNet-32,
    // edge servers → ResNet-44.
    let tiers = assign_tiers(n_clients, 11);
    let specs = heterogeneous_specs(&tiers, 3, 16, 10, 13);
    for (k, (tier, spec)) in tiers.iter().zip(specs.iter()).enumerate() {
        println!("client {k}: {:?} device → {}", tier, spec.arch.display());
    }

    let cfg = FlConfig {
        n_clients,
        sample_ratio: 0.7,
        rounds: 8,
        alpha: 0.2,
        min_per_client: 10,
        seed: 7,
        ..Default::default()
    };
    let ctx = FlContext::new(cfg, &train, test);

    let knowledge = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 999);
    let pool = task.generate_unlabeled(180, 3);
    let mut algo = FedKemf::new(FedKemfConfig::uniform(knowledge, specs, pool));
    let history = fedkemf::fl::engine::Engine::run(&mut algo, &ctx, fedkemf::fl::engine::RunOptions::new())
        .expect("run failed")
        .history;

    println!("\nglobal knowledge network accuracy per round:");
    for r in &history.records {
        println!("  round {:>2}: {:>5.1}%", r.round + 1, r.test_acc * 100.0);
    }

    // Per-client deployed-model accuracy on fresh data from the task —
    // every device, regardless of architecture, benefited from the fleet.
    let client_tests: Vec<_> = (0..n_clients).map(|i| task.generate(60, 200 + i as u64)).collect();
    let avg = algo
        .evaluate_local_models(&client_tests, 64)
        .expect("one test set per client");
    println!("\naverage deployed-model accuracy across the fleet: {:.1}%", avg * 100.0);
}
