//! Non-IID data in federated learning, made visible. Sweeps the
//! Dirichlet concentration α, prints each partition's per-client label
//! histograms and heterogeneity score, and shows how FedAvg degrades with
//! skew while FedKEMF stays stable (the paper's Fig. 7 story).
//!
//! ```sh
//! cargo run --release --example noniid_partitioning
//! ```

use fedkemf::core::fedkemf::{FedKemf, FedKemfConfig};
use fedkemf::data::stats::client_histograms;
use fedkemf::prelude::*;

fn main() {
    let task = SynthTask::new(SynthConfig::mnist_like(1));
    let train = task.generate(400, 0);
    let test = task.generate(120, 1);

    for alpha in [100.0, 1.0, 0.1] {
        println!("\n===== Dirichlet alpha = {alpha} =====");
        let shards = dirichlet_partition(&train.labels, 10, 5, alpha, 8, 42);
        let het = heterogeneity(&train.labels, 10, &shards);
        println!("heterogeneity (mean TV distance from global): {het:.3}");
        for (k, h) in client_histograms(&train.labels, 10, &shards).iter().enumerate() {
            let bar: String = h
                .iter()
                .map(|&c| match c {
                    0 => '.',
                    1..=4 => '▂',
                    5..=9 => '▄',
                    10..=19 => '▆',
                    _ => '█',
                })
                .collect();
            println!("  client {k}: [{bar}] {h:?}");
        }

        let cfg = FlConfig {
            n_clients: 5,
            sample_ratio: 1.0,
            rounds: 6,
            alpha,
            min_per_client: 8,
            seed: 42,
            ..Default::default()
        };
        let ctx = FlContext::with_shards(cfg, &train, &shards, test.clone());

        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 5);
        let mut fedavg = FedAvg::new(spec);
        let ha = fedkemf::fl::engine::Engine::run(&mut fedavg, &ctx, fedkemf::fl::engine::RunOptions::new())
        .expect("run failed")
        .history;

        let knowledge = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 999);
        let clients = uniform_specs(Arch::Cnn2, 5, 1, 12, 10, 5);
        let pool = task.generate_unlabeled(120, 2);
        let mut kemf = FedKemf::new(FedKemfConfig::uniform(knowledge, clients, pool));
        let hk = fedkemf::fl::engine::Engine::run(&mut kemf, &ctx, fedkemf::fl::engine::RunOptions::new())
        .expect("run failed")
        .history;

        println!(
            "  FedAvg : final {:>5.1}%, tail std {:.3}",
            ha.final_accuracy() * 100.0,
            ha.tail_std(4)
        );
        println!(
            "  FedKEMF: final {:>5.1}%, tail std {:.3}",
            hk.final_accuracy() * 100.0,
            hk.tail_std(4)
        );
    }
}
