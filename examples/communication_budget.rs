//! Communication-budget comparison — the paper's headline. Runs FedAvg,
//! FedNova, SCAFFOLD, and FedKEMF on the same VGG-11 federated task and
//! reports how many bytes each needs to hit a common accuracy target,
//! using the paper-scale payload sizes for the cost arithmetic.
//!
//! ```sh
//! cargo run --release --example communication_budget
//! ```

use fedkemf::core::fedkemf::{FedKemf, FedKemfConfig};
use fedkemf::fl::comm::CostModel;
use fedkemf::fl::engine::FedAlgorithm;
use fedkemf::nn::serialize::format_bytes;
use fedkemf::prelude::*;

fn main() {
    let task = SynthTask::new(SynthConfig::cifar_like(3));
    let train = task.generate(400, 0);
    let test = task.generate(150, 1);
    let cfg = FlConfig {
        n_clients: 8,
        sample_ratio: 0.5,
        rounds: 12,
        alpha: 0.1,
        min_per_client: 8,
        seed: 3,
        ..Default::default()
    };
    let sampled = cfg.sampled_per_round();

    // Paper-scale payloads (fp32 bytes of the full-width models).
    let vgg_bytes = Model::new(ModelSpec::paper_scale(Arch::Vgg11)).state_bytes() as u64;
    let knet_bytes = Model::new(ModelSpec::paper_scale(Arch::ResNet20)).state_bytes() as u64;

    let local_spec = ModelSpec::scaled(Arch::Vgg11, 3, 16, 10, 5);
    let knowledge = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 999);
    let runs: Vec<(Box<dyn FedAlgorithm>, CostModel)> = vec![
        (Box::new(FedAvg::new(local_spec)), CostModel::symmetric(vgg_bytes, 1)),
        (Box::new(FedNova::new(local_spec)), CostModel::symmetric(vgg_bytes, 2)),
        (Box::new(Scaffold::new(local_spec)), CostModel::symmetric(vgg_bytes, 2)),
        (
            Box::new(FedKemf::new(FedKemfConfig::uniform(
                knowledge,
                uniform_specs(Arch::Vgg11, cfg.n_clients, 3, 16, 10, 5),
                task.generate_unlabeled(150, 2),
            ))),
            CostModel::symmetric(knet_bytes, 1),
        ),
    ];

    let mut results = Vec::new();
    for (mut algo, cost) in runs {
        let ctx = FlContext::new(cfg, &train, test.clone());
        let name = algo.name();
        let h = fedkemf::fl::engine::Engine::run(algo.as_mut(), &ctx, fedkemf::fl::engine::RunOptions::new())
        .expect("run failed")
        .history;
        results.push((name, h, cost));
    }
    let best = results.iter().map(|(_, h, _)| h.best_accuracy()).fold(0.0f32, f32::max);
    let target = best * 0.85;

    println!("target accuracy: {:.1}% (85% of the best run)\n", target * 100.0);
    println!(
        "{:<10} {:>8} {:>14} {:>12} {:>10}",
        "method", "rounds", "round/client", "total", "final acc"
    );
    for (name, h, cost) in &results {
        let (rounds_str, total) = match h.rounds_to_target(target) {
            Some(r) => (
                r.to_string(),
                cost.total_cost(r, sampled).expect("paper-scale cost fits u64"),
            ),
            None => (
                format!(">{}", cfg.rounds),
                cost.total_cost(cfg.rounds, sampled).expect("paper-scale cost fits u64"),
            ),
        };
        println!(
            "{:<10} {:>8} {:>14} {:>12} {:>9.1}%",
            name,
            rounds_str,
            format_bytes(
                cost.round_cost_per_client().expect("paper-scale cost fits u64") as f64
            ),
            format_bytes(total as f64),
            h.final_accuracy() * 100.0
        );
    }
    println!("\nFedKEMF ships only the knowledge network, so its per-round cost is");
    println!(
        "{} vs {} for VGG-11 weight sharing — the paper's up-to-102x saving.",
        format_bytes(2.0 * knet_bytes as f64),
        format_bytes(2.0 * vgg_bytes as f64)
    );
}
