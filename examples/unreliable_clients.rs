//! Federated learning with unreliable clients and fairness accounting.
//!
//! Real edge fleets drop out of rounds (stragglers, dead batteries, lost
//! connectivity). This example injects 40% per-round client dropout,
//! compares FedAvg with FedKEMF under it, and reports per-client fairness
//! of the final deployed models.
//!
//! ```sh
//! cargo run --release --example unreliable_clients
//! ```

use fedkemf::core::fedkemf::{FedKemf, FedKemfConfig};
use fedkemf::fl::engine::FedAlgorithm;
use fedkemf::fl::metrics::fairness_summary;
use fedkemf::prelude::*;

fn main() {
    let task = SynthTask::new(SynthConfig::mnist_like(17));
    let train = task.generate(400, 0);
    let test = task.generate(120, 1);
    let n_clients = 8;

    for dropout in [0.0f32, 0.4] {
        println!("\n===== per-round client dropout: {:.0}% =====", dropout * 100.0);
        let cfg = FlConfig {
            n_clients,
            sample_ratio: 0.75,
            rounds: 10,
            local_epochs: 2,
            alpha: 0.3,
            min_per_client: 10,
            dropout_prob: dropout,
            seed: 17,
            ..Default::default()
        };
        let ctx = FlContext::new(cfg, &train, test.clone());

        // FedAvg under dropout.
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 5);
        let mut fedavg = FedAvg::new(spec);
        let ha = fedkemf::fl::engine::run(&mut fedavg, &ctx);

        // FedKEMF under dropout.
        let knowledge = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 999);
        let clients = uniform_specs(Arch::Cnn2, n_clients, 1, 12, 10, 5);
        let pool = task.generate_unlabeled(120, 2);
        let mut kemf = FedKemf::new(FedKemfConfig::uniform(knowledge, clients, pool));
        let hk = fedkemf::fl::engine::run(&mut kemf, &ctx);

        println!(
            "FedAvg : best {:>5.1}%  final {:>5.1}%  tail std {:.3}",
            ha.best_accuracy() * 100.0,
            ha.final_accuracy() * 100.0,
            ha.tail_std(4)
        );
        println!(
            "FedKEMF: best {:>5.1}%  final {:>5.1}%  tail std {:.3}",
            hk.best_accuracy() * 100.0,
            hk.final_accuracy() * 100.0,
            hk.tail_std(4)
        );

        // Fairness: per-client accuracy of each method's deployed model on
        // every client's own data distribution (a fresh sample per client).
        let client_tests: Vec<_> =
            (0..n_clients).map(|i| task.generate(40, 500 + i as u64)).collect();
        let (gspec, gstate) = fedavg.global_model().expect("fedavg global");
        let mut deployed = Model::new(gspec);
        deployed.set_state(&gstate);
        let fedavg_accs: Vec<f32> = client_tests
            .iter()
            .map(|t| deployed.evaluate(&t.images, &t.labels, 32))
            .collect();
        // FedKEMF deploys each client's own local model.
        let kemf_accs = kemf.evaluate_local_models_per_client(&client_tests, 32);
        let fa = fairness_summary(&fedavg_accs);
        let fk = fairness_summary(&kemf_accs);
        println!(
            "fairness FedAvg : mean {:.1}% std {:.3} min {:.1}% max {:.1}%",
            fa.mean * 100.0, fa.std, fa.min * 100.0, fa.max * 100.0
        );
        println!(
            "fairness FedKEMF: mean {:.1}% std {:.3} min {:.1}% max {:.1}%",
            fk.mean * 100.0, fk.std, fk.min * 100.0, fk.max * 100.0
        );
    }
}
