//! Federated learning with unreliable clients.
//!
//! Real edge fleets fail at every phase of a round: clients miss the
//! broadcast, crash after downloading, straggle past the server's
//! deadline, or lose upload after upload to a flaky link. This example
//! drives FedAvg and FedKEMF through three reliability regimes —
//! reliable, legacy 40% post-download dropout, and a combined fault
//! storm with a round deadline and a reporting quorum — and reports what
//! the fault-aware executor records: the honest per-phase byte split
//! (downlink over the full broadcast set, accepted vs wasted uplink),
//! quorum aborts, simulated round wall-clock on a 4G link, and
//! per-client fairness of the deployed models.
//!
//! ```sh
//! cargo run --release --example unreliable_clients
//! ```

use fedkemf::core::fedkemf::{FedKemf, FedKemfConfig};
use fedkemf::fl::engine::FedAlgorithm;
use fedkemf::fl::lifecycle::RoundPlan;
use fedkemf::fl::metrics::fairness_summary;
use fedkemf::prelude::*;

fn report(h: &History, plans: &[RoundPlan], payload: WirePayload, net: &NetworkModel, deadline: Option<f64>) {
    let down: u64 = h.records.iter().map(|r| r.down_bytes).sum();
    let up: u64 = h.records.iter().map(|r| r.up_bytes).sum();
    let wasted: u64 = h.records.iter().map(|r| r.wasted_up_bytes).sum();
    let aborts = h.records.iter().filter(|r| !r.quorum_met).count();
    let wall: f64 =
        plans.iter().map(|p| net.lifecycle_round_time(p, payload, deadline)).sum::<f64>()
            / plans.len() as f64;
    println!(
        "{:<8} best {:>5.1}%  final {:>5.1}%  down {:>7}  up {:>7}  wasted {:>6}  aborts {}  ~{:.1}s/round on 4G",
        h.algorithm,
        h.best_accuracy() * 100.0,
        h.final_accuracy() * 100.0,
        down,
        up,
        wasted,
        aborts,
        wall,
    );
}

fn main() {
    let task = SynthTask::new(SynthConfig::mnist_like(17));
    let train = task.generate(400, 0);
    let test = task.generate(120, 1);
    let n_clients = 8;
    let net = NetworkModel::cellular_4g();

    // The three reliability regimes. The legacy single-knob dropout is
    // expressed through the fault plan too (drop-after-download), so the
    // executor charges its downlink honestly.
    let scenarios: [(&str, FaultConfig); 3] = [
        ("reliable fleet", FaultConfig::reliable()),
        (
            "40% post-download dropout",
            FaultConfig { drop_after_download: 0.4, ..Default::default() },
        ),
        (
            "fault storm (deadline 12s, quorum 3)",
            FaultConfig {
                drop_before_download: 0.1,
                drop_after_download: 0.15,
                straggler_prob: 0.4,
                straggler_delay_s: 40.0,
                round_deadline_s: Some(12.0),
                upload_failure_prob: 0.3,
                upload_retries: 2,
                min_quorum: 3,
            },
        ),
    ];

    for (label, faults) in scenarios {
        println!("\n===== {label} =====");
        let cfg = FlConfig {
            n_clients,
            sample_ratio: 0.75,
            rounds: 8,
            local_epochs: 2,
            alpha: 0.3,
            min_per_client: 10,
            faults,
            seed: 17,
            ..Default::default()
        };
        let ctx = FlContext::new(cfg, &train, test.clone());
        let plan = ctx.cfg.fault_plan();

        // FedAvg under this regime.
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 5);
        let mut fedavg = FedAvg::new(spec);
        let ra = Engine::run(&mut fedavg, &ctx, RunOptions::new().faults(plan))
            .expect("fedavg run failed");
        report(&ra.history, &ra.plans, fedavg.client_plans(0, &[0])[0].payload, &net, plan.round_deadline_s);

        // FedKEMF under the same regime: only the knowledge network
        // crosses the (unreliable) wire.
        let knowledge = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 999);
        let clients = uniform_specs(Arch::Cnn2, n_clients, 1, 12, 10, 5);
        let pool = task.generate_unlabeled(120, 2);
        let mut kemf = FedKemf::new(FedKemfConfig::uniform(knowledge, clients, pool));
        let rk = Engine::run(&mut kemf, &ctx, RunOptions::new().faults(plan))
            .expect("fedkemf run failed");
        report(&rk.history, &rk.plans, kemf.client_plans(0, &[0])[0].payload, &net, plan.round_deadline_s);

        // Fairness: per-client accuracy of each method's deployed model on
        // every client's own data distribution (a fresh sample per client).
        let client_tests: Vec<_> =
            (0..n_clients).map(|i| task.generate(40, 500 + i as u64)).collect();
        let (gspec, gstate) = fedavg.global_model().expect("fedavg global");
        let mut deployed = Model::new(gspec);
        deployed.set_state(&gstate);
        let fedavg_accs: Vec<f32> = client_tests
            .iter()
            .map(|t| deployed.evaluate(&t.images, &t.labels, 32))
            .collect();
        // FedKEMF deploys each client's own local model.
        let kemf_accs = kemf
            .evaluate_local_models_per_client(&client_tests, 32)
            .expect("one test set per client");
        let fa = fairness_summary(&fedavg_accs).expect("non-empty cohort");
        let fk = fairness_summary(&kemf_accs).expect("non-empty cohort");
        println!(
            "fairness FedAvg : mean {:.1}% std {:.3} min {:.1}% max {:.1}%",
            fa.mean * 100.0, fa.std, fa.min * 100.0, fa.max * 100.0
        );
        println!(
            "fairness FedKEMF: mean {:.1}% std {:.3} min {:.1}% max {:.1}%",
            fk.mean * 100.0, fk.std, fk.min * 100.0, fk.max * 100.0
        );
    }
}
