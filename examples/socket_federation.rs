//! Federated learning over a real socket transport.
//!
//! The simulator's byte accounting is closed-form arithmetic; this
//! example makes it honest. The same binary plays both roles: run it
//! plainly and it is the *server* — it spawns two copies of itself as
//! client worker processes, and every round's broadcast and upload
//! crosses localhost TCP as length-prefixed, checksummed frames carrying
//! the actual quantized global model. Spawned copies detect the
//! `KEMF_SOCKET_WORKER` environment and become workers instead.
//!
//! Faults are injected at the transport boundary: pre-download drops put
//! nothing on the wire, post-download drops arrive as genuinely
//! corrupted or truncated broadcasts the worker's checksum rejects,
//! stragglers really sleep past the deadline, and failed uploads burn
//! real retry frames. With the same seed, the recorded history is
//! byte-identical to the in-process simulation — the run ends by
//! checking exactly that.
//!
//! ```sh
//! cargo run --release --example socket_federation
//! ```

use fedkemf::fl::transport::worker_entry_if_requested;
use fedkemf::prelude::*;

fn main() {
    // Worker processes take this exit: serve frames until shutdown.
    worker_entry_if_requested();

    let task = SynthTask::new(SynthConfig::mnist_like(29));
    let train = task.generate(400, 0);
    let test = task.generate(120, 1);
    let cfg = FlConfig {
        n_clients: 8,
        sample_ratio: 0.5,
        rounds: 5,
        local_epochs: 1,
        batch_size: 16,
        alpha: 0.5,
        min_per_client: 10,
        seed: 29,
        ..Default::default()
    };
    let ctx = FlContext::new(cfg, &train, test);
    let faults = FaultConfig {
        drop_before_download: 0.1,
        drop_after_download: 0.15,
        straggler_prob: 0.2,
        straggler_delay_s: 40.0,
        round_deadline_s: Some(30.0),
        upload_failure_prob: 0.2,
        upload_retries: 2,
        ..Default::default()
    };
    let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 3);

    // Reference: the in-process simulator under the same seed and storm.
    let mut sim = FedAvg::new(spec);
    let simulated = Engine::run(&mut sim, &ctx, RunOptions::new().faults(faults))
        .expect("in-process run failed");

    // The real thing: two worker processes, same plan enacted as frames.
    let exe = std::env::current_exe().expect("own executable path");
    let scfg = SocketConfig::process(2, exe);
    let mut live = FedAvg::new(spec);
    let wired = Engine::run(
        &mut live,
        &ctx,
        RunOptions::new().faults(faults).socket_transport(scfg),
    )
    .expect("socket run failed");

    println!("round  acc%   down      up     wasted  quorum");
    for r in &wired.history.records {
        println!(
            "{:>5}  {:>5.1}  {:>7}  {:>6}  {:>6}  {}",
            r.round,
            r.test_acc * 100.0,
            r.down_bytes,
            r.up_bytes,
            r.wasted_up_bytes,
            if r.quorum_met { "met" } else { "ABORT" },
        );
    }
    let stats = wired.transport.expect("socket run reports wire stats");
    println!(
        "\nwire: {} frames out, {} in, {} payload bytes + {} framing = {} total",
        stats.frames_sent,
        stats.frames_received,
        stats.payload_total(),
        stats.framing_overhead_bytes(),
        stats.wire_bytes,
    );

    // Uploads and quorum decisions are transport-independent; the
    // downlink may only ever measure *less* than the simulator charges
    // (truncated broadcasts), never more.
    for (r, s) in simulated.history.records.iter().zip(&wired.history.records) {
        assert_eq!(r.up_bytes, s.up_bytes, "uplink accounting diverged");
        assert_eq!(r.wasted_up_bytes, s.wasted_up_bytes, "retry accounting diverged");
        assert_eq!(r.quorum_met, s.quorum_met, "quorum decision diverged");
        assert!(s.down_bytes <= r.down_bytes, "wire carried more than was sent");
    }
    println!("\nsocket run matches the simulated federation — accounting is honest.");
}
