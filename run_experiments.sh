#!/bin/bash
# Regenerate every table and figure of the paper (quick scale).
set -u
cd "$(dirname "$0")"
mkdir -p bench_results
for bin in fig4_learning_curves fig5_convergence_acc fig6_rounds_to_target \
           table1_comm_cost_target table2_comm_cost_converge table3_multimodel \
           fig7_stability ablation_ensemble ablation_knet_size hetero_baselines; do
  echo "=== $bin ==="
  cargo run --release -p kemf-bench --bin "$bin" -- "$@" || echo "FAILED: $bin"
done
