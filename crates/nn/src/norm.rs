//! Batch normalization over `[N, C, H, W]` activations (per-channel).
//!
//! Training mode normalizes with batch statistics, keeps exponential
//! running statistics for inference, and caches the normalized activations
//! for the exact batch-norm backward pass.

use crate::layer::Layer;
use crate::param::Param;
use kemf_tensor::Tensor;

/// Per-channel batch normalization.
pub struct BatchNorm2d {
    gamma: Param, // [C]
    beta: Param,  // [C]
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
    /// (x_hat, inv_std, input dims) cached during training forward.
    cache: Option<(Tensor, Vec<f32>, Vec<usize>)>,
}

impl BatchNorm2d {
    /// New batch-norm layer over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// Running mean (inference statistics), for tests and serialization.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance (inference statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        assert_eq!(c, self.channels, "BatchNorm2d expected {} channels, got {c}", self.channels);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut y = Tensor::zeros(x.dims());
        let src = x.data();
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();

        if train {
            let mut x_hat = Tensor::zeros(x.dims());
            let mut inv_stds = vec![0.0f32; c];
            for ch in 0..c {
                // Batch statistics for this channel.
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ch) * plane;
                    for &v in &src[base..base + plane] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / count as f64) as f32;
                let var = ((sq / count as f64) - (sum / count as f64).powi(2)).max(0.0) as f32;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                inv_stds[ch] = inv_std;
                self.running_mean.data_mut()[ch] =
                    (1.0 - self.momentum) * self.running_mean.data()[ch] + self.momentum * mean;
                self.running_var.data_mut()[ch] =
                    (1.0 - self.momentum) * self.running_var.data()[ch] + self.momentum * var;
                let (g, b) = (gamma[ch], beta[ch]);
                for ni in 0..n {
                    let base = (ni * c + ch) * plane;
                    for ((&sv, xv), yv) in src[base..base + plane]
                        .iter()
                        .zip(x_hat.data_mut()[base..base + plane].iter_mut())
                        .zip(y.data_mut()[base..base + plane].iter_mut())
                    {
                        let xh = (sv - mean) * inv_std;
                        *xv = xh;
                        *yv = g * xh + b;
                    }
                }
            }
            self.cache = Some((x_hat, inv_stds, x.dims().to_vec()));
        } else {
            for ch in 0..c {
                let mean = self.running_mean.data()[ch];
                let inv_std = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
                let (g, b) = (gamma[ch], beta[ch]);
                for ni in 0..n {
                    let base = (ni * c + ch) * plane;
                    for (&sv, yv) in
                        src[base..base + plane].iter().zip(y.data_mut()[base..base + plane].iter_mut())
                    {
                        *yv = g * (sv - mean) * inv_std + b;
                    }
                }
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (x_hat, inv_stds, dims) =
            self.cache.take().expect("BatchNorm2d::backward without forward(train)");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut gx = Tensor::zeros(&dims);
        let go = grad_out.data();
        let xh = x_hat.data();
        for (ch, &inv_std) in inv_stds.iter().enumerate() {
            // Channel-wise sums needed by the batch-norm gradient.
            let mut sum_g = 0.0f64;
            let mut sum_gxh = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ch) * plane;
                for i in base..base + plane {
                    sum_g += go[i] as f64;
                    sum_gxh += (go[i] as f64) * (xh[i] as f64);
                }
            }
            self.gamma.grad.data_mut()[ch] += sum_gxh as f32;
            self.beta.grad.data_mut()[ch] += sum_g as f32;
            let gamma = self.gamma.value.data()[ch];
            let mean_g = sum_g as f32 / count;
            let mean_gxh = sum_gxh as f32 / count;
            let scale = gamma * inv_std;
            for ni in 0..n {
                let base = (ni * c + ch) * plane;
                for i in base..base + plane {
                    gx.data_mut()[i] = scale * (go[i] - mean_g - xh[i] * mean_gxh);
                }
            }
        }
        gx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.running_mean);
        f(&self.running_var);
    }

    fn visit_buffers_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for BatchNorm2d {
    fn clone(&self) -> Self {
        BatchNorm2d {
            gamma: self.gamma.clone(),
            beta: self.beta.clone(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            momentum: self.momentum,
            eps: self.eps,
            channels: self.channels,
            cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;
    use kemf_tensor::rng::seeded_rng;

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = seeded_rng(5);
        let x = Tensor::randn(&[4, 2, 3, 3], 3.0, &mut rng).map(|v| v + 2.0);
        let y = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1 after normalization with γ=1, β=0.
        let (n, c, h, w) = y.shape().as_nchw();
        for ch in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                for p in 0..h * w {
                    vals.push(y.data()[(ni * c + ch) * h * w + p]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        // After many passes over the same batch, the exponential running
        // statistics converge to the *realized* batch statistics.
        let mut bn = BatchNorm2d::new(1);
        let mut rng = seeded_rng(6);
        let x = Tensor::randn(&[8, 1, 4, 4], 2.0, &mut rng).map(|v| v + 5.0);
        let mean = x.mean();
        let var = x.data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / x.numel() as f32;
        for _ in 0..80 {
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean().data()[0] - mean).abs() < 0.05, "{} vs {mean}", bn.running_mean().data()[0]);
        assert!((bn.running_var().data()[0] - var).abs() < 0.1, "{} vs {var}", bn.running_var().data()[0]);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean = Tensor::from_vec(vec![1.0], &[1]);
        bn.running_var = Tensor::from_vec(vec![4.0], &[1]);
        let x = Tensor::from_vec(vec![3.0], &[1, 1, 1, 1]);
        let y = bn.forward(&x, false);
        // (3 - 1) / 2 = 1
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gradcheck() {
        let mut bn = BatchNorm2d::new(3);
        grad_check(&mut bn, &[4, 3, 2, 2], 1e-2, 3e-2);
    }
}
