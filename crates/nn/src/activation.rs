//! Activation layers. ReLU is the only nonlinearity the FedKEMF model zoo
//! needs; it caches a 0/1 mask during training for the backward pass. The
//! mask and all outputs are pooled through the caller's [`Workspace`] on
//! the `_ws` path.

use crate::layer::Layer;
use kemf_tensor::workspace::Workspace;
use kemf_tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Clone, Default)]
pub struct ReLU {
    /// 1.0 where the input was positive, 0.0 elsewhere (pooled storage).
    mask: Option<Vec<f32>>,
}

impl ReLU {
    /// New ReLU layer.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let mut y = ws.take_tensor(x.dims());
        for (yv, &xv) in y.data_mut().iter_mut().zip(x.data().iter()) {
            *yv = xv.max(0.0);
        }
        if train {
            let mut mask = ws.take(x.numel());
            for (mv, &xv) in mask.iter_mut().zip(x.data().iter()) {
                *mv = if xv > 0.0 { 1.0 } else { 0.0 };
            }
            self.mask = Some(mask);
        }
        y
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mask = self.mask.take().expect("ReLU::backward without forward(train)");
        assert_eq!(mask.len(), grad_out.numel(), "ReLU mask/grad size mismatch");
        let mut g = ws.take_tensor(grad_out.dims());
        for ((gv, &go), &m) in g.data_mut().iter_mut().zip(grad_out.data().iter()).zip(mask.iter()) {
            *gv = go * m;
        }
        ws.recycle(mask);
        g
    }

    crate::stateless_param_impl!();

    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(ReLU { mask: None })
    }
}

/// Flatten `[N, ...]` to `[N, features]`; records the input shape so the
/// backward pass can restore it.
#[derive(Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let dims = x.dims();
        assert!(!dims.is_empty(), "Flatten needs at least one dimension");
        let batch = dims[0];
        let feat: usize = dims[1..].iter().product();
        if train {
            let mut cached = ws.take_usize(dims.len());
            cached.copy_from_slice(dims);
            self.input_dims = Some(cached);
        }
        let mut y = ws.take_tensor(&[batch, feat]);
        y.data_mut().copy_from_slice(x.data());
        y
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let dims = self.input_dims.take().expect("Flatten::backward without forward(train)");
        let mut g = ws.take_tensor(&dims);
        g.data_mut().copy_from_slice(grad_out.data());
        ws.recycle_usize(dims);
        g
    }

    crate::stateless_param_impl!();

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Flatten { input_dims: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(r.forward(&x, false).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]);
        let _ = r.forward(&x, true);
        let g = r.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_gradcheck() {
        // Keep the perturbation small relative to typical pre-activation
        // magnitudes so no element crosses the kink during the check.
        let mut r = ReLU::new();
        grad_check(&mut r, &[2, 5], 1e-3, 5e-2);
    }

    #[test]
    fn relu_workspace_path_is_pooled() {
        let mut r = ReLU::new();
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0, -0.2], &[4]);
        for _ in 0..3 {
            let y = r.forward_ws(&x, true, &mut ws);
            let g = r.backward_ws(&y, &mut ws);
            ws.recycle_tensor(y);
            ws.recycle_tensor(g);
        }
        // Warm-up: y, mask, g.
        assert_eq!(ws.fresh_allocations(), 3);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let g = f.backward(&y);
        assert_eq!(g.dims(), &[2, 3, 2, 2]);
        assert_eq!(g.data(), x.data());
    }
}
