//! Activation layers. ReLU is the only nonlinearity the FedKEMF model zoo
//! needs; it caches a sign mask during training for the backward pass.

use crate::layer::Layer;
use kemf_tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Clone, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// New ReLU layer.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(|v| v.max(0.0));
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("ReLU::backward without forward(train)");
        assert_eq!(mask.len(), grad_out.numel(), "ReLU mask/grad size mismatch");
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask.iter()) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    crate::stateless_param_impl!();

    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(ReLU { mask: None })
    }
}

/// Flatten `[N, ...]` to `[N, features]`; records the input shape so the
/// backward pass can restore it.
#[derive(Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = x.dims().to_vec();
        assert!(!dims.is_empty(), "Flatten needs at least one dimension");
        let batch = dims[0];
        let feat: usize = dims[1..].iter().product();
        if train {
            self.input_dims = Some(dims);
        }
        x.clone().reshape(&[batch, feat])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self.input_dims.take().expect("Flatten::backward without forward(train)");
        grad_out.clone().reshape(&dims)
    }

    crate::stateless_param_impl!();

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Flatten { input_dims: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(r.forward(&x, false).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]);
        let _ = r.forward(&x, true);
        let g = r.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_gradcheck() {
        // Keep the perturbation small relative to typical pre-activation
        // magnitudes so no element crosses the kink during the check.
        let mut r = ReLU::new();
        grad_check(&mut r, &[2, 5], 1e-3, 5e-2);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let g = f.backward(&y);
        assert_eq!(g.dims(), &[2, 3, 2, 2]);
        assert_eq!(g.data(), x.data());
    }
}
