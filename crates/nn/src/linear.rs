//! Fully-connected layer: `y = x · Wᵀ + b`.
//!
//! Weights are stored `[out, in]` so the forward pass is a `matmul_nt` and
//! both gradient products reuse the no-transpose kernels.

use crate::layer::Layer;
use crate::param::Param;
use kemf_tensor::ops::sum_rows;
use kemf_tensor::rng::seeded_rng;
use kemf_tensor::Tensor;

/// Dense affine layer.
pub struct Linear {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Kaiming-initialized dense layer.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        Linear {
            weight: Param::new(Tensor::kaiming(&[out_features, in_features], in_features, &mut rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (batch, feat) = x.shape().as_matrix();
        assert_eq!(feat, self.in_features, "Linear expected {} features, got {feat}", self.in_features);
        // y[b, o] = Σ_i x[b, i] W[o, i] + b[o]
        let x2 = x.clone().reshape(&[batch, feat]);
        let mut y = x2.matmul_nt(&self.weight.value);
        let b = self.bias.value.data();
        for row in y.data_mut().chunks_mut(self.out_features) {
            for (v, &bv) in row.iter_mut().zip(b.iter()) {
                *v += bv;
            }
        }
        if train {
            self.cached_input = Some(x2);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.take().expect("Linear::backward without forward(train)");
        let (batch, _) = x.shape().as_matrix();
        let g = grad_out.clone().reshape(&[batch, self.out_features]);
        // dW[o, i] = Σ_b g[b, o] x[b, i]  → gᵀ · x
        self.weight.grad.axpy(1.0, &g.matmul_tn(&x));
        // db[o] = Σ_b g[b, o]
        self.bias.grad.axpy(1.0, &sum_rows(&g));
        // dx[b, i] = Σ_o g[b, o] W[o, i] → g · W
        g.matmul(&self.weight.value)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for Linear {
    fn clone(&self) -> Self {
        Linear {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            in_features: self.in_features,
            out_features: self.out_features,
            cached_input: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;

    #[test]
    fn forward_matches_manual() {
        let mut l = Linear::new(2, 2, 0);
        l.visit_params_mut(&mut |p| p.value.fill(0.0));
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5]
        l.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        l.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn param_count() {
        let l = Linear::new(10, 4, 0);
        assert_eq!(l.param_count(), 44);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut l = Linear::new(3, 4, 1);
        grad_check(&mut l, &[2, 3], 1e-2, 2e-2);
    }

    #[test]
    fn clone_box_is_independent() {
        let l = Linear::new(3, 3, 2);
        let mut c = l.clone_box();
        c.visit_params_mut(&mut |p| p.value.fill(9.0));
        let mut orig_first = None;
        l.visit_params(&mut |p| {
            if orig_first.is_none() {
                orig_first = Some(p.value.data()[0]);
            }
        });
        assert_ne!(orig_first.unwrap(), 9.0);
    }
}
