//! Fully-connected layer: `y = x · Wᵀ + b`.
//!
//! Weights are stored `[out, in]`; the forward product runs on the packed
//! GEMM with the transpose expressed as an accessor closure and the bias
//! add fused into the epilogue (`BiasCol`). The weight gradient
//! accumulates directly into `weight.grad`, and all temporaries (the
//! cached input copy, the returned tensors) live in the caller's
//! [`Workspace`], so a steady-state step allocates nothing.

use crate::layer::{Layer, Precision};
use crate::param::Param;
use kemf_tensor::gemm::{gemm, Accumulate, BiasCol, Store};
use kemf_tensor::quant;
use kemf_tensor::rng::seeded_rng;
use kemf_tensor::workspace::Workspace;
use kemf_tensor::Tensor;

/// Dense affine layer.
pub struct Linear {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    in_features: usize,
    out_features: usize,
    precision: Precision,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Kaiming-initialized dense layer.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        Linear {
            weight: Param::new(Tensor::kaiming(&[out_features, in_features], in_features, &mut rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            precision: Precision::F32,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let (batch, feat) = x.shape().as_matrix();
        assert_eq!(feat, self.in_features, "Linear expected {} features, got {feat}", self.in_features);
        let xd = x.data();
        // y[b, o] = Σ_i x[b, i] W[o, i] + b[o]; the Wᵀ read is an accessor,
        // the bias add is the epilogue.
        let mut y = ws.take_tensor(&[batch, self.out_features]);
        match self.precision {
            Precision::F32 => gemm(
                batch,
                feat,
                self.out_features,
                |bi, i| xd[bi * feat + i],
                |i, o| self.weight.value.data()[o * feat + i],
                &mut BiasCol {
                    c: y.data_mut(),
                    ldc: self.out_features,
                    bias: self.bias.value.data(),
                },
            ),
            Precision::Int8 => {
                // A = x per-row, B = Wᵀ per-column (one packed column per
                // contiguous weight row); the dequantizing epilogue reuses
                // the fused bias writer unchanged.
                let out = self.out_features;
                let mut qa = ws.take_i8(quant::a_codes_len(batch, feat));
                let mut sa = ws.take(batch);
                quant::quantize_a_rows(xd, batch, feat, &mut qa, &mut sa);
                let mut bp = ws.take_i8(quant::b_pack_len(feat, out));
                let mut sb = ws.take(out);
                quant::pack_b_transposed(self.weight.value.data(), out, feat, &mut bp, &mut sb);
                quant::gemm_i8(
                    batch,
                    feat,
                    out,
                    &qa,
                    &sa,
                    &bp,
                    &sb,
                    &mut BiasCol { c: y.data_mut(), ldc: out, bias: self.bias.value.data() },
                );
                ws.recycle_i8(qa);
                ws.recycle_i8(bp);
                ws.recycle(sa);
                ws.recycle(sb);
            }
        }
        if train {
            let mut cached = ws.take_tensor(&[batch, feat]);
            cached.data_mut().copy_from_slice(xd);
            self.cached_input = Some(cached);
        }
        y
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self.cached_input.take().expect("Linear::backward without forward(train)");
        let (batch, feat) = x.shape().as_matrix();
        let out = self.out_features;
        let g = grad_out.data();
        assert_eq!(g.len(), batch * out, "Linear grad_out size mismatch");
        // dW[o, i] += Σ_b g[b, o] x[b, i] — straight into the parameter
        // gradient, no staging matrix.
        gemm(
            out,
            batch,
            feat,
            |o, bi| g[bi * out + o],
            |bi, i| x.data()[bi * feat + i],
            &mut Accumulate { c: self.weight.grad.data_mut(), ldc: feat },
        );
        // db[o] += Σ_b g[b, o]
        {
            let db = self.bias.grad.data_mut();
            for row in g.chunks_exact(out) {
                for (dbo, &gv) in db.iter_mut().zip(row.iter()) {
                    *dbo += gv;
                }
            }
        }
        // dx[b, i] = Σ_o g[b, o] W[o, i]
        let mut dx = ws.take_tensor(&[batch, feat]);
        gemm(
            batch,
            out,
            feat,
            |bi, o| g[bi * out + o],
            |o, i| self.weight.value.data()[o * feat + i],
            &mut Store { c: dx.data_mut(), ldc: feat },
        );
        ws.recycle_tensor(x);
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn set_precision(&mut self, p: Precision) {
        self.precision = p;
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for Linear {
    fn clone(&self) -> Self {
        Linear {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            in_features: self.in_features,
            out_features: self.out_features,
            precision: self.precision,
            cached_input: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;

    #[test]
    fn forward_matches_manual() {
        let mut l = Linear::new(2, 2, 0);
        l.visit_params_mut(&mut |p| p.value.fill(0.0));
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5]
        l.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        l.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn param_count() {
        let l = Linear::new(10, 4, 0);
        assert_eq!(l.param_count(), 44);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut l = Linear::new(3, 4, 1);
        grad_check(&mut l, &[2, 3], 1e-2, 2e-2);
    }

    #[test]
    fn workspace_path_matches_plain_path() {
        use kemf_tensor::rng::seeded_rng;
        let mut a = Linear::new(6, 4, 9);
        let mut b = a.clone();
        let mut ws = Workspace::new();
        let mut rng = seeded_rng(10);
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng);
        let g = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let ya = a.forward(&x, true);
        let yb = b.forward_ws(&x, true, &mut ws);
        kemf_tensor::assert_close(ya.data(), yb.data(), 1e-5);
        let gxa = a.backward(&g);
        let gxb = b.backward_ws(&g, &mut ws);
        kemf_tensor::assert_close(gxa.data(), gxb.data(), 1e-5);
        let mut grads_a = Vec::new();
        a.visit_params(&mut |p| grads_a.push(p.grad.clone()));
        let mut grads_b = Vec::new();
        b.visit_params(&mut |p| grads_b.push(p.grad.clone()));
        for (ga, gb) in grads_a.iter().zip(grads_b.iter()) {
            kemf_tensor::assert_close(ga.data(), gb.data(), 1e-5);
        }
    }

    #[test]
    fn int8_forward_tracks_f32_forward() {
        use kemf_tensor::rng::seeded_rng;
        let mut l = Linear::new(48, 10, 3);
        let mut rng = seeded_rng(4);
        let x = Tensor::randn(&[8, 48], 1.0, &mut rng);
        let exact = l.forward(&x, false);
        l.set_precision(crate::layer::Precision::Int8);
        let quantized = l.forward(&x, false);
        // Per-element error must stay within the analytic quantization
        // bound (with slack for f32 accumulation order).
        let xd = x.data();
        let wd = l.weight.value.data();
        for b in 0..8 {
            let row = &xd[b * 48..(b + 1) * 48];
            let max_a = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            for o in 0..10 {
                let col = &wd[o * 48..(o + 1) * 48];
                let max_b = col.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let bound =
                    quant::error_bound(48, max_a, max_a / 127.0, max_b, max_b / 127.0) * 1.05
                        + 1e-4;
                let err = (exact.data()[b * 10 + o] - quantized.data()[b * 10 + o]).abs();
                assert!(err <= bound, "({b},{o}): err {err} > bound {bound}");
            }
        }
        // Flipping back restores the exact path bit-for-bit.
        l.set_precision(crate::layer::Precision::F32);
        let again = l.forward(&x, false);
        assert_eq!(exact.data(), again.data());
    }

    #[test]
    fn clone_box_is_independent() {
        let l = Linear::new(3, 3, 2);
        let mut c = l.clone_box();
        c.visit_params_mut(&mut |p| p.value.fill(9.0));
        let mut orig_first = None;
        l.visit_params(&mut |p| {
            if orig_first.is_none() {
                orig_first = Some(p.value.data()[0]);
            }
        });
        assert_ne!(orig_first.unwrap(), 9.0);
    }
}
