//! Trainable parameters: a value tensor paired with its gradient
//! accumulator. Layers expose their parameters through the visitor methods
//! on [`crate::layer::Layer`], in a deterministic order that the optimizer
//! and the federated aggregation code both rely on.

use kemf_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable tensor with its gradient.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient of the last backward pass (accumulated until
    /// [`Param::zero_grad`]).
    pub grad: Tensor,
}

impl Param {
    /// Wrap an initial value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Reset the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// SGD step: `value -= lr * grad` (plain, no momentum — the optimizer
    /// in [`crate::optim`] implements the full update rule).
    pub fn sgd_step(&mut self, lr: f32) {
        self.value.axpy(-lr, &self.grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        p.sgd_step(0.5);
        assert_eq!(p.value.data(), &[0.5, 2.0]);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad = Tensor::ones(&[2]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
