//! 2-D convolution, lowered to matrix multiplication through `im2col`.
//!
//! The filter bank is stored as a `[O, C·KH·KW]` matrix so the forward pass
//! is one GEMM, the weight gradient a second, and the input gradient a
//! third followed by a `col2im` scatter. All three products run on the
//! packed engine in `kemf_tensor::gemm` with layout expressed as accessor
//! closures, which buys two structural wins over materialized operands:
//!
//! * the forward bias-add and the `[O, N·OH·OW] → [N, O, OH, OW]` reorder
//!   fuse into the GEMM epilogue (`NchwScatterBias`) — the `out_mat`
//!   intermediate and a full-tensor copy disappear;
//! * both backward products read the incoming `[N, O, OH, OW]` gradient
//!   *in place* through an index closure — the former `nchw_to_ocols`
//!   reorder copy disappears, and the weight gradient accumulates directly
//!   into `weight.grad` with no `dw` staging buffer.
//!
//! Every remaining temporary (`cols`, `dcols`, outputs) lives in the
//! caller's [`Workspace`], so a steady-state training step allocates
//! nothing.

use crate::layer::{Layer, Precision};
use crate::param::Param;
use kemf_tensor::conv::{col2im, im2col, ConvGeom};
use kemf_tensor::gemm::{gemm, Accumulate, NchwScatterBias, Store};
use kemf_tensor::quant;
use kemf_tensor::rng::seeded_rng;
use kemf_tensor::workspace::Workspace;
use kemf_tensor::Tensor;

/// Convolutional layer (`[N, C, H, W] → [N, O, OH, OW]`).
pub struct Conv2d {
    weight: Param, // [O, C*KH*KW]
    bias: Param,   // [O]
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    precision: Precision,
    /// (im2col matrix, geometry) cached during training forward.
    cache: Option<(Vec<f32>, ConvGeom)>,
}

impl Conv2d {
    /// Kaiming-initialized square convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let mut rng = seeded_rng(seed);
        let patch = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(Tensor::kaiming(&[out_channels, patch], patch, &mut rng)),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            precision: Precision::F32,
            cache: None,
        }
    }

    /// Layer geometry for a given input.
    fn geom(&self, x: &Tensor) -> ConvGeom {
        let (n, c, h, w) = x.shape().as_nchw();
        assert_eq!(c, self.in_channels, "Conv2d expected {} channels, got {c}", self.in_channels);
        ConvGeom { n, c, h, w, kh: self.kernel, kw: self.kernel, stride: self.stride, pad: self.pad }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let geom = self.geom(x);
        let (oh, ow) = (geom.oh(), geom.ow());
        let plane = oh * ow;
        let ncols = geom.cols();
        let patch = geom.patch_len();
        let mut cols = ws.take(patch * ncols);
        im2col(x.data(), &geom, &mut cols);
        // y[n, o, oy, ox] = Σ_p W[o, p] cols[p, (n·oh+oy)·ow+ox] + b[o]:
        // one GEMM whose epilogue scatters straight into NCHW with the
        // bias added, replacing a staging matrix + reorder copy.
        let mut y = ws.take_tensor(&[geom.n, self.out_channels, oh, ow]);
        match self.precision {
            Precision::F32 => gemm(
                self.out_channels,
                patch,
                ncols,
                |oi, p| self.weight.value.data()[oi * patch + p],
                |p, col| cols[p * ncols + col],
                &mut NchwScatterBias {
                    out: y.data_mut(),
                    o: self.out_channels,
                    plane,
                    bias: self.bias.value.data(),
                },
            ),
            Precision::Int8 => {
                // A = filter bank per-row, B = im2col matrix per-column;
                // the dequantizing epilogue reuses the fused NCHW scatter.
                let o = self.out_channels;
                let mut qa = ws.take_i8(quant::a_codes_len(o, patch));
                let mut sa = ws.take(o);
                quant::quantize_a_rows(self.weight.value.data(), o, patch, &mut qa, &mut sa);
                let mut bp = ws.take_i8(quant::b_pack_len(patch, ncols));
                let mut sb = ws.take(ncols);
                quant::pack_b_rowmajor(&cols, patch, ncols, &mut bp, &mut sb);
                quant::gemm_i8(
                    o,
                    patch,
                    ncols,
                    &qa,
                    &sa,
                    &bp,
                    &sb,
                    &mut NchwScatterBias {
                        out: y.data_mut(),
                        o,
                        plane,
                        bias: self.bias.value.data(),
                    },
                );
                ws.recycle_i8(qa);
                ws.recycle_i8(bp);
                ws.recycle(sa);
                ws.recycle(sb);
            }
        }
        if train {
            self.cache = Some((cols, geom));
        } else {
            ws.recycle(cols);
        }
        y
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let (cols, geom) = self.cache.take().expect("Conv2d::backward without forward(train)");
        let plane = geom.oh() * geom.ow();
        let ncols = geom.cols();
        let patch = geom.patch_len();
        let o = self.out_channels;
        let g = grad_out.data();
        assert_eq!(g.len(), geom.n * o * plane, "Conv2d grad_out size mismatch");
        // The incoming gradient, read as a `[O, N·OH·OW]` matrix without
        // materializing the reorder.
        let g_at = move |oi: usize, col: usize| {
            let ni = col / plane;
            let p = col - ni * plane;
            g[(ni * o + oi) * plane + p]
        };

        // dW[o, p] += Σ_col g[o, col] cols[p, col] — accumulated directly
        // into the parameter gradient.
        gemm(
            o,
            ncols,
            patch,
            g_at,
            |col, p| cols[p * ncols + col],
            &mut Accumulate { c: self.weight.grad.data_mut(), ldc: patch },
        );
        // db[o] += Σ_col g[o, col]
        {
            let db = self.bias.grad.data_mut();
            for ni in 0..geom.n {
                for (oi, dbo) in db.iter_mut().enumerate() {
                    let row = &g[(ni * o + oi) * plane..(ni * o + oi + 1) * plane];
                    *dbo += row.iter().sum::<f32>();
                }
            }
        }
        // dcols[p, col] = Σ_o W[o, p] g[o, col]
        let mut dcols = ws.take(patch * ncols);
        gemm(
            patch,
            o,
            ncols,
            |p, oi| self.weight.value.data()[oi * patch + p],
            g_at,
            &mut Store { c: &mut dcols, ldc: ncols },
        );
        let mut gx = ws.take_tensor(&[geom.n, geom.c, geom.h, geom.w]);
        col2im(&dcols, &geom, gx.data_mut());
        ws.recycle(dcols);
        ws.recycle(cols);
        gx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn set_precision(&mut self, p: Precision) {
        self.precision = p;
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for Conv2d {
    fn clone(&self) -> Self {
        Conv2d {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
            precision: self.precision,
            cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;
    use kemf_tensor::assert_close;
    use kemf_tensor::conv::conv2d_reference;
    use kemf_tensor::rng::seeded_rng;

    #[test]
    fn forward_matches_reference() {
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, 42);
        let mut rng = seeded_rng(13);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let fast = conv.forward(&x, false);
        let w4 = conv.weight.value.clone().reshape(&[4, 3, 3, 3]);
        let slow = conv2d_reference(&x, &w4, Some(conv.bias.value.data()), 1, 1);
        assert_eq!(fast.dims(), slow.dims());
        assert_close(fast.data(), slow.data(), 1e-4);
    }

    #[test]
    fn strided_forward_matches_reference() {
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, 7);
        let mut rng = seeded_rng(14);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        let fast = conv.forward(&x, false);
        let w4 = conv.weight.value.clone().reshape(&[3, 2, 3, 3]);
        let slow = conv2d_reference(&x, &w4, Some(conv.bias.value.data()), 2, 1);
        assert_eq!(fast.dims(), &[1, 3, 4, 4]);
        assert_close(fast.data(), slow.data(), 1e-4);
    }

    #[test]
    fn gradcheck() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 3);
        grad_check(&mut conv, &[2, 2, 4, 4], 1e-2, 3e-2);
    }

    #[test]
    fn gradcheck_strided() {
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, 4);
        grad_check(&mut conv, &[1, 1, 5, 5], 1e-2, 3e-2);
    }

    #[test]
    fn workspace_path_matches_plain_path() {
        let mut a = Conv2d::new(3, 5, 3, 2, 1, 21);
        let mut b = a.clone();
        let mut ws = Workspace::new();
        let mut rng = seeded_rng(22);
        let x = Tensor::randn(&[2, 3, 7, 7], 1.0, &mut rng);
        let g = Tensor::randn(&[2, 5, 4, 4], 1.0, &mut rng);

        let ya = a.forward(&x, true);
        let yb = b.forward_ws(&x, true, &mut ws);
        assert_close(ya.data(), yb.data(), 1e-5);
        let gxa = a.backward(&g);
        let gxb = b.backward_ws(&g, &mut ws);
        assert_close(gxa.data(), gxb.data(), 1e-5);
        // Compare parameter gradients pairwise in visit order.
        let mut grads_a = Vec::new();
        a.visit_params(&mut |p| grads_a.push(p.grad.clone()));
        let mut grads_b = Vec::new();
        b.visit_params(&mut |p| grads_b.push(p.grad.clone()));
        for (ga, gb) in grads_a.iter().zip(grads_b.iter()) {
            assert_close(ga.data(), gb.data(), 1e-5);
        }
    }

    #[test]
    fn steady_state_training_step_hits_the_pool() {
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, 30);
        let mut ws = Workspace::new();
        let mut rng = seeded_rng(31);
        let x = Tensor::randn(&[2, 2, 6, 6], 1.0, &mut rng);
        let g = Tensor::randn(&[2, 4, 6, 6], 1.0, &mut rng);
        for _ in 0..3 {
            let y = conv.forward_ws(&x, true, &mut ws);
            ws.recycle_tensor(y);
            let gx = conv.backward_ws(&g, &mut ws);
            ws.recycle_tensor(gx);
        }
        // Warm-up takes: cols, y, dcols (gx best-fits into y's recycled
        // buffer, and its dims reuse y's recycled dims).
        assert_eq!(ws.fresh_allocations(), 3, "f32 pool misses after warm-up");
        assert_eq!(ws.fresh_usize_allocations(), 1, "dims pool misses after warm-up");
    }

    #[test]
    fn int8_forward_stays_close_to_f32() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 55);
        let mut rng = seeded_rng(56);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let exact = conv.forward(&x, false);
        conv.set_precision(crate::layer::Precision::Int8);
        let quantized = conv.forward(&x, false);
        assert_eq!(exact.dims(), quantized.dims());
        // Quantization error scales with output magnitude; 2·127 levels
        // over a 27-element patch keeps relative error small.
        let max_out = exact.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for (e, q) in exact.data().iter().zip(quantized.data()) {
            assert!((e - q).abs() <= 0.05 * max_out + 1e-3, "{e} vs {q}");
        }
        // Switching back restores the exact path.
        conv.set_precision(crate::layer::Precision::F32);
        let again = conv.forward(&x, false);
        assert_eq!(exact.data(), again.data());
    }

    #[test]
    fn fused_backward_is_the_adjoint_of_forward() {
        // With zero bias, convolution is linear in x and in W, so its
        // backward pass must satisfy the adjoint identities exactly:
        //   ⟨conv(x; W), g⟩ = ⟨x, ∂x⟩ = ⟨W, ∂W⟩.
        // This pins the fused epilogue/closure index math (NCHW scatter in
        // the forward, in-place NCHW gather in the backward) to the
        // forward semantics without a reference implementation.
        for &(cin, cout, k, stride, pad, hw) in
            &[(3usize, 5usize, 3usize, 1usize, 1usize, 7usize), (2, 4, 3, 2, 1, 8), (4, 6, 1, 1, 0, 5)]
        {
            let mut conv = Conv2d::new(cin, cout, k, stride, pad, 77);
            conv.bias.value.fill(0.0);
            let mut rng = seeded_rng(78);
            let x = Tensor::randn(&[2, cin, hw, hw], 1.0, &mut rng);
            let y = conv.forward(&x, true);
            let g = Tensor::randn(y.dims(), 1.0, &mut rng);
            conv.zero_grad();
            let gx = conv.backward(&g);
            let ygdot = y.dot(&g);
            let xdot = x.dot(&gx);
            let wdot = conv.weight.value.dot(&conv.weight.grad);
            let tol = 1e-3 * ygdot.abs().max(1.0);
            assert!((ygdot - xdot).abs() < tol, "input adjoint: {ygdot} vs {xdot}");
            assert!((ygdot - wdot).abs() < tol, "weight adjoint: {ygdot} vs {wdot}");
        }
    }

    #[test]
    fn param_count() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, 0);
        assert_eq!(conv.param_count(), 8 * 3 * 9 + 8);
    }
}
