//! 2-D convolution, lowered to matrix multiplication through `im2col`.
//!
//! The filter bank is stored as a `[O, C·KH·KW]` matrix so the forward pass
//! is one GEMM, the weight gradient a second, and the input gradient a
//! third followed by a `col2im` scatter.

use crate::layer::Layer;
use crate::param::Param;
use kemf_tensor::conv::{col2im, im2col, ConvGeom};
use kemf_tensor::matmul::{matmul_into, matmul_nt_into, matmul_tn_into};
use kemf_tensor::rng::seeded_rng;
use kemf_tensor::Tensor;

/// Convolutional layer (`[N, C, H, W] → [N, O, OH, OW]`).
pub struct Conv2d {
    weight: Param, // [O, C*KH*KW]
    bias: Param,   // [O]
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// (im2col matrix, geometry) cached during training forward.
    cache: Option<(Vec<f32>, ConvGeom)>,
}

impl Conv2d {
    /// Kaiming-initialized square convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let mut rng = seeded_rng(seed);
        let patch = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(Tensor::kaiming(&[out_channels, patch], patch, &mut rng)),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            cache: None,
        }
    }

    /// Layer geometry for a given input.
    fn geom(&self, x: &Tensor) -> ConvGeom {
        let (n, c, h, w) = x.shape().as_nchw();
        assert_eq!(c, self.in_channels, "Conv2d expected {} channels, got {c}", self.in_channels);
        ConvGeom { n, c, h, w, kh: self.kernel, kw: self.kernel, stride: self.stride, pad: self.pad }
    }

    /// Reorder a `[N, O, OH, OW]` gradient into `[O, N·OH·OW]` GEMM layout.
    fn nchw_to_ocols(g: &Tensor, n: usize, o: usize, plane: usize) -> Vec<f32> {
        let ncols = n * plane;
        let mut out = vec![0.0f32; o * ncols];
        let src = g.data();
        for ni in 0..n {
            for oi in 0..o {
                let s = &src[(ni * o + oi) * plane..(ni * o + oi + 1) * plane];
                let d = &mut out[oi * ncols + ni * plane..oi * ncols + (ni + 1) * plane];
                d.copy_from_slice(s);
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let geom = self.geom(x);
        let (oh, ow) = (geom.oh(), geom.ow());
        let plane = oh * ow;
        let ncols = geom.cols();
        let patch = geom.patch_len();
        let mut cols = vec![0.0f32; patch * ncols];
        im2col(x.data(), &geom, &mut cols);
        let mut out_mat = vec![0.0f32; self.out_channels * ncols];
        matmul_into(self.weight.value.data(), &cols, &mut out_mat, self.out_channels, patch, ncols);
        // Add bias and reorder [O, N·OH·OW] → [N, O, OH, OW].
        let mut y = Tensor::zeros(&[geom.n, self.out_channels, oh, ow]);
        {
            let d = y.data_mut();
            let b = self.bias.value.data();
            for oi in 0..self.out_channels {
                let bv = b[oi];
                for ni in 0..geom.n {
                    let src = &out_mat[oi * ncols + ni * plane..oi * ncols + (ni + 1) * plane];
                    let dst = &mut d
                        [(ni * self.out_channels + oi) * plane..(ni * self.out_channels + oi + 1) * plane];
                    for (dv, &sv) in dst.iter_mut().zip(src.iter()) {
                        *dv = sv + bv;
                    }
                }
            }
        }
        if train {
            self.cache = Some((cols, geom));
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (cols, geom) = self.cache.take().expect("Conv2d::backward without forward(train)");
        let (oh, ow) = (geom.oh(), geom.ow());
        let plane = oh * ow;
        let ncols = geom.cols();
        let patch = geom.patch_len();
        let o = self.out_channels;
        let g_mat = Self::nchw_to_ocols(grad_out, geom.n, o, plane);

        // dW[o, p] = Σ_col g[o, col] cols[p, col]  →  G · colsᵀ
        let mut dw = vec![0.0f32; o * patch];
        matmul_nt_into(&g_mat, &cols, &mut dw, o, ncols, patch);
        for (acc, &v) in self.weight.grad.data_mut().iter_mut().zip(dw.iter()) {
            *acc += v;
        }
        // db[o] = Σ_col g[o, col]
        for oi in 0..o {
            let s: f32 = g_mat[oi * ncols..(oi + 1) * ncols].iter().sum();
            self.bias.grad.data_mut()[oi] += s;
        }
        // dcols[p, col] = Σ_o W[o, p] g[o, col]  →  Wᵀ · G
        let mut dcols = vec![0.0f32; patch * ncols];
        matmul_tn_into(self.weight.value.data(), &g_mat, &mut dcols, patch, o, ncols);
        let mut gx = Tensor::zeros(&[geom.n, geom.c, geom.h, geom.w]);
        col2im(&dcols, &geom, gx.data_mut());
        gx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for Conv2d {
    fn clone(&self) -> Self {
        Conv2d {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
            cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;
    use kemf_tensor::assert_close;
    use kemf_tensor::conv::conv2d_reference;
    use kemf_tensor::rng::seeded_rng;

    #[test]
    fn forward_matches_reference() {
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, 42);
        let mut rng = seeded_rng(13);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let fast = conv.forward(&x, false);
        let w4 = conv.weight.value.clone().reshape(&[4, 3, 3, 3]);
        let slow = conv2d_reference(&x, &w4, Some(conv.bias.value.data()), 1, 1);
        assert_eq!(fast.dims(), slow.dims());
        assert_close(fast.data(), slow.data(), 1e-4);
    }

    #[test]
    fn strided_forward_matches_reference() {
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, 7);
        let mut rng = seeded_rng(14);
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, &mut rng);
        let fast = conv.forward(&x, false);
        let w4 = conv.weight.value.clone().reshape(&[3, 2, 3, 3]);
        let slow = conv2d_reference(&x, &w4, Some(conv.bias.value.data()), 2, 1);
        assert_eq!(fast.dims(), &[1, 3, 4, 4]);
        assert_close(fast.data(), slow.data(), 1e-4);
    }

    #[test]
    fn gradcheck() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 3);
        grad_check(&mut conv, &[2, 2, 4, 4], 1e-2, 3e-2);
    }

    #[test]
    fn gradcheck_strided() {
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, 4);
        grad_check(&mut conv, &[1, 1, 5, 5], 1e-2, 3e-2);
    }

    #[test]
    fn param_count() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, 0);
        assert_eq!(conv.param_count(), 8 * 3 * 9 + 8);
    }
}
