//! Weight (de)serialization and payload-size accounting.
//!
//! Federated algorithms move model weights as a single flat `Vec<f32>` in
//! the deterministic parameter visit order. [`Weights`] is that flat view
//! plus enough metadata to sanity-check a restore; byte accounting assumes
//! 4-byte floats, matching the paper's communication-cost arithmetic.

use crate::layer::Layer;
use serde::{Deserialize, Serialize};

/// Flat snapshot of a network's trainable parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Concatenated parameter values in visit order.
    pub values: Vec<f32>,
    /// Per-parameter element counts, for shape checking on restore.
    pub lens: Vec<usize>,
}

impl Weights {
    /// Extract a snapshot from a network.
    pub fn from_layer(net: &dyn Layer) -> Self {
        let mut values = Vec::new();
        let mut lens = Vec::new();
        net.visit_params(&mut |p| {
            values.extend_from_slice(p.value.data());
            lens.push(p.numel());
        });
        Weights { values, lens }
    }

    /// Extract a snapshot of the *gradients* (used by SCAFFOLD-style
    /// control-variate algorithms).
    pub fn grads_from_layer(net: &dyn Layer) -> Self {
        let mut values = Vec::new();
        let mut lens = Vec::new();
        net.visit_params(&mut |p| {
            values.extend_from_slice(p.grad.data());
            lens.push(p.numel());
        });
        Weights { values, lens }
    }

    /// Write this snapshot into a network with the same parameter layout.
    pub fn apply_to(&self, net: &mut dyn Layer) {
        let mut offset = 0usize;
        let mut idx = 0usize;
        net.visit_params_mut(&mut |p| {
            assert!(idx < self.lens.len(), "weights have fewer parameters than network");
            let n = p.numel();
            assert_eq!(self.lens[idx], n, "parameter {idx} size mismatch");
            p.value.data_mut().copy_from_slice(&self.values[offset..offset + n]);
            offset += n;
            idx += 1;
        });
        assert_eq!(idx, self.lens.len(), "network has fewer parameters than weights");
    }

    /// Total scalar count.
    pub fn numel(&self) -> usize {
        self.values.len()
    }

    /// Serialized size in bytes (fp32).
    pub fn bytes(&self) -> usize {
        self.values.len() * 4
    }

    /// `self = self * a + other * b`, element-wise.
    pub fn scale_add(&mut self, a: f32, other: &Weights, b: f32) {
        assert_eq!(self.values.len(), other.values.len(), "weights length mismatch");
        for (x, &y) in self.values.iter_mut().zip(other.values.iter()) {
            *x = *x * a + y * b;
        }
    }

    /// Element-wise difference `self − other`.
    pub fn delta(&self, other: &Weights) -> Weights {
        assert_eq!(self.values.len(), other.values.len(), "weights length mismatch");
        Weights {
            values: self
                .values
                .iter()
                .zip(other.values.iter())
                .map(|(&a, &b)| a - b)
                .collect(),
            lens: self.lens.clone(),
        }
    }

    /// All-zero snapshot with the same layout.
    pub fn zeros_like(&self) -> Weights {
        Weights { values: vec![0.0; self.values.len()], lens: self.lens.clone() }
    }

    /// L2 norm of the flat vector.
    pub fn norm(&self) -> f32 {
        self.values.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt() as f32
    }

    /// Weighted average of several snapshots (FedAvg's core). Weights are
    /// normalized internally; panics on empty input or mismatched layouts.
    pub fn weighted_average(snapshots: &[Weights], coeffs: &[f32]) -> Weights {
        assert!(!snapshots.is_empty(), "average of zero snapshots");
        assert_eq!(snapshots.len(), coeffs.len(), "snapshot/coefficient count mismatch");
        let total: f32 = coeffs.iter().sum();
        assert!(total > 0.0, "coefficients must sum to a positive value");
        let mut out = snapshots[0].zeros_like();
        for (snap, &c) in snapshots.iter().zip(coeffs.iter()) {
            assert_eq!(snap.values.len(), out.values.len(), "layout mismatch");
            let w = c / total;
            for (o, &v) in out.values.iter_mut().zip(snap.values.iter()) {
                *o += w * v;
            }
        }
        out
    }
}

impl Weights {
    /// Snapshot the non-trainable buffers (batch-norm running statistics)
    /// of a network, in buffer visit order.
    pub fn buffers_from_layer(net: &dyn Layer) -> Weights {
        let mut values = Vec::new();
        let mut lens = Vec::new();
        net.visit_buffers(&mut |t| {
            values.extend_from_slice(t.data());
            lens.push(t.numel());
        });
        Weights { values, lens }
    }

    /// Restore buffers captured by [`Weights::buffers_from_layer`].
    pub fn apply_buffers_to(&self, net: &mut dyn Layer) {
        let mut offset = 0usize;
        let mut idx = 0usize;
        net.visit_buffers_mut(&mut |t| {
            assert!(idx < self.lens.len(), "buffer snapshot has fewer entries than network");
            let n = t.numel();
            assert_eq!(self.lens[idx], n, "buffer {idx} size mismatch");
            t.data_mut().copy_from_slice(&self.values[offset..offset + n]);
            offset += n;
            idx += 1;
        });
        assert_eq!(idx, self.lens.len(), "network has fewer buffers than snapshot");
    }
}

/// Everything a federated algorithm transmits for one model: trainable
/// parameters plus the batch-norm running statistics that must accompany
/// them for the receiver to run inference.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelState {
    /// Trainable parameters.
    pub params: Weights,
    /// Non-trainable buffers (running statistics).
    pub buffers: Weights,
}

impl ModelState {
    /// Capture from a network.
    pub fn from_layer(net: &dyn Layer) -> Self {
        ModelState {
            params: Weights::from_layer(net),
            buffers: Weights::buffers_from_layer(net),
        }
    }

    /// Restore into a network with the same layout.
    pub fn apply_to(&self, net: &mut dyn Layer) {
        self.params.apply_to(net);
        self.buffers.apply_buffers_to(net);
    }

    /// Transmitted size in bytes (fp32).
    pub fn bytes(&self) -> usize {
        self.params.bytes() + self.buffers.bytes()
    }

    /// Weighted average of parameter *and* buffer snapshots.
    pub fn weighted_average(states: &[ModelState], coeffs: &[f32]) -> ModelState {
        assert!(!states.is_empty(), "average of zero states");
        let params: Vec<Weights> = states.iter().map(|s| s.params.clone()).collect();
        let buffers: Vec<Weights> = states.iter().map(|s| s.buffers.clone()).collect();
        ModelState {
            params: Weights::weighted_average(&params, coeffs),
            buffers: Weights::weighted_average(&buffers, coeffs),
        }
    }
}

/// Bytes for one fp32 model of `params` scalars.
pub fn params_to_bytes(params: usize) -> usize {
    params * 4
}

/// Human-readable byte count (MB with two decimals, GB above 1 GiB),
/// matching the units in the paper's tables.
pub fn format_bytes(bytes: f64) -> String {
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = MB * 1024.0;
    if bytes >= GB {
        format!("{:.2}GB", bytes / GB)
    } else {
        format!("{:.1}MB", bytes / MB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::models::{Arch, ModelSpec};

    #[test]
    fn roundtrip_restores_weights() {
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 9);
        let a = spec.build();
        let snap = Weights::from_layer(&a);
        let mut b = ModelSpec { seed: 99, ..spec }.build();
        assert_ne!(Weights::from_layer(&b).values, snap.values);
        snap.apply_to(&mut b);
        assert_eq!(Weights::from_layer(&b).values, snap.values);
    }

    #[test]
    #[should_panic]
    fn apply_rejects_layout_mismatch() {
        let a = Linear::new(3, 3, 0);
        let snap = Weights::from_layer(&a);
        let mut b = Linear::new(4, 4, 0);
        snap.apply_to(&mut b);
    }

    #[test]
    fn average_of_identical_is_identity() {
        let net = Linear::new(5, 3, 1);
        let w = Weights::from_layer(&net);
        let avg = Weights::weighted_average(&[w.clone(), w.clone()], &[1.0, 3.0]);
        kemf_tensor::assert_close(&avg.values, &w.values, 1e-6);
    }

    #[test]
    fn average_respects_coefficients() {
        let mut a = Weights { values: vec![0.0, 0.0], lens: vec![2] };
        let b = Weights { values: vec![4.0, 8.0], lens: vec![2] };
        let avg = Weights::weighted_average(&[a.clone(), b.clone()], &[3.0, 1.0]);
        assert_eq!(avg.values, vec![1.0, 2.0]);
        a.scale_add(1.0, &b, 0.5);
        assert_eq!(a.values, vec![2.0, 4.0]);
    }

    #[test]
    fn delta_and_norm() {
        let a = Weights { values: vec![3.0, 4.0], lens: vec![2] };
        let b = Weights { values: vec![0.0, 0.0], lens: vec![2] };
        assert_eq!(a.delta(&b).values, vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn byte_accounting() {
        assert_eq!(params_to_bytes(1000), 4000);
        assert_eq!(format_bytes(2.1 * 1024.0 * 1024.0), "2.1MB");
        assert_eq!(format_bytes(4.01 * 1024.0 * 1024.0 * 1024.0), "4.01GB");
    }
}
