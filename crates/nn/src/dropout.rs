//! Inverted dropout: active only in training mode, identity at inference.
//! Used by the VGG classifier head and available to custom models.

use crate::layer::Layer;
use kemf_tensor::rng::seeded_rng;
use kemf_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Inverted dropout with drop probability `p`.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// New dropout layer; `p` is the probability of zeroing an activation.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p, rng: seeded_rng(seed), mask: None }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            if train {
                self.mask = Some(vec![1.0; x.numel()]);
            }
            return x.clone();
        }
        let scale = 1.0 / (1.0 - self.p);
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| if self.rng.gen::<f32>() < self.p { 0.0 } else { scale })
            .collect();
        let mut y = x.clone();
        for (v, &m) in y.data_mut().iter_mut().zip(mask.iter()) {
            *v *= m;
        }
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("Dropout::backward without forward(train)");
        assert_eq!(mask.len(), grad_out.numel(), "dropout mask/grad size mismatch");
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask.iter()) {
            *v *= m;
        }
        g
    }

    crate::stateless_param_impl!();

    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Dropout { p: self.p, rng: self.rng.clone(), mask: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[4, 4]);
        assert_eq!(d.forward(&x, false).data(), x.data());
    }

    #[test]
    fn training_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x, true);
        // Inverted dropout: E[y] == x.
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
        // Survivors carry the 1/(1-p) scale.
        let survivors = y.data().iter().filter(|&&v| v > 0.0).count() as f32 / y.numel() as f32;
        assert!((survivors - 0.7).abs() < 0.02, "survival rate {survivors}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[64]));
        // Gradient flows exactly where activations survived.
        for (gy, gv) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(gy > &0.0, gv > &0.0);
        }
    }

    #[test]
    fn p_zero_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::ones(&[10]);
        assert_eq!(d.forward(&x, true).data(), x.data());
        let g = d.backward(&Tensor::full(&[10], 2.0));
        assert_eq!(g.data(), &[2.0; 10]);
    }

    #[test]
    #[should_panic]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0, 5);
    }
}
