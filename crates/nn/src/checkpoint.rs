//! Binary checkpointing for [`ModelState`]: a tiny self-describing format
//! (magic, version, section lengths, little-endian f32 payload) so long
//! federated runs can persist and resume the global model without a
//! serialization framework.

use crate::serialize::{ModelState, Weights};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"KEMFCKPT";
const VERSION: u32 = 1;

fn write_weights(w: &Weights, out: &mut impl Write) -> io::Result<()> {
    out.write_all(&(w.lens.len() as u64).to_le_bytes())?;
    for &l in &w.lens {
        out.write_all(&(l as u64).to_le_bytes())?;
    }
    out.write_all(&(w.values.len() as u64).to_le_bytes())?;
    for &v in &w.values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64(inp: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    inp.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_weights(inp: &mut impl Read) -> io::Result<Weights> {
    let n_lens = read_u64(inp)? as usize;
    let mut lens = Vec::with_capacity(n_lens);
    for _ in 0..n_lens {
        lens.push(read_u64(inp)? as usize);
    }
    let n_vals = read_u64(inp)? as usize;
    let expected: usize = lens.iter().sum();
    if n_vals != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint value count {n_vals} does not match lens sum {expected}"),
        ));
    }
    let mut values = Vec::with_capacity(n_vals);
    let mut b = [0u8; 4];
    for _ in 0..n_vals {
        inp.read_exact(&mut b)?;
        values.push(f32::from_le_bytes(b));
    }
    Ok(Weights { values, lens })
}

/// Write a model state to `path` (atomic-ish: full rewrite).
pub fn save_state(state: &ModelState, path: impl AsRef<Path>) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    write_weights(&state.params, &mut out)?;
    write_weights(&state.buffers, &mut out)?;
    out.flush()
}

/// Read a model state from `path`; validates magic, version, and
/// self-consistency of the section lengths.
pub fn load_state(path: impl AsRef<Path>) -> io::Result<ModelState> {
    let mut inp = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    inp.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a kemf checkpoint"));
    }
    let mut ver = [0u8; 4];
    inp.read_exact(&mut ver)?;
    let version = u32::from_le_bytes(ver);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let params = read_weights(&mut inp)?;
    let buffers = read_weights(&mut inp)?;
    Ok(ModelState { params, buffers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::models::{Arch, ModelSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kemf_ckpt_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_is_exact() {
        let spec = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 7);
        let m = Model::new(spec);
        let state = m.state();
        let path = tmp("roundtrip");
        save_state(&state, &path).unwrap();
        let loaded = load_state(&path).unwrap();
        assert_eq!(loaded, state);
        let mut m2 = Model::new(ModelSpec { seed: 99, ..spec });
        m2.set_state(&loaded);
        assert_eq!(m2.state(), state);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(load_state(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_truncated_file() {
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1);
        let state = Model::new(spec).state();
        let path = tmp("trunc");
        save_state(&state, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_state(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_clean_error() {
        assert!(load_state("/nonexistent/kemf.ckpt").is_err());
    }
}
