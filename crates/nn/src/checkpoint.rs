//! Binary checkpointing: a tiny self-describing format (magic, version,
//! section lengths, little-endian payload) so long federated runs can
//! persist and resume without a serialization framework.
//!
//! Two formats share the `KEMFCKPT` magic:
//!
//! * **v1** ([`save_state`]/[`load_state`]) — a single [`ModelState`],
//!   the original global-model checkpoint;
//! * **v2** ([`save_bundle`]/[`load_bundle`]) — a [`CheckpointBundle`]:
//!   opaque metadata bytes plus named models, named dimension-tagged f32
//!   arrays, and named f64 scalars. This is the container the federated
//!   engine's resumable-run checkpoints are built on: one file holds a
//!   whole algorithm's state (knowledge network, per-client local
//!   models, control variates, consensus logits) next to the engine's
//!   own round/RNG/history metadata.
//!
//! All writes are **crash-consistent**: the bytes land in a `*.tmp`
//! sibling first, are fsynced, and are renamed over the destination only
//! then ([`atomic_write`]), so an interrupted save can never corrupt the
//! previous good checkpoint — at worst it leaves a stray `.tmp` file
//! that loaders ignore.
//!
//! Load errors always name the offending file and, for version
//! mismatches, the expected-vs-found version.

use crate::serialize::{ModelState, Weights};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"KEMFCKPT";
/// Format version of a single-model checkpoint ([`save_state`]).
pub const STATE_VERSION: u32 = 1;
/// Format version of a multi-model bundle ([`save_bundle`]).
pub const BUNDLE_VERSION: u32 = 2;

/// A multi-model checkpoint: opaque caller metadata plus named sections.
/// Section order is preserved exactly, so serialization round-trips
/// bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckpointBundle {
    /// Opaque caller-owned metadata (the federated engine stores its
    /// round index, RNG probes, and history here).
    pub meta: Vec<u8>,
    /// Named model states, e.g. `"global"`, `"local.3"`.
    pub models: Vec<(String, ModelState)>,
    /// Named dimension-tagged f32 arrays, e.g. control variates.
    pub arrays: Vec<(String, Vec<usize>, Vec<f32>)>,
    /// Named f64 scalars.
    pub scalars: Vec<(String, f64)>,
}

/// Attach the offending path to an I/O error so callers always see which
/// file failed, not just the bare reason.
fn with_path(path: &Path, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("checkpoint {}: {e}", path.display()))
}

fn bad_data(path: &Path, msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint {}: {msg}", path.display()))
}

/// The path a partially-written checkpoint occupies until the atomic
/// rename: the destination file name with `.tmp` appended. Loaders that
/// scan directories must skip these.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Crash-consistent write: the bytes go to a `.tmp` sibling, are flushed
/// and fsynced, and only then renamed over `path`. A crash at any point
/// leaves either the old file intact or the complete new one — never a
/// truncated checkpoint under the real name.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    let mut out = File::create(&tmp).map_err(|e| with_path(&tmp, e))?;
    out.write_all(bytes).map_err(|e| with_path(&tmp, e))?;
    out.sync_all().map_err(|e| with_path(&tmp, e))?;
    drop(out);
    std::fs::rename(&tmp, path).map_err(|e| with_path(path, e))?;
    // Persist the rename itself (directory entry) where the platform
    // allows opening directories; best-effort elsewhere.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// ---- primitive encode/decode ------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_weights(out: &mut Vec<u8>, w: &Weights) {
    put_u64(out, w.lens.len() as u64);
    for &l in &w.lens {
        put_u64(out, l as u64);
    }
    put_u64(out, w.values.len() as u64);
    for &v in &w.values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_u64(inp: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    inp.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(inp: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    inp.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Bounded length guard: a corrupt header must fail cleanly instead of
/// asking the allocator for exabytes.
fn checked_len(n: u64, what: &str) -> io::Result<usize> {
    const MAX: u64 = 1 << 33; // 8 GiB of elements: far beyond any real run
    if n > MAX {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible {what} length {n}"),
        ));
    }
    Ok(n as usize)
}

fn read_str(inp: &mut impl Read) -> io::Result<String> {
    let n = checked_len(read_u64(inp)?, "string")?;
    let mut buf = vec![0u8; n];
    inp.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 section name"))
}

fn read_weights(inp: &mut impl Read) -> io::Result<Weights> {
    let n_lens = checked_len(read_u64(inp)?, "lens")?;
    let mut lens = Vec::with_capacity(n_lens);
    for _ in 0..n_lens {
        lens.push(read_u64(inp)? as usize);
    }
    let n_vals = checked_len(read_u64(inp)?, "values")?;
    let expected: usize = lens.iter().sum();
    if n_vals != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("value count {n_vals} does not match lens sum {expected}"),
        ));
    }
    let mut values = Vec::with_capacity(n_vals);
    for _ in 0..n_vals {
        values.push(read_f32(inp)?);
    }
    Ok(Weights { values, lens })
}

fn read_header(inp: &mut impl Read, path: &Path, expected_version: u32) -> io::Result<()> {
    let mut magic = [0u8; 8];
    inp.read_exact(&mut magic).map_err(|e| with_path(path, e))?;
    if &magic != MAGIC {
        return Err(bad_data(path, "not a kemf checkpoint (bad magic)"));
    }
    let mut ver = [0u8; 4];
    inp.read_exact(&mut ver).map_err(|e| with_path(path, e))?;
    let version = u32::from_le_bytes(ver);
    if version != expected_version {
        return Err(bad_data(
            path,
            format!("version mismatch: expected {expected_version}, found {version}"),
        ));
    }
    Ok(())
}

// ---- v1: single model state -------------------------------------------

/// Write a model state to `path` crash-consistently (tmp + fsync +
/// rename).
pub fn save_state(state: &ModelState, path: impl AsRef<Path>) -> io::Result<()> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&STATE_VERSION.to_le_bytes());
    put_weights(&mut out, &state.params);
    put_weights(&mut out, &state.buffers);
    atomic_write(path, &out)
}

/// Read a model state from `path`; validates magic, version, and
/// self-consistency of the section lengths. Errors name the file and,
/// on a version mismatch, the expected and found versions.
pub fn load_state(path: impl AsRef<Path>) -> io::Result<ModelState> {
    let path = path.as_ref();
    let mut inp = io::BufReader::new(File::open(path).map_err(|e| with_path(path, e))?);
    read_header(&mut inp, path, STATE_VERSION)?;
    let params = read_weights(&mut inp).map_err(|e| with_path(path, e))?;
    let buffers = read_weights(&mut inp).map_err(|e| with_path(path, e))?;
    Ok(ModelState { params, buffers })
}

// ---- v2: multi-model bundle -------------------------------------------

/// Serialize a bundle to its on-disk byte layout (without writing).
pub fn encode_bundle(bundle: &CheckpointBundle) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&BUNDLE_VERSION.to_le_bytes());
    put_u64(&mut out, bundle.meta.len() as u64);
    out.extend_from_slice(&bundle.meta);
    put_u64(&mut out, bundle.models.len() as u64);
    for (name, state) in &bundle.models {
        put_str(&mut out, name);
        put_weights(&mut out, &state.params);
        put_weights(&mut out, &state.buffers);
    }
    put_u64(&mut out, bundle.arrays.len() as u64);
    for (name, dims, values) in &bundle.arrays {
        put_str(&mut out, name);
        put_u64(&mut out, dims.len() as u64);
        for &d in dims {
            put_u64(&mut out, d as u64);
        }
        put_u64(&mut out, values.len() as u64);
        for &v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    put_u64(&mut out, bundle.scalars.len() as u64);
    for (name, v) in &bundle.scalars {
        put_str(&mut out, name);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Write a multi-model bundle to `path` crash-consistently.
pub fn save_bundle(bundle: &CheckpointBundle, path: impl AsRef<Path>) -> io::Result<()> {
    atomic_write(path, &encode_bundle(bundle))
}

/// Read a multi-model bundle from `path`. Errors name the file and, on a
/// version mismatch, the expected and found versions; trailing garbage
/// after the last section is rejected.
pub fn load_bundle(path: impl AsRef<Path>) -> io::Result<CheckpointBundle> {
    let path = path.as_ref();
    let mut inp = io::BufReader::new(File::open(path).map_err(|e| with_path(path, e))?);
    read_header(&mut inp, path, BUNDLE_VERSION)?;
    let wrap = |e: io::Error| with_path(path, e);

    let meta_len = checked_len(read_u64(&mut inp).map_err(wrap)?, "meta").map_err(wrap)?;
    let mut meta = vec![0u8; meta_len];
    inp.read_exact(&mut meta).map_err(wrap)?;

    let n_models = checked_len(read_u64(&mut inp).map_err(wrap)?, "models").map_err(wrap)?;
    let mut models = Vec::with_capacity(n_models);
    for _ in 0..n_models {
        let name = read_str(&mut inp).map_err(wrap)?;
        let params = read_weights(&mut inp).map_err(wrap)?;
        let buffers = read_weights(&mut inp).map_err(wrap)?;
        models.push((name, ModelState { params, buffers }));
    }

    let n_arrays = checked_len(read_u64(&mut inp).map_err(wrap)?, "arrays").map_err(wrap)?;
    let mut arrays = Vec::with_capacity(n_arrays);
    for _ in 0..n_arrays {
        let name = read_str(&mut inp).map_err(wrap)?;
        let n_dims = checked_len(read_u64(&mut inp).map_err(wrap)?, "dims").map_err(wrap)?;
        let mut dims = Vec::with_capacity(n_dims);
        for _ in 0..n_dims {
            dims.push(read_u64(&mut inp).map_err(wrap)? as usize);
        }
        let n_vals = checked_len(read_u64(&mut inp).map_err(wrap)?, "array values").map_err(wrap)?;
        let expected: usize = dims.iter().product();
        if n_vals != expected {
            return Err(bad_data(
                path,
                format!("array `{name}`: {n_vals} values do not fill dims {dims:?}"),
            ));
        }
        let mut values = Vec::with_capacity(n_vals);
        for _ in 0..n_vals {
            values.push(read_f32(&mut inp).map_err(wrap)?);
        }
        arrays.push((name, dims, values));
    }

    let n_scalars = checked_len(read_u64(&mut inp).map_err(wrap)?, "scalars").map_err(wrap)?;
    let mut scalars = Vec::with_capacity(n_scalars);
    for _ in 0..n_scalars {
        let name = read_str(&mut inp).map_err(wrap)?;
        let mut b = [0u8; 8];
        inp.read_exact(&mut b).map_err(wrap)?;
        scalars.push((name, f64::from_le_bytes(b)));
    }

    let mut trailing = [0u8; 1];
    if inp.read(&mut trailing).map_err(wrap)? != 0 {
        return Err(bad_data(path, "trailing bytes after last section"));
    }
    Ok(CheckpointBundle { meta, models, arrays, scalars })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::models::{Arch, ModelSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kemf_ckpt_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_is_exact() {
        let spec = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 7);
        let m = Model::new(spec);
        let state = m.state();
        let path = tmp("roundtrip");
        save_state(&state, &path).unwrap();
        let loaded = load_state(&path).unwrap();
        assert_eq!(loaded, state);
        let mut m2 = Model::new(ModelSpec { seed: 99, ..spec });
        m2.set_state(&loaded);
        assert_eq!(m2.state(), state);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(load_state(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_truncated_file() {
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1);
        let state = Model::new(spec).state();
        let path = tmp("trunc");
        save_state(&state, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_state(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_clean_error() {
        assert!(load_state("/nonexistent/kemf.ckpt").is_err());
    }

    #[test]
    fn load_errors_name_the_file() {
        let path = tmp("named_err");
        std::fs::write(&path, b"garbage garbage garbage").unwrap();
        let err = load_state(&path).unwrap_err().to_string();
        assert!(err.contains(path.to_str().unwrap()), "error lacks path: {err}");
        let err = load_state("/nonexistent/kemf.ckpt").unwrap_err().to_string();
        assert!(err.contains("/nonexistent/kemf.ckpt"), "error lacks path: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_reports_expected_and_found() {
        // A v2 bundle read through the v1 loader (and vice versa) names
        // both versions, so operators can tell stale tooling from
        // corruption.
        let path = tmp("vers");
        save_bundle(&CheckpointBundle::default(), &path).unwrap();
        let err = load_state(&path).unwrap_err().to_string();
        assert!(err.contains("expected 1") && err.contains("found 2"), "bad message: {err}");
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1);
        save_state(&Model::new(spec).state(), &path).unwrap();
        let err = load_bundle(&path).unwrap_err().to_string();
        assert!(err.contains("expected 2") && err.contains("found 1"), "bad message: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bundle_roundtrip_is_exact() {
        let spec_a = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1);
        let spec_b = ModelSpec::scaled(Arch::Cnn2, 1, 8, 10, 2);
        let bundle = CheckpointBundle {
            meta: vec![1, 2, 3, 255, 0, 42],
            models: vec![
                ("global".into(), Model::new(spec_a).state()),
                ("local.0".into(), Model::new(spec_b).state()),
            ],
            arrays: vec![
                ("c".into(), vec![4], vec![0.5, -0.25, f32::MIN_POSITIVE, 3.0]),
                ("empty".into(), vec![0, 7], vec![]),
            ],
            scalars: vec![("round".into(), 17.0), ("nan".into(), f64::NAN)],
        };
        let path = tmp("bundle_rt");
        save_bundle(&bundle, &path).unwrap();
        let loaded = load_bundle(&path).unwrap();
        assert_eq!(loaded.meta, bundle.meta);
        assert_eq!(loaded.models, bundle.models);
        assert_eq!(loaded.arrays, bundle.arrays);
        assert_eq!(loaded.scalars.len(), 2);
        assert_eq!(loaded.scalars[0], bundle.scalars[0]);
        // NaN round-trips by bit pattern, not equality.
        assert_eq!(loaded.scalars[1].1.to_bits(), bundle.scalars[1].1.to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bundle_rejects_truncation_and_trailing_garbage() {
        let bundle = CheckpointBundle {
            meta: b"meta".to_vec(),
            models: vec![("m".into(), Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 8, 10, 3)).state())],
            arrays: vec![("a".into(), vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])],
            scalars: vec![("s".into(), 1.5)],
        };
        let path = tmp("bundle_bad");
        save_bundle(&bundle, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load_bundle(&path).is_err(), "truncated bundle must not parse");
        let mut extended = bytes.clone();
        extended.extend_from_slice(b"xx");
        std::fs::write(&path, &extended).unwrap();
        assert!(load_bundle(&path).is_err(), "trailing garbage must not parse");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_write_leaves_previous_checkpoint_intact() {
        // Crash-consistency: a half-written tmp file (simulating a crash
        // mid-save) must never affect the good checkpoint under the real
        // name.
        let bundle = CheckpointBundle { meta: b"good".to_vec(), ..Default::default() };
        let path = tmp("atomic");
        save_bundle(&bundle, &path).unwrap();
        std::fs::write(tmp_path(&path), b"KEMFCKPT\x02\x00\x00").unwrap();
        let loaded = load_bundle(&path).unwrap();
        assert_eq!(loaded.meta, b"good");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tmp_path(&path));
    }
}
