//! # kemf-nn
//!
//! Neural-network substrate for the FedKEMF stack: layers with explicit
//! forward/backward passes, losses (cross-entropy and KL-distillation),
//! SGD with momentum, learning-rate schedules, weight snapshots for
//! federated aggregation, and the paper's model zoo (ResNet-20/32/44,
//! VGG-11, LEAF-style 2-layer CNN).
//!
//! There is intentionally no autograd tape: each layer caches what its own
//! backward needs, which keeps the substrate auditable and lets every
//! gradient be validated with finite differences (see `testutil`).
//!
//! ```
//! use kemf_nn::models::{Arch, ModelSpec};
//! use kemf_nn::model::Model;
//!
//! let spec = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 0);
//! let model = Model::new(spec);
//! assert!(model.param_count() > 0);
//! ```

pub mod activation;
pub mod adam;
pub mod checkpoint;
pub mod cnn_util;
pub mod dropout;
pub mod groupnorm;
pub mod conv2d;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod model;
pub mod models;
pub mod norm;
pub mod optim;
pub mod param;
pub mod pool;
pub mod sequential;
pub mod serialize;
pub mod testutil;

pub mod prelude {
    //! Common imports for downstream crates.
    pub use crate::layer::Layer;
    pub use crate::loss::{accuracy, cross_entropy, kl_to_target, soften};
    pub use crate::model::Model;
    pub use crate::models::{Arch, ModelSpec};
    pub use crate::sequential::NormKind;
    pub use crate::adam::{Adam, AdamConfig};
    pub use crate::optim::{LrSchedule, Sgd, SgdConfig};
    pub use crate::serialize::{ModelState, Weights};
}
