//! Loss functions and their gradients with respect to logits.
//!
//! Everything FedKEMF needs:
//! * [`cross_entropy`] — Eq. 1 of the paper (supervised term `L_c`).
//! * [`kl_to_target`] — Eq. 2/4: `D_KL(target ‖ softmax(logits))`, the
//!   deep-mutual-learning and ensemble-distillation term, with optional
//!   distillation temperature τ (gradients scaled by τ² per Hinton et al.).
//!
//! All losses are means over the batch; gradients are w.r.t. the raw
//! logits so callers feed them straight into `Layer::backward`.

use kemf_tensor::ops::{argmax_rows, softmax_inplace_rows};
use kemf_tensor::workspace::Workspace;
use kemf_tensor::Tensor;

/// Softmax cross-entropy against integer labels.
///
/// Returns `(mean loss, ∂L/∂logits)` with the classic `softmax − onehot`
/// gradient (divided by batch size).
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    cross_entropy_ws(logits, labels, &mut Workspace::new())
}

/// [`cross_entropy`] with the gradient tensor drawn from `ws` — the
/// training hot path's variant (caller recycles the gradient after
/// backward).
pub fn cross_entropy_ws(logits: &Tensor, labels: &[usize], ws: &mut Workspace) -> (f32, Tensor) {
    let (n, c) = logits.shape().as_matrix();
    assert_eq!(n, labels.len(), "batch/label count mismatch");
    assert!(n > 0, "empty batch");
    let mut grad = ws.take_tensor(logits.dims());
    grad.data_mut().copy_from_slice(logits.data());
    softmax_inplace_rows(grad.data_mut(), n, c);
    let mut loss = 0.0f64;
    {
        let g = grad.data_mut();
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < c, "label {y} out of {c} classes");
            let p = g[i * c + y].max(1e-12);
            loss -= (p as f64).ln();
            g[i * c + y] -= 1.0;
        }
    }
    grad.scale_inplace(1.0 / n as f32);
    ((loss / n as f64) as f32, grad)
}

/// Temperature-softened probability targets from teacher logits.
pub fn soften(logits: &Tensor, temperature: f32) -> Tensor {
    soften_ws(logits, temperature, &mut Workspace::new())
}

/// [`soften`] with the target tensor drawn from `ws`.
pub fn soften_ws(logits: &Tensor, temperature: f32, ws: &mut Workspace) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    let (n, c) = logits.shape().as_matrix();
    let mut out = ws.take_tensor(logits.dims());
    let inv_t = 1.0 / temperature;
    for (ov, &lv) in out.data_mut().iter_mut().zip(logits.data().iter()) {
        *ov = lv * inv_t;
    }
    softmax_inplace_rows(out.data_mut(), n, c);
    out
}

/// `τ² · D_KL(target ‖ softmax(logits / τ))`, mean over the batch.
///
/// `target` must be a probability tensor with the same `[N, C]` shape (use
/// [`soften`] on teacher logits). Returns `(loss, ∂L/∂logits)`; the
/// gradient is `τ · (softmax(logits/τ) − target) / N`, the standard
/// distillation gradient (the τ² loss scale keeps gradient magnitudes
/// comparable across temperatures).
pub fn kl_to_target(logits: &Tensor, target: &Tensor, temperature: f32) -> (f32, Tensor) {
    kl_to_target_ws(logits, target, temperature, &mut Workspace::new())
}

/// [`kl_to_target`] with the gradient tensor drawn from `ws`.
pub fn kl_to_target_ws(
    logits: &Tensor,
    target: &Tensor,
    temperature: f32,
    ws: &mut Workspace,
) -> (f32, Tensor) {
    assert!(temperature > 0.0, "temperature must be positive");
    let (n, c) = logits.shape().as_matrix();
    let (tn, tc) = target.shape().as_matrix();
    assert_eq!((n, c), (tn, tc), "logits/target shape mismatch");
    assert!(n > 0, "empty batch");
    // grad starts as p = softmax(logits/τ), in place.
    let mut grad = soften_ws(logits, temperature, ws);
    let t2 = temperature * temperature;
    let mut loss = 0.0f64;
    for (&t, &pi) in target.data().iter().zip(grad.data().iter()) {
        if t > 0.0 {
            let pi = pi.max(1e-12);
            loss += (t as f64) * ((t as f64).max(1e-12).ln() - (pi as f64).ln());
        }
    }
    loss *= t2 as f64 / n as f64;
    // grad = (p − target) · τ / N
    let scale = temperature / n as f32;
    for (gv, &tv) in grad.data_mut().iter_mut().zip(target.data().iter()) {
        *gv = (*gv - tv) * scale;
    }
    (loss as f32, grad)
}

/// Top-1 accuracy of logits against labels, in `[0, 1]`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), labels.len(), "batch/label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels.iter()).filter(|(p, y)| p == y).count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_tensor::rng::seeded_rng;

    /// Central finite differences on a loss over logits.
    fn fd_grad(loss_fn: impl Fn(&Tensor) -> f32, logits: &Tensor, step: f32) -> Vec<f32> {
        let mut out = Vec::with_capacity(logits.numel());
        for e in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[e] += step;
            let mut lm = logits.clone();
            lm.data_mut()[e] -= step;
            out.push((loss_fn(&lp) - loss_fn(&lm)) / (2.0 * step));
        }
        out
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_ln_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_fd() {
        let mut rng = seeded_rng(21);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = vec![1usize, 0, 3];
        let (_, grad) = cross_entropy(&logits, &labels);
        let fd = fd_grad(|l| cross_entropy(l, &labels).0, &logits, 1e-2);
        kemf_tensor::assert_close(grad.data(), &fd, 2e-3);
    }

    #[test]
    fn kl_zero_when_target_equals_prediction() {
        let mut rng = seeded_rng(22);
        let logits = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let target = soften(&logits, 1.0);
        let (loss, grad) = kl_to_target(&logits, &target, 1.0);
        assert!(loss.abs() < 1e-5, "loss {loss}");
        assert!(grad.norm() < 1e-5, "grad norm {}", grad.norm());
    }

    #[test]
    fn kl_is_nonnegative() {
        let mut rng = seeded_rng(23);
        for _ in 0..20 {
            let logits = Tensor::randn(&[2, 4], 2.0, &mut rng);
            let teacher = Tensor::randn(&[2, 4], 2.0, &mut rng);
            let (loss, _) = kl_to_target(&logits, &soften(&teacher, 1.0), 1.0);
            assert!(loss >= -1e-6, "loss {loss}");
        }
    }

    #[test]
    fn kl_grad_matches_fd() {
        let mut rng = seeded_rng(24);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let teacher = Tensor::randn(&[3, 4], 1.0, &mut rng);
        for &tau in &[1.0f32, 2.0, 4.0] {
            let target = soften(&teacher, tau);
            let (_, grad) = kl_to_target(&logits, &target, tau);
            let fd = fd_grad(|l| kl_to_target(l, &target, tau).0, &logits, 1e-2);
            kemf_tensor::assert_close(grad.data(), &fd, 3e-3);
        }
    }

    #[test]
    fn soften_flattens_distribution() {
        let logits = Tensor::from_vec(vec![4.0, 0.0, 0.0], &[1, 3]);
        let sharp = soften(&logits, 1.0);
        let soft = soften(&logits, 8.0);
        assert!(soft.data()[0] < sharp.data()[0]);
        assert!((soft.data().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_correct() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
    }
}
