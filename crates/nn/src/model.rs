//! [`Model`]: a network paired with its [`ModelSpec`], plus the training
//! and evaluation entry points the federated layer drives.

use crate::layer::Layer;
use crate::loss::{accuracy, cross_entropy_ws};
use crate::models::ModelSpec;
use crate::optim::Sgd;
use crate::sequential::Sequential;
use crate::serialize::{ModelState, Weights};
use kemf_tensor::workspace::Workspace;
use kemf_tensor::Tensor;

/// A concrete, trainable network instance. Owns a [`Workspace`] that all
/// its forward/backward passes draw scratch buffers from, so repeated
/// training steps on stable shapes allocate nothing after the first.
pub struct Model {
    net: Sequential,
    spec: ModelSpec,
    ws: Workspace,
}

impl Clone for Model {
    fn clone(&self) -> Self {
        // The workspace is per-instance scratch, never cloned state.
        Model { net: self.net.clone(), spec: self.spec, ws: Workspace::new() }
    }
}

impl Model {
    /// Build a fresh model from a spec.
    pub fn new(spec: ModelSpec) -> Self {
        Model { net: spec.build(), spec, ws: Workspace::new() }
    }

    /// The model's scratch-buffer pool (for callers that want to recycle
    /// tensors produced by [`Model::forward`]/[`Model::backward`], or to
    /// inspect pool statistics in tests).
    pub fn ws_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Hand a tensor produced by this model back to its pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.ws.recycle_tensor(t);
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Mutable access to the underlying network.
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Immutable access to the underlying network.
    pub fn net(&self) -> &Sequential {
        &self.net
    }

    /// Trainable scalar count.
    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }

    /// Payload size of this model's weights in bytes (fp32).
    pub fn bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Forward pass (scratch and output storage from the model's pool).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.net.forward_ws(x, train, &mut self.ws)
    }

    /// Backward pass (after a `forward(.., true)`).
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.net.backward_ws(grad, &mut self.ws)
    }

    /// Zero parameter gradients.
    pub fn zero_grad(&mut self) {
        self.net.zero_grad();
    }

    /// Select the forward compute format for every layer (see
    /// [`crate::layer::Precision`]). `Int8` is an inference-only
    /// approximation; callers that train afterwards must switch back to
    /// `F32`.
    pub fn set_precision(&mut self, p: crate::layer::Precision) {
        self.net.set_precision(p);
    }

    /// Snapshot the weights.
    pub fn weights(&self) -> Weights {
        Weights::from_layer(&self.net)
    }

    /// Restore weights from a snapshot.
    pub fn set_weights(&mut self, w: &Weights) {
        w.apply_to(&mut self.net);
    }

    /// Snapshot the full transmitted state (weights + batch-norm running
    /// statistics) — what federated algorithms put on the wire.
    pub fn state(&self) -> ModelState {
        ModelState::from_layer(&self.net)
    }

    /// Restore a full transmitted state.
    pub fn set_state(&mut self, s: &ModelState) {
        s.apply_to(&mut self.net);
    }

    /// Transmitted size in bytes of the full state.
    pub fn state_bytes(&self) -> usize {
        self.state().bytes()
    }

    /// One supervised SGD step on a batch; returns the batch loss. Every
    /// temporary (logits, loss gradient, input gradient) returns to the
    /// model's pool, so a steady-state step performs no heap allocation.
    pub fn train_batch(&mut self, x: &Tensor, labels: &[usize], opt: &mut Sgd) -> f32 {
        self.zero_grad();
        let logits = self.net.forward_ws(x, true, &mut self.ws);
        let (loss, grad) = cross_entropy_ws(&logits, labels, &mut self.ws);
        self.ws.recycle_tensor(logits);
        let gx = self.net.backward_ws(&grad, &mut self.ws);
        self.ws.recycle_tensor(grad);
        self.ws.recycle_tensor(gx);
        opt.step(&mut self.net);
        loss
    }

    /// Inference logits for a batch (eval mode).
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        self.net.forward_ws(x, false, &mut self.ws)
    }

    /// Inference logits using **batch statistics** (train-mode forward).
    /// Needed when a model has taken too few optimizer steps for its
    /// batch-norm running statistics to be trustworthy — e.g. knowledge
    /// networks acting as distillation teachers right after a short local
    /// update. Side effects: updates running statistics and leaves
    /// backward caches populated (harmless for throwaway teachers).
    pub fn predict_batch_stats(&mut self, x: &Tensor) -> Tensor {
        self.net.forward_ws(x, true, &mut self.ws)
    }

    /// Top-1 accuracy over a dataset, evaluated in mini-batches to bound
    /// memory.
    pub fn evaluate(&mut self, images: &Tensor, labels: &[usize], batch: usize) -> f32 {
        let n = labels.len();
        assert_eq!(images.dims()[0], n, "image/label count mismatch");
        if n == 0 {
            return 0.0;
        }
        let batch = batch.max(1);
        let mut correct = 0.0f32;
        let mut start = 0;
        while start < n {
            let end = (start + batch).min(n);
            let xb = images.slice_rows(start, end);
            let logits = self.predict(&xb);
            correct += accuracy(&logits, &labels[start..end]) * (end - start) as f32;
            self.ws.recycle_tensor(logits);
            start = end;
        }
        correct / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Arch;
    use crate::optim::SgdConfig;
    use kemf_tensor::rng::seeded_rng;

    fn toy_spec() -> ModelSpec {
        ModelSpec::scaled(Arch::Cnn2, 1, 8, 2, 3)
    }

    #[test]
    fn clone_is_deep() {
        let m = Model::new(toy_spec());
        let mut c = m.clone();
        let w0 = m.weights();
        c.set_weights(&w0.zeros_like());
        assert_eq!(m.weights().values, w0.values);
    }

    #[test]
    fn weight_roundtrip_preserves_predictions() {
        let mut m = Model::new(toy_spec());
        let mut rng = seeded_rng(40);
        let x = Tensor::randn(&[4, 1, 8, 8], 1.0, &mut rng);
        let before = m.predict(&x);
        let snap = m.weights();
        let mut m2 = Model::new(ModelSpec { seed: 77, ..toy_spec() });
        m2.set_weights(&snap);
        let after = m2.predict(&x);
        kemf_tensor::assert_close(before.data(), after.data(), 1e-5);
    }

    #[test]
    fn training_learns_separable_toy_task() {
        // Two classes distinguished by overall brightness — a task a tiny
        // CNN must learn quickly if forward/backward/optimizer cohere.
        let mut m = Model::new(toy_spec());
        let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0, nesterov: false });
        let mut rng = seeded_rng(41);
        let n = 32;
        let mut imgs = Tensor::randn(&[n, 1, 8, 8], 0.3, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        for (i, &y) in labels.iter().enumerate() {
            let shift = if y == 0 { -1.0 } else { 1.0 };
            for v in &mut imgs.data_mut()[i * 64..(i + 1) * 64] {
                *v += shift;
            }
        }
        for _ in 0..30 {
            let _ = m.train_batch(&imgs, &labels, &mut opt);
        }
        let acc = m.evaluate(&imgs, &labels, 16);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn evaluate_handles_ragged_batches() {
        let mut m = Model::new(toy_spec());
        let mut rng = seeded_rng(42);
        let x = Tensor::randn(&[7, 1, 8, 8], 1.0, &mut rng);
        let labels = vec![0usize, 1, 0, 1, 0, 1, 0];
        let acc = m.evaluate(&x, &labels, 3);
        assert!((0.0..=1.0).contains(&acc));
    }
}
