//! Finite-difference gradient checking, shared by the unit tests of every
//! layer and loss in this crate (and reused by `kemf-core` tests).
//!
//! The check projects the layer output onto a fixed random vector to get a
//! scalar loss `L = Σ y ⊙ r`, computes analytic gradients via one
//! forward/backward pass, and compares every parameter gradient and the
//! input gradient against central finite differences.

use crate::layer::Layer;
use kemf_tensor::rng::seeded_rng;
use kemf_tensor::Tensor;

/// Scalar projection loss and its output-gradient (the projection itself).
fn proj_loss(y: &Tensor, r: &Tensor) -> f32 {
    y.dot(r)
}

/// Run the finite-difference check. `step` is the FD perturbation, `tol`
/// the relative tolerance. Panics with a descriptive message on mismatch.
pub fn grad_check(layer: &mut dyn Layer, input_dims: &[usize], step: f32, tol: f32) {
    let mut rng = seeded_rng(0xfeed);
    let x = Tensor::randn(input_dims, 1.0, &mut rng);

    // Fixed projection of the output.
    layer.zero_grad();
    let y0 = layer.forward(&x, true);
    let r = Tensor::randn(y0.dims(), 1.0, &mut rng);

    // Analytic pass.
    layer.zero_grad();
    let y = layer.forward(&x, true);
    let analytic_input_grad = layer.backward(&r);
    let _ = y;

    // Snapshot analytic parameter gradients.
    let mut analytic_param_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p| analytic_param_grads.push(p.grad.data().to_vec()));

    // Finite differences on every parameter scalar.
    for (pi, param_grads) in analytic_param_grads.iter().enumerate() {
        for (e, &an) in param_grads.iter().enumerate() {
            let f = |delta: f32, layer: &mut dyn Layer| -> f32 {
                let mut i = 0;
                layer.visit_params_mut(&mut |p| {
                    if i == pi {
                        p.value.data_mut()[e] += delta;
                    }
                    i += 1;
                });
                let y = layer.forward(&x, true);
                let mut i = 0;
                layer.visit_params_mut(&mut |p| {
                    if i == pi {
                        p.value.data_mut()[e] -= delta;
                    }
                    i += 1;
                });
                proj_loss(&y, &r)
            };
            let lp = f(step, layer);
            let lm = f(-step, layer);
            let fd = (lp - lm) / (2.0 * step);
            let denom = 1.0f32.max(fd.abs()).max(an.abs());
            assert!(
                (fd - an).abs() / denom <= tol,
                "{}: param {pi} elem {e}: finite-diff {fd} vs analytic {an}",
                layer.name()
            );
        }
    }

    // Finite differences on every input scalar.
    for e in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[e] += step;
        let lp = proj_loss(&layer.forward(&xp, true), &r);
        let mut xm = x.clone();
        xm.data_mut()[e] -= step;
        let lm = proj_loss(&layer.forward(&xm, true), &r);
        let fd = (lp - lm) / (2.0 * step);
        let an = analytic_input_grad.data()[e];
        let denom = 1.0f32.max(fd.abs()).max(an.abs());
        assert!(
            (fd - an).abs() / denom <= tol,
            "{}: input elem {e}: finite-diff {fd} vs analytic {an}",
            layer.name()
        );
    }
}
