//! Group normalization (Wu & He 2018) over `[N, C, H, W]` activations.
//!
//! GroupNorm normalizes over channel groups *within each sample*, so it
//! carries no running statistics — which makes it the standard batch-norm
//! replacement in federated learning, where client batch statistics clash
//! under non-IID data and stale running stats poison early-round
//! inference (both failure modes are documented in DESIGN.md). The model
//! zoo can be built with either norm via [`crate::models::NormKind`].

use crate::layer::Layer;
use crate::param::Param;
use kemf_tensor::Tensor;

/// Per-group, per-sample normalization with learned affine parameters.
pub struct GroupNorm {
    gamma: Param, // [C]
    beta: Param,  // [C]
    groups: usize,
    channels: usize,
    eps: f32,
    /// (x_hat, inv_std per (n, group), dims) cached for backward.
    cache: Option<(Tensor, Vec<f32>, Vec<usize>)>,
}

impl GroupNorm {
    /// New GroupNorm over `channels` maps in `groups` groups; `channels`
    /// must divide evenly.
    pub fn new(groups: usize, channels: usize) -> Self {
        assert!(groups > 0 && channels.is_multiple_of(groups), "channels {channels} not divisible by groups {groups}");
        GroupNorm {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            groups,
            channels,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Convenience: ≤4 channels per group (2 groups minimum when possible).
    pub fn with_default_groups(channels: usize) -> Self {
        let mut groups = (channels / 4).max(1);
        while !channels.is_multiple_of(groups) {
            groups -= 1;
        }
        GroupNorm::new(groups, channels)
    }
}

impl Layer for GroupNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        assert_eq!(c, self.channels, "GroupNorm expected {} channels, got {c}", self.channels);
        let cpg = c / self.groups; // channels per group
        let group_len = cpg * h * w;
        let mut y = Tensor::zeros(x.dims());
        let mut x_hat = Tensor::zeros(x.dims());
        let mut inv_stds = vec![0.0f32; n * self.groups];
        let src = x.data();
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        for ni in 0..n {
            for g in 0..self.groups {
                let base = (ni * c + g * cpg) * h * w;
                let slice = &src[base..base + group_len];
                let mean = slice.iter().map(|&v| v as f64).sum::<f64>() / group_len as f64;
                let var = slice.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>()
                    / group_len as f64;
                let inv_std = (1.0 / (var + self.eps as f64).sqrt()) as f32;
                inv_stds[ni * self.groups + g] = inv_std;
                let mean = mean as f32;
                for ch_in_g in 0..cpg {
                    let ch = g * cpg + ch_in_g;
                    let (gm, bt) = (gamma[ch], beta[ch]);
                    let off = (ni * c + ch) * h * w;
                    for ((&sv, xv), yv) in src[off..off + h * w]
                        .iter()
                        .zip(x_hat.data_mut()[off..off + h * w].iter_mut())
                        .zip(y.data_mut()[off..off + h * w].iter_mut())
                    {
                        let xh = (sv - mean) * inv_std;
                        *xv = xh;
                        *yv = gm * xh + bt;
                    }
                }
            }
        }
        if train {
            self.cache = Some((x_hat, inv_stds, x.dims().to_vec()));
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (x_hat, inv_stds, dims) =
            self.cache.take().expect("GroupNorm::backward without forward(train)");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let cpg = c / self.groups;
        let group_len = (cpg * h * w) as f32;
        let plane = h * w;
        let go = grad_out.data();
        let xh = x_hat.data();
        // Parameter gradients (per channel, over all samples).
        for ch in 0..c {
            let mut dg = 0.0f64;
            let mut db = 0.0f64;
            for ni in 0..n {
                let off = (ni * c + ch) * plane;
                for i in off..off + plane {
                    dg += (go[i] as f64) * (xh[i] as f64);
                    db += go[i] as f64;
                }
            }
            self.gamma.grad.data_mut()[ch] += dg as f32;
            self.beta.grad.data_mut()[ch] += db as f32;
        }
        // Input gradient, group by group (same algebra as batch norm but
        // statistics are per (sample, group)).
        let gamma = self.gamma.value.data();
        let mut gx = Tensor::zeros(&dims);
        for ni in 0..n {
            for g in 0..self.groups {
                let inv_std = inv_stds[ni * self.groups + g];
                // Sums of γ·go and γ·go·x̂ over the group.
                let mut sum_gg = 0.0f64;
                let mut sum_ggx = 0.0f64;
                for ch_in_g in 0..cpg {
                    let ch = g * cpg + ch_in_g;
                    let off = (ni * c + ch) * plane;
                    for i in off..off + plane {
                        let v = (gamma[ch] * go[i]) as f64;
                        sum_gg += v;
                        sum_ggx += v * (xh[i] as f64);
                    }
                }
                let mean_gg = (sum_gg / group_len as f64) as f32;
                let mean_ggx = (sum_ggx / group_len as f64) as f32;
                for ch_in_g in 0..cpg {
                    let ch = g * cpg + ch_in_g;
                    let off = (ni * c + ch) * plane;
                    for i in off..off + plane {
                        gx.data_mut()[i] =
                            inv_std * (gamma[ch] * go[i] - mean_gg - xh[i] * mean_ggx);
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "GroupNorm"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for GroupNorm {
    fn clone(&self) -> Self {
        GroupNorm {
            gamma: self.gamma.clone(),
            beta: self.beta.clone(),
            groups: self.groups,
            channels: self.channels,
            eps: self.eps,
            cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;
    use kemf_tensor::rng::seeded_rng;

    #[test]
    fn output_is_normalized_per_sample_group() {
        let mut gn = GroupNorm::new(2, 4);
        let mut rng = seeded_rng(3);
        let x = Tensor::randn(&[2, 4, 3, 3], 2.5, &mut rng).map(|v| v + 1.0);
        let y = gn.forward(&x, true);
        for ni in 0..2 {
            for g in 0..2 {
                let mut vals = Vec::new();
                for ch in (g * 2)..(g * 2 + 2) {
                    for p in 0..9 {
                        vals.push(y.data()[(ni * 4 + ch) * 9 + p]);
                    }
                }
                let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
                let var: f32 =
                    vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
                assert!(mean.abs() < 1e-4, "mean {mean}");
                assert!((var - 1.0).abs() < 1e-2, "var {var}");
            }
        }
    }

    #[test]
    fn eval_equals_train_no_running_stats() {
        // GroupNorm's whole point in FL: inference needs no statistics.
        let mut gn = GroupNorm::new(2, 4);
        let mut rng = seeded_rng(4);
        let x = Tensor::randn(&[1, 4, 3, 3], 1.0, &mut rng);
        let a = gn.forward(&x, true);
        let b = gn.forward(&x, false);
        kemf_tensor::assert_close(a.data(), b.data(), 1e-6);
    }

    #[test]
    fn independent_of_other_samples_in_batch() {
        // Per-sample normalization: sample 0's output must not change when
        // sample 1 changes (unlike batch norm).
        let mut gn = GroupNorm::new(1, 2);
        let mut rng = seeded_rng(5);
        let a = Tensor::randn(&[2, 2, 2, 2], 1.0, &mut rng);
        let mut b = a.clone();
        for v in &mut b.data_mut()[8..] {
            *v += 100.0;
        }
        let ya = gn.forward(&a, false);
        let yb = gn.forward(&b, false);
        kemf_tensor::assert_close(&ya.data()[..8], &yb.data()[..8], 1e-5);
    }

    #[test]
    fn gradcheck() {
        let mut gn = GroupNorm::new(2, 4);
        grad_check(&mut gn, &[2, 4, 2, 2], 1e-2, 3e-2);
    }

    #[test]
    fn default_groups_divide_channels() {
        for c in [1usize, 2, 3, 4, 6, 8, 12, 16, 20] {
            let gn = GroupNorm::with_default_groups(c);
            assert_eq!(gn.channels % gn.groups, 0, "channels {c}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_indivisible_groups() {
        GroupNorm::new(3, 4);
    }
}
