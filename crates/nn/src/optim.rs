//! Optimizers and learning-rate schedules.
//!
//! [`Sgd`] implements SGD with momentum, optional Nesterov lookahead, and
//! decoupled weight decay. Velocity buffers are keyed by the deterministic
//! parameter visit order of the network, so one optimizer instance must
//! stay paired with one network (asserted by size).

use crate::layer::Layer;
use kemf_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// SGD hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
    /// Nesterov lookahead (requires momentum > 0).
    pub nesterov: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4, nesterov: false }
    }
}

/// Stochastic gradient descent with momentum.
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// New optimizer; velocity buffers are allocated lazily on first step.
    pub fn new(cfg: SgdConfig) -> Self {
        assert!(cfg.lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&cfg.momentum), "momentum must be in [0, 1)");
        assert!(cfg.weight_decay >= 0.0, "weight decay must be non-negative");
        assert!(!cfg.nesterov || cfg.momentum > 0.0, "nesterov requires momentum");
        Sgd { cfg, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Override the learning rate (used by schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.cfg.lr = lr;
    }

    /// Apply one update to every parameter of `net` using its accumulated
    /// gradients, then leave the gradients untouched (callers typically
    /// `zero_grad` before the next batch).
    pub fn step(&mut self, net: &mut dyn Layer) {
        let cfg = self.cfg;
        // Lazily size velocity buffers on first use.
        if self.velocity.is_empty() && cfg.momentum > 0.0 {
            net.visit_params(&mut |p| self.velocity.push(Tensor::zeros(p.value.dims())));
        }
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        // Fully in-place update (no per-step gradient staging buffers):
        // with g' = grad + wd·value and v ← μ·v + g', the weight update is
        // value ← value − lr·(g' + μ·v) (Nesterov) or value ← value − lr·v.
        net.visit_params_mut(&mut |p| {
            if cfg.momentum > 0.0 {
                let v = &mut velocity[idx];
                assert_eq!(
                    v.dims(),
                    p.grad.dims(),
                    "optimizer paired with a different network (param {idx})"
                );
                v.scale_inplace(cfg.momentum);
                v.axpy(1.0, &p.grad);
                if cfg.weight_decay > 0.0 {
                    v.axpy(cfg.weight_decay, &p.value);
                }
                if cfg.nesterov {
                    if cfg.weight_decay > 0.0 {
                        p.value.scale_inplace(1.0 - cfg.lr * cfg.weight_decay);
                    }
                    p.value.axpy(-cfg.lr, &p.grad);
                    p.value.axpy(-cfg.lr * cfg.momentum, v);
                } else {
                    p.value.axpy(-cfg.lr, v);
                }
            } else {
                if cfg.weight_decay > 0.0 {
                    p.value.scale_inplace(1.0 - cfg.lr * cfg.weight_decay);
                }
                p.value.axpy(-cfg.lr, &p.grad);
            }
            idx += 1;
        });
    }
}

/// Clip the global L2 norm of all parameter gradients to `max_norm`.
/// Returns the pre-clip norm. A standard stabilizer for distillation-style
/// losses whose gradients can spike early in training.
pub fn clip_grad_norm(net: &mut dyn Layer, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f64;
    net.visit_params(&mut |p| sq += p.grad.sq_norm() as f64);
    let norm = sq.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        net.visit_params_mut(&mut |p| p.grad.scale_inplace(scale));
    }
    norm
}

/// Learning-rate schedules over communication rounds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` rounds.
    Step {
        /// Rounds between decays.
        every: usize,
        /// Decay factor.
        gamma: f32,
    },
    /// Cosine decay from the base LR to `min_lr` over `total` rounds.
    Cosine {
        /// Total rounds of the schedule.
        total: usize,
        /// Floor learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `round` given the base rate.
    pub fn lr_at(&self, base: f32, round: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::Step { every, gamma } => {
                assert!(every > 0, "step schedule period must be positive");
                base * gamma.powi((round / every) as i32)
            }
            LrSchedule::Cosine { total, min_lr } => {
                let t = (round.min(total)) as f32 / total.max(1) as f32;
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::loss::cross_entropy;
    use kemf_tensor::rng::seeded_rng;

    #[test]
    fn sgd_reduces_loss_on_toy_problem() {
        let mut net = Linear::new(2, 2, 3);
        let mut opt = Sgd::new(SgdConfig { lr: 0.5, momentum: 0.0, weight_decay: 0.0, nesterov: false });
        let mut rng = seeded_rng(30);
        let x = Tensor::randn(&[16, 2], 1.0, &mut rng);
        // Labels: sign of first feature.
        let labels: Vec<usize> = x.data().chunks(2).map(|r| usize::from(r[0] > 0.0)).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..50 {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            let _ = net.backward(&grad);
            opt.step(&mut net);
        }
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn momentum_accelerates_descent() {
        // On an ill-conditioned quadratic, momentum reaches a lower loss in
        // the same number of steps.
        let run = |momentum: f32| {
            let mut net = Linear::new(2, 1, 4);
            let mut opt =
                Sgd::new(SgdConfig { lr: 0.02, momentum, weight_decay: 0.0, nesterov: false });
            let x = Tensor::from_vec(vec![3.0, 0.0, 0.0, 0.3], &[2, 2]);
            let target = Tensor::from_vec(vec![1.0, -1.0], &[2, 1]);
            let mut loss = 0.0;
            for _ in 0..120 {
                net.zero_grad();
                let y = net.forward(&x, true);
                let diff = y.sub(&target);
                loss = diff.sq_norm();
                let _ = net.backward(&diff.scale(2.0));
                opt.step(&mut net);
            }
            loss
        };
        assert!(run(0.9) < run(0.0), "momentum should help on ill-conditioned problems");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = Linear::new(4, 4, 5);
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.5, nesterov: false });
        let mut before = 0.0;
        net.visit_params(&mut |p| before += p.value.sq_norm());
        // Zero gradients: only decay acts.
        net.zero_grad();
        opt.step(&mut net);
        let mut after = 0.0;
        net.visit_params(&mut |p| after += p.value.sq_norm());
        assert!(after < before, "decay should shrink weights: {before} → {after}");
    }

    #[test]
    fn schedules() {
        let s = LrSchedule::Step { every: 10, gamma: 0.1 };
        assert!((s.lr_at(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(1.0, 10) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(1.0, 25) - 0.01).abs() < 1e-6);
        let c = LrSchedule::Cosine { total: 100, min_lr: 0.0 };
        assert!((c.lr_at(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((c.lr_at(1.0, 100)).abs() < 1e-6);
        assert!(c.lr_at(1.0, 50) < 1.0 && c.lr_at(1.0, 50) > 0.0);
        assert!((LrSchedule::Constant.lr_at(0.3, 77) - 0.3).abs() < 1e-7);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_lr() {
        let _ = Sgd::new(SgdConfig { lr: 0.0, momentum: 0.0, weight_decay: 0.0, nesterov: false });
    }
}
