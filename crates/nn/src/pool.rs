//! Pooling layers: 2×2 max pooling (stride 2) and global average pooling.

use crate::layer::Layer;
use kemf_tensor::workspace::Workspace;
use kemf_tensor::Tensor;

/// 2×2 max pooling with stride 2. Odd trailing rows/columns are dropped
/// (floor semantics), matching the usual CIFAR model definitions.
#[derive(Clone, Default)]
pub struct MaxPool2 {
    /// Flat input index of each output's argmax, plus the input dims.
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2 {
    /// New 2×2 max-pool layer.
    pub fn new() -> Self {
        MaxPool2 { cache: None }
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        let (oh, ow) = (h / 2, w / 2);
        assert!(oh > 0 && ow > 0, "MaxPool2 input {h}x{w} too small");
        let mut out = ws.take_tensor(&[n, c, oh, ow]);
        let mut arg = ws.take_usize(n * c * oh * ow);
        let src = x.data();
        let dst = out.data_mut();
        for nc in 0..n * c {
            let in_base = nc * h * w;
            let out_base = nc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let i00 = in_base + (2 * oy) * w + 2 * ox;
                    let candidates = [i00, i00 + 1, i00 + w, i00 + w + 1];
                    let mut best = candidates[0];
                    for &i in &candidates[1..] {
                        if src[i] > src[best] {
                            best = i;
                        }
                    }
                    dst[out_base + oy * ow + ox] = src[best];
                    arg[out_base + oy * ow + ox] = best;
                }
            }
        }
        if train {
            let mut dims = ws.take_usize(4);
            dims.copy_from_slice(x.dims());
            self.cache = Some((arg, dims));
        } else {
            ws.recycle_usize(arg);
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let (arg, dims) = self.cache.take().expect("MaxPool2::backward without forward(train)");
        let mut gx = ws.take_tensor(&dims);
        let g = gx.data_mut();
        for (&idx, &go) in arg.iter().zip(grad_out.data().iter()) {
            g[idx] += go;
        }
        ws.recycle_usize(arg);
        ws.recycle_usize(dims);
        gx
    }

    crate::stateless_param_impl!();

    fn name(&self) -> &'static str {
        "MaxPool2"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(MaxPool2 { cache: None })
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// New global average pool layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        let area = (h * w) as f32;
        let mut out = ws.take_tensor(&[n, c]);
        let src = x.data();
        let dst = out.data_mut();
        for nc in 0..n * c {
            let s: f32 = src[nc * h * w..(nc + 1) * h * w].iter().sum();
            dst[nc] = s / area;
        }
        if train {
            let mut dims = ws.take_usize(4);
            dims.copy_from_slice(x.dims());
            self.input_dims = Some(dims);
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let dims = self.input_dims.take().expect("GlobalAvgPool::backward without forward(train)");
        let (h, w) = (dims[2], dims[3]);
        let inv_area = 1.0 / (h * w) as f32;
        let mut gx = ws.take_tensor(&dims);
        let g = gx.data_mut();
        for (nc, &go) in grad_out.data().iter().enumerate() {
            let v = go * inv_area;
            for e in &mut g[nc * h * w..(nc + 1) * h * w] {
                *e = v;
            }
        }
        ws.recycle_usize(dims);
        gx
    }

    crate::stateless_param_impl!();

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(GlobalAvgPool { input_dims: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check;

    #[test]
    fn maxpool_picks_maxima() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec((0..15).map(|v| v as f32).collect(), &[1, 1, 3, 5]);
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 1, 1, 2]);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut p = MaxPool2::new();
        grad_check(&mut p, &[1, 2, 4, 4], 1e-3, 5e-2);
    }

    #[test]
    fn gap_averages() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0], &[1, 2, 2, 2]);
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn gap_gradcheck() {
        let mut p = GlobalAvgPool::new();
        grad_check(&mut p, &[2, 3, 2, 2], 1e-2, 2e-2);
    }
}
