//! Small builder helpers shared by the model definitions.

use crate::activation::ReLU;
use crate::conv2d::Conv2d;
use crate::sequential::{NormKind, Sequential};

/// Append `Conv → Norm → ReLU` to a sequential network.
#[allow(clippy::too_many_arguments)]
pub fn conv_norm_relu(
    net: Sequential,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    seed: u64,
    norm: NormKind,
) -> Sequential {
    net.push(Conv2d::new(in_ch, out_ch, kernel, stride, pad, seed))
        .push_boxed(norm.build(out_ch))
        .push(ReLU::new())
}

/// Append `Conv → BatchNorm → ReLU` (paper-default norm).
pub fn conv_bn_relu(
    net: Sequential,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    seed: u64,
) -> Sequential {
    conv_norm_relu(net, in_ch, out_ch, kernel, stride, pad, seed, NormKind::Batch)
}
