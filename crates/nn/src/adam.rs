//! Adam optimizer (Kingma & Ba 2015), with decoupled weight decay
//! (AdamW). FedDF-style server distillation conventionally uses Adam; the
//! ensemble-distillation harness can switch between SGD and Adam.

use crate::layer::Layer;
use kemf_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Step size.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor inside the square root.
    pub eps: f32,
    /// Decoupled (AdamW) weight decay.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// Adam/AdamW optimizer state paired with one network.
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// New optimizer; moment buffers are allocated on first step.
    pub fn new(cfg: AdamConfig) -> Self {
        assert!(cfg.lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&cfg.beta1) && (0.0..1.0).contains(&cfg.beta2), "betas in [0,1)");
        assert!(cfg.eps > 0.0, "eps must be positive");
        Adam { cfg, m: Vec::new(), v: Vec::new(), t: 0 }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// One Adam update over all parameters of `net`.
    pub fn step(&mut self, net: &mut dyn Layer) {
        if self.m.is_empty() {
            net.visit_params(&mut |p| {
                self.m.push(Tensor::zeros(p.value.dims()));
                self.v.push(Tensor::zeros(p.value.dims()));
            });
        }
        self.t += 1;
        let cfg = self.cfg;
        let bc1 = 1.0 - cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(self.t as i32);
        let (m_bufs, v_bufs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        net.visit_params_mut(&mut |p| {
            let m = &mut m_bufs[idx];
            let v = &mut v_bufs[idx];
            assert_eq!(m.dims(), p.value.dims(), "optimizer paired with a different network");
            let g = p.grad.data();
            let vals = p.value.data_mut();
            let (md, vd) = (m.data_mut(), v.data_mut());
            for i in 0..g.len() {
                md[i] = cfg.beta1 * md[i] + (1.0 - cfg.beta1) * g[i];
                vd[i] = cfg.beta2 * vd[i] + (1.0 - cfg.beta2) * g[i] * g[i];
                let m_hat = md[i] / bc1;
                let v_hat = vd[i] / bc2;
                let mut update = m_hat / (v_hat.sqrt() + cfg.eps);
                if cfg.weight_decay > 0.0 {
                    update += cfg.weight_decay * vals[i];
                }
                vals[i] -= cfg.lr * update;
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::loss::cross_entropy;
    use kemf_tensor::rng::seeded_rng;

    #[test]
    fn adam_reduces_loss_on_toy_problem() {
        let mut net = Linear::new(2, 2, 3);
        let mut opt = Adam::new(AdamConfig { lr: 0.05, ..Default::default() });
        let mut rng = seeded_rng(30);
        let x = Tensor::randn(&[16, 2], 1.0, &mut rng);
        let labels: Vec<usize> = x.data().chunks(2).map(|r| usize::from(r[0] > 0.0)).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..60 {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            let _ = net.backward(&grad);
            opt.step(&mut net);
        }
        assert!(last < first * 0.3, "loss {first} → {last}");
        assert_eq!(opt.steps(), 60);
    }

    #[test]
    fn adam_step_size_is_scale_invariant() {
        // Adam normalizes by the gradient's RMS: scaling all gradients by
        // a constant should not change the first update direction/size
        // (up to eps effects).
        let run = |scale: f32| {
            let mut net = Linear::new(2, 1, 5);
            let before = crate::serialize::Weights::from_layer(&net);
            let mut i = 0;
            net.visit_params_mut(&mut |p| {
                if i == 0 {
                    p.grad.data_mut().copy_from_slice(&[0.3 * scale, -0.7 * scale]);
                }
                i += 1;
            });
            let mut opt = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
            opt.step(&mut net);
            let after = crate::serialize::Weights::from_layer(&net);
            after.delta(&before).values
        };
        let small = run(1.0);
        let large = run(100.0);
        kemf_tensor::assert_close(&small, &large, 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut net = Linear::new(4, 4, 6);
        let mut with_decay = Adam::new(AdamConfig { lr: 0.05, weight_decay: 0.5, ..Default::default() });
        let mut before = 0.0;
        net.visit_params(&mut |p| before += p.value.sq_norm());
        net.zero_grad();
        with_decay.step(&mut net);
        let mut after = 0.0;
        net.visit_params(&mut |p| after += p.value.sq_norm());
        assert!(after < before, "{before} → {after}");
    }

    #[test]
    #[should_panic]
    fn rejects_bad_beta() {
        let _ = Adam::new(AdamConfig { beta1: 1.0, ..Default::default() });
    }
}
