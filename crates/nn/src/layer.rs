//! The [`Layer`] trait: explicit forward/backward with cached activations.
//!
//! There is no tape or autograd graph; each layer caches whatever its
//! backward pass needs during `forward(.., train=true)` and consumes it in
//! `backward`. This keeps the substrate small, fully testable with finite
//! differences, and free of interior mutability.
//!
//! Contract:
//! * `backward` must be called at most once per `forward(train=true)`, with
//!   the gradient of the scalar loss w.r.t. the layer's output; it returns
//!   the gradient w.r.t. the input and **accumulates** into parameter
//!   gradients (so multi-head losses like deep mutual learning just call
//!   backward once with the combined output gradient).
//! * `forward(.., train=false)` is a pure inference path (e.g. batch norm
//!   uses running statistics) and need not cache anything.

use crate::param::Param;
use kemf_tensor::workspace::Workspace;
use kemf_tensor::Tensor;

/// Numeric compute format of the forward pass.
///
/// `F32` is exact and required for training; `Int8` routes the GEMM-backed
/// layers (`Linear`, `Conv2d`) through the symmetric int8 engine in
/// [`kemf_tensor::quant`] — an inference-only approximation used by the
/// server's quantized ensemble-logit pass. Backward always runs in f32
/// from the cached f32 activations, so a layer left in `Int8` by mistake
/// still trains on exact gradients of an approximate forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Precision {
    /// Exact f32 compute (default).
    #[default]
    F32,
    /// Symmetric per-row/per-column int8 quantized forward.
    Int8,
}

/// A differentiable network module.
pub trait Layer: Send {
    /// Compute the layer output. `train` selects training-mode behaviour
    /// (caching for backward, batch statistics, ...).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backpropagate: given ∂L/∂output, accumulate parameter gradients and
    /// return ∂L/∂input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Workspace-aware forward: scratch buffers and the returned tensor's
    /// storage come from `ws`, so a steady-state training step allocates
    /// nothing. The caller owns the result and should hand it back via
    /// `ws.recycle_tensor` once consumed. Layers that have no scratch
    /// needs fall back to the plain [`Layer::forward`].
    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let _ = ws;
        self.forward(x, train)
    }

    /// Workspace-aware counterpart of [`Layer::backward`]; same pooling
    /// contract as [`Layer::forward_ws`].
    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let _ = ws;
        self.backward(grad_out)
    }

    /// Visit parameters immutably, in a deterministic order.
    fn visit_params(&self, f: &mut dyn FnMut(&Param));

    /// Visit parameters mutably, in the same order as [`Layer::visit_params`].
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visit non-trainable state tensors (batch-norm running statistics)
    /// that must travel with the weights in federated aggregation but must
    /// never receive gradient updates. Default: none.
    fn visit_buffers(&self, _f: &mut dyn FnMut(&Tensor)) {}

    /// Mutable counterpart of [`Layer::visit_buffers`], same order.
    fn visit_buffers_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}

    /// Select the forward compute format. Containers forward the call to
    /// their children; layers without a quantized path ignore it.
    fn set_precision(&mut self, _p: Precision) {}

    /// Short human-readable layer name for debugging.
    fn name(&self) -> &'static str;

    /// Clone into a boxed trait object (enables `Clone` for containers).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zero all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A layer with no parameters and no state worth naming; helper macro to
/// cut boilerplate in simple layers.
#[macro_export]
macro_rules! stateless_param_impl {
    () => {
        fn visit_params(&self, _f: &mut dyn FnMut(&$crate::param::Param)) {}
        fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut $crate::param::Param)) {}
    };
}
