//! The FedKEMF model zoo: CIFAR-style ResNet-20/32/44, VGG-11, and the
//! LEAF-style 2-layer CNN, all width- and resolution-parameterized.
//!
//! The paper trains the full-scale variants (ResNet width 16, VGG width 64,
//! CNN width 16) on 32×32 CIFAR-10 and 28×28 MNIST. This reproduction
//! trains width/resolution-scaled variants of the *same topologies* on one
//! CPU core, and uses the full-scale constructors for parameter/byte
//! accounting, so the paper's communication-cost ratios are preserved.

use crate::activation::{Flatten, ReLU};
use crate::cnn_util::conv_norm_relu;
use crate::conv2d::Conv2d;
use crate::linear::Linear;
use crate::pool::{GlobalAvgPool, MaxPool2};
use crate::sequential::{BasicBlock, NormKind, Sequential};
use serde::{Deserialize, Serialize};

/// Architectures used in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// CIFAR ResNet with 3 stages × 3 basic blocks (depth 20).
    ResNet20,
    /// CIFAR ResNet with 3 stages × 5 basic blocks (depth 32).
    ResNet32,
    /// CIFAR ResNet with 3 stages × 7 basic blocks (depth 44).
    ResNet44,
    /// VGG-11 (configuration A) with a compact classifier head.
    Vgg11,
    /// LEAF-style 2-layer CNN (two 5×5 conv + pool stages and a classifier).
    Cnn2,
    /// One-hidden-layer MLP (flatten → linear(width) → ReLU → classifier).
    /// Width-elastic by construction: every hidden unit owns a disjoint
    /// parameter slice, which is what rolling sub-model extraction
    /// (FedRolex) needs to cover a wide server net window by window.
    Mlp1,
}

impl Arch {
    /// Blocks per ResNet stage (`depth = 6n + 2`); `None` for non-ResNets.
    pub fn resnet_blocks(self) -> Option<usize> {
        match self {
            Arch::ResNet20 => Some(3),
            Arch::ResNet32 => Some(5),
            Arch::ResNet44 => Some(7),
            _ => None,
        }
    }

    /// Human-readable name matching the paper's tables.
    pub fn display(self) -> &'static str {
        match self {
            Arch::ResNet20 => "ResNet-20",
            Arch::ResNet32 => "ResNet-32",
            Arch::ResNet44 => "ResNet-44",
            Arch::Vgg11 => "VGG-11",
            Arch::Cnn2 => "2-layer CNN",
            Arch::Mlp1 => "1-hidden MLP",
        }
    }

    /// The paper-scale base width for this architecture.
    pub fn paper_width(self) -> usize {
        match self {
            Arch::ResNet20 | Arch::ResNet32 | Arch::ResNet44 => 16,
            Arch::Vgg11 => 64,
            Arch::Cnn2 => 16,
            Arch::Mlp1 => 256,
        }
    }
}

/// Full description of a concrete model instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Topology.
    pub arch: Arch,
    /// Input channels (3 for CIFAR-like, 1 for MNIST-like).
    pub in_channels: usize,
    /// Square input resolution.
    pub input_hw: usize,
    /// Number of classes.
    pub classes: usize,
    /// Base width; stage widths are fixed multiples of this.
    pub width: usize,
    /// Normalization used throughout (batch norm = paper default; group
    /// norm = the federated-friendly alternative, see `NormKind`).
    pub norm: NormKind,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl ModelSpec {
    /// Scaled-down spec used for actual training in this reproduction.
    pub fn scaled(arch: Arch, in_channels: usize, input_hw: usize, classes: usize, seed: u64) -> Self {
        let width = match arch {
            Arch::ResNet20 | Arch::ResNet32 | Arch::ResNet44 => 4,
            Arch::Vgg11 => 8,
            Arch::Cnn2 => 4,
            Arch::Mlp1 => 32,
        };
        ModelSpec { arch, in_channels, input_hw, classes, width, norm: NormKind::Batch, seed }
    }

    /// Same spec with a different normalization kind.
    pub fn with_norm(mut self, norm: NormKind) -> Self {
        self.norm = norm;
        self
    }

    /// Paper-scale spec (full width, 32×32 or 28×28 inputs) used for
    /// parameter and communication-byte accounting.
    pub fn paper_scale(arch: Arch) -> Self {
        let (in_channels, input_hw) = match arch {
            Arch::Cnn2 | Arch::Mlp1 => (1, 28),
            _ => (3, 32),
        };
        ModelSpec {
            arch,
            in_channels,
            input_hw,
            classes: 10,
            width: arch.paper_width(),
            norm: NormKind::Batch,
            seed: 0,
        }
    }

    /// Construct the network for this spec.
    pub fn build(&self) -> Sequential {
        match self.arch {
            Arch::ResNet20 | Arch::ResNet32 | Arch::ResNet44 => build_resnet(self),
            Arch::Vgg11 => build_vgg11(self),
            Arch::Cnn2 => build_cnn2(self),
            Arch::Mlp1 => build_mlp1(self),
        }
    }
}

/// CIFAR ResNet: 3×3 conv stem, three stages of basic blocks with widths
/// `w, 2w, 4w` and strides `1, 2, 2`, global average pool, linear head.
fn build_resnet(spec: &ModelSpec) -> Sequential {
    let n = spec.arch.resnet_blocks().expect("resnet arch");
    let w = spec.width;
    let mut seed = spec.seed.wrapping_mul(7919).wrapping_add(1);
    let mut next_seed = || {
        seed = seed.wrapping_add(1);
        seed
    };
    let mut net = Sequential::new();
    net = conv_norm_relu(net, spec.in_channels, w, 3, 1, 1, next_seed(), spec.norm);
    let stages = [(w, 1usize), (2 * w, 2), (4 * w, 2)];
    let mut in_ch = w;
    for &(out_ch, first_stride) in &stages {
        for b in 0..n {
            let stride = if b == 0 { first_stride } else { 1 };
            net = net.push(BasicBlock::with_norm(in_ch, out_ch, stride, next_seed(), spec.norm));
            in_ch = out_ch;
        }
    }
    net.push(GlobalAvgPool::new()).push(Linear::new(4 * w, spec.classes, next_seed()))
}

/// VGG-11 (configuration A): widths `[1,2,4,4,8,8,8,8] × width`, max-pool
/// after convs 1, 2, 4, 6, 8 while spatial size permits, global average
/// pool fallback, then a `8w → 8w → classes` classifier.
fn build_vgg11(spec: &ModelSpec) -> Sequential {
    let w = spec.width;
    let widths = [w, 2 * w, 4 * w, 4 * w, 8 * w, 8 * w, 8 * w, 8 * w];
    // Max-pool after these conv indices (0-based), the VGG-A schedule.
    let pool_after = [0usize, 1, 3, 5, 7];
    let mut seed = spec.seed.wrapping_mul(104729).wrapping_add(11);
    let mut next_seed = || {
        seed = seed.wrapping_add(1);
        seed
    };
    let mut net = Sequential::new();
    let mut in_ch = spec.in_channels;
    let mut hw = spec.input_hw;
    for (i, &out_ch) in widths.iter().enumerate() {
        net = conv_norm_relu(net, in_ch, out_ch, 3, 1, 1, next_seed(), spec.norm);
        in_ch = out_ch;
        if pool_after.contains(&i) && hw >= 2 {
            net = net.push(MaxPool2::new());
            hw /= 2;
        }
    }
    // Collapse whatever spatial extent remains, then classify.
    net = net.push(GlobalAvgPool::new());
    net.push(Linear::new(8 * w, 8 * w, next_seed()))
        .push(ReLU::new())
        .push(Linear::new(8 * w, spec.classes, next_seed()))
}

/// LEAF-style 2-layer CNN: two 5×5 conv (+ReLU +2×2 max-pool) stages with
/// widths `2w, 4w`, then a linear classifier on the flattened maps.
fn build_cnn2(spec: &ModelSpec) -> Sequential {
    let w = spec.width;
    let mut seed = spec.seed.wrapping_mul(31337).wrapping_add(3);
    let mut next_seed = || {
        seed = seed.wrapping_add(1);
        seed
    };
    let hw_after = spec.input_hw / 2 / 2;
    assert!(hw_after >= 1, "input {} too small for 2-layer CNN", spec.input_hw);
    Sequential::new()
        .push(Conv2d::new(spec.in_channels, 2 * w, 5, 1, 2, next_seed()))
        .push(ReLU::new())
        .push(MaxPool2::new())
        .push(Conv2d::new(2 * w, 4 * w, 5, 1, 2, next_seed()))
        .push(ReLU::new())
        .push(MaxPool2::new())
        .push(Flatten::new())
        .push(Linear::new(4 * w * hw_after * hw_after, spec.classes, next_seed()))
}

/// One-hidden-layer MLP: flatten, `in → width` linear, ReLU, `width →
/// classes` classifier. No normalization layers, so the state is pure
/// parameters (no buffers) and each hidden unit `j` owns exactly one
/// input-weight row, one hidden bias, and one classifier column —
/// disjoint slices a rolling window can extract and scatter back.
fn build_mlp1(spec: &ModelSpec) -> Sequential {
    let w = spec.width;
    let mut seed = spec.seed.wrapping_mul(48611).wrapping_add(5);
    let mut next_seed = || {
        seed = seed.wrapping_add(1);
        seed
    };
    let in_dim = spec.in_channels * spec.input_hw * spec.input_hw;
    Sequential::new()
        .push(Flatten::new())
        .push(Linear::new(in_dim, w, next_seed()))
        .push(ReLU::new())
        .push(Linear::new(w, spec.classes, next_seed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use kemf_tensor::rng::seeded_rng;
    use kemf_tensor::Tensor;

    fn forward_shape(spec: &ModelSpec, batch: usize) -> Vec<usize> {
        let mut net = spec.build();
        let mut rng = seeded_rng(0);
        let x = Tensor::randn(&[batch, spec.in_channels, spec.input_hw, spec.input_hw], 1.0, &mut rng);
        net.forward(&x, false).dims().to_vec()
    }

    #[test]
    fn resnet20_scaled_forward_shape() {
        let spec = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 0);
        assert_eq!(forward_shape(&spec, 2), vec![2, 10]);
    }

    #[test]
    fn resnet_family_depth_ordering() {
        // Deeper ResNets have more parameters at the same width.
        let p20 = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 0).build().param_count();
        let p32 = ModelSpec::scaled(Arch::ResNet32, 3, 16, 10, 0).build().param_count();
        let p44 = ModelSpec::scaled(Arch::ResNet44, 3, 16, 10, 0).build().param_count();
        assert!(p20 < p32 && p32 < p44, "{p20} {p32} {p44}");
    }

    #[test]
    fn vgg_scaled_forward_shape() {
        let spec = ModelSpec::scaled(Arch::Vgg11, 3, 16, 10, 0);
        assert_eq!(forward_shape(&spec, 1), vec![1, 10]);
    }

    #[test]
    fn cnn2_forward_shape_mnist_like() {
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0);
        assert_eq!(forward_shape(&spec, 3), vec![3, 10]);
    }

    #[test]
    fn mlp1_forward_shape_and_param_layout() {
        let spec = ModelSpec::scaled(Arch::Mlp1, 1, 12, 10, 0);
        assert_eq!(forward_shape(&spec, 3), vec![3, 10]);
        // Pure parameters: W1[w, in], b1[w], W2[classes, w], b2[classes]
        // and no normalization buffers — the layout rolling extraction
        // depends on.
        let net = spec.build();
        let in_dim = 12 * 12;
        let expected = 32 * in_dim + 32 + 10 * 32 + 10;
        assert_eq!(net.param_count(), expected);
        let mut buffers = 0;
        net.visit_buffers(&mut |_| buffers += 1);
        assert_eq!(buffers, 0, "MLP-1 must carry no running stats");
    }

    #[test]
    fn vgg_is_much_larger_than_resnets() {
        // The communication-cost headline depends on this ordering.
        let vgg = ModelSpec::paper_scale(Arch::Vgg11).build().param_count();
        let r32 = ModelSpec::paper_scale(Arch::ResNet32).build().param_count();
        let r20 = ModelSpec::paper_scale(Arch::ResNet20).build().param_count();
        assert!(vgg > 10 * r32, "VGG {vgg} vs ResNet-32 {r32}");
        assert!(r32 > r20, "ResNet-32 {r32} vs ResNet-20 {r20}");
    }

    #[test]
    fn paper_scale_resnet20_param_count_plausible() {
        // The canonical CIFAR ResNet-20 has ~0.27 M parameters.
        let p = ModelSpec::paper_scale(Arch::ResNet20).build().param_count();
        assert!((250_000..300_000).contains(&p), "ResNet-20 params {p}");
    }

    #[test]
    fn same_seed_same_weights() {
        let spec = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 7);
        let a = spec.build();
        let b = spec.build();
        let mut wa = Vec::new();
        a.visit_params(&mut |p| wa.extend_from_slice(p.value.data()));
        let mut wb = Vec::new();
        b.visit_params(&mut |p| wb.extend_from_slice(p.value.data()));
        assert_eq!(wa, wb);
    }

    #[test]
    fn groupnorm_variants_build_and_run() {
        for arch in [Arch::ResNet20, Arch::Vgg11] {
            let spec = ModelSpec::scaled(arch, 3, 16, 10, 0).with_norm(NormKind::Group);
            assert_eq!(forward_shape(&spec, 2), vec![2, 10], "{}", arch.display());
        }
    }

    #[test]
    fn groupnorm_model_has_no_buffers() {
        use crate::layer::Layer;
        let bn = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 0).build();
        let gn = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 0).with_norm(NormKind::Group).build();
        let count = |net: &Sequential| {
            let mut n = 0;
            net.visit_buffers(&mut |_| n += 1);
            n
        };
        assert!(count(&bn) > 0, "batch-norm model carries running stats");
        assert_eq!(count(&gn), 0, "group-norm model is stateless at inference");
    }

    #[test]
    fn different_seed_different_weights() {
        let a = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1).build();
        let b = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 2).build();
        let mut wa = Vec::new();
        a.visit_params(&mut |p| wa.extend_from_slice(p.value.data()));
        let mut wb = Vec::new();
        b.visit_params(&mut |p| wb.extend_from_slice(p.value.data()));
        assert_ne!(wa, wb);
    }
}
