//! Layer containers: [`Sequential`] chains and the residual
//! [`BasicBlock`] used by the CIFAR ResNet family.

use crate::activation::ReLU;
use crate::conv2d::Conv2d;
use crate::groupnorm::GroupNorm;
use crate::layer::Layer;
use crate::norm::BatchNorm2d;
use crate::param::Param;
use kemf_tensor::workspace::Workspace;
use kemf_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which normalization the model zoo builds with.
///
/// Batch norm matches the paper's architectures; group norm is the
/// federated-learning-friendly alternative (per-sample statistics, no
/// running state to go stale or clash across non-IID clients).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NormKind {
    /// `BatchNorm2d` (paper default).
    Batch,
    /// `GroupNorm` with ≤4 channels per group.
    Group,
}

impl NormKind {
    /// Build the norm layer for `channels` feature maps.
    pub fn build(self, channels: usize) -> Box<dyn Layer> {
        match self {
            NormKind::Batch => Box::new(BatchNorm2d::new(channels)),
            NormKind::Group => Box::new(GroupNorm::with_default_groups(channels)),
        }
    }
}

/// A chain of layers applied in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Sequential { layers: self.layers.clone() }
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h, train);
        }
        h
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        // Each intermediate returns to the pool the moment the next layer
        // has consumed it (layers copy whatever they cache for backward).
        let mut iter = self.layers.iter_mut();
        let mut h = match iter.next() {
            Some(l) => l.forward_ws(x, train, ws),
            None => return x.clone(),
        };
        for l in iter {
            let next = l.forward_ws(&h, train, ws);
            ws.recycle_tensor(h);
            h = next;
        }
        h
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut iter = self.layers.iter_mut().rev();
        let mut g = match iter.next() {
            Some(l) => l.backward_ws(grad_out, ws),
            None => return grad_out.clone(),
        };
        for l in iter {
            let next = l.backward_ws(&g, ws);
            ws.recycle_tensor(g);
            g = next;
        }
        g
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for l in &self.layers {
            l.visit_params(f);
        }
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params_mut(f);
        }
    }

    fn visit_buffers(&self, f: &mut dyn FnMut(&Tensor)) {
        for l in &self.layers {
            l.visit_buffers(f);
        }
    }

    fn visit_buffers_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for l in &mut self.layers {
            l.visit_buffers_mut(f);
        }
    }

    fn set_precision(&mut self, p: crate::layer::Precision) {
        for l in &mut self.layers {
            l.set_precision(p);
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Pre-activation-free residual block: `y = ReLU(BN(conv(x)) → BN(conv) + shortcut(x))`,
/// the classic CIFAR ResNet basic block (He et al. 2016).
///
/// When `stride > 1` or channel counts differ, the shortcut is a strided
/// 1×1 convolution + batch norm; otherwise it is the identity.
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: Box<dyn Layer>,
    relu1: ReLU,
    conv2: Conv2d,
    bn2: Box<dyn Layer>,
    shortcut: Option<(Conv2d, Box<dyn Layer>)>,
    relu_out: ReLU,
}

impl BasicBlock {
    /// Build a block mapping `in_ch → out_ch` with the given stride on the
    /// first convolution, normalized with batch norm (paper default).
    pub fn new(in_ch: usize, out_ch: usize, stride: usize, seed: u64) -> Self {
        Self::with_norm(in_ch, out_ch, stride, seed, NormKind::Batch)
    }

    /// Build with an explicit normalization kind.
    pub fn with_norm(in_ch: usize, out_ch: usize, stride: usize, seed: u64, norm: NormKind) -> Self {
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some((
                Conv2d::new(in_ch, out_ch, 1, stride, 0, seed.wrapping_add(101)),
                norm.build(out_ch),
            ))
        } else {
            None
        };
        BasicBlock {
            conv1: Conv2d::new(in_ch, out_ch, 3, stride, 1, seed),
            bn1: norm.build(out_ch),
            relu1: ReLU::new(),
            conv2: Conv2d::new(out_ch, out_ch, 3, 1, 1, seed.wrapping_add(1)),
            bn2: norm.build(out_ch),
            shortcut,
            relu_out: ReLU::new(),
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.conv1.forward(x, train);
        let h = self.bn1.forward(&h, train);
        let h = self.relu1.forward(&h, train);
        let h = self.conv2.forward(&h, train);
        let h = self.bn2.forward(&h, train);
        let s = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        let sum = h.add(&s);
        self.relu_out.forward(&sum, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_sum = self.relu_out.backward(grad_out);
        // Residual branch.
        let g = self.bn2.backward(&g_sum);
        let g = self.conv2.backward(&g);
        let g = self.relu1.backward(&g);
        let g = self.bn1.backward(&g);
        let g_main = self.conv1.backward(&g);
        // Shortcut branch.
        let g_short = match &mut self.shortcut {
            Some((conv, bn)) => {
                let g = bn.backward(&g_sum);
                conv.backward(&g)
            }
            None => g_sum,
        };
        g_main.add(&g_short)
    }

    fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let h = self.conv1.forward_ws(x, train, ws);
        let h2 = self.bn1.forward_ws(&h, train, ws);
        ws.recycle_tensor(h);
        let h3 = self.relu1.forward_ws(&h2, train, ws);
        ws.recycle_tensor(h2);
        let h4 = self.conv2.forward_ws(&h3, train, ws);
        ws.recycle_tensor(h3);
        let mut sum = self.bn2.forward_ws(&h4, train, ws);
        ws.recycle_tensor(h4);
        match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward_ws(x, train, ws);
                let s2 = bn.forward_ws(&s, train, ws);
                ws.recycle_tensor(s);
                sum.axpy(1.0, &s2);
                ws.recycle_tensor(s2);
            }
            None => sum.axpy(1.0, x),
        }
        let y = self.relu_out.forward_ws(&sum, train, ws);
        ws.recycle_tensor(sum);
        y
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let g_sum = self.relu_out.backward_ws(grad_out, ws);
        // Residual branch.
        let g = self.bn2.backward_ws(&g_sum, ws);
        let g2 = self.conv2.backward_ws(&g, ws);
        ws.recycle_tensor(g);
        let g3 = self.relu1.backward_ws(&g2, ws);
        ws.recycle_tensor(g2);
        let g4 = self.bn1.backward_ws(&g3, ws);
        ws.recycle_tensor(g3);
        let mut g_main = self.conv1.backward_ws(&g4, ws);
        ws.recycle_tensor(g4);
        // Shortcut branch.
        match &mut self.shortcut {
            Some((conv, bn)) => {
                let gb = bn.backward_ws(&g_sum, ws);
                let gs = conv.backward_ws(&gb, ws);
                ws.recycle_tensor(gb);
                g_main.axpy(1.0, &gs);
                ws.recycle_tensor(gs);
            }
            None => g_main.axpy(1.0, &g_sum),
        }
        ws.recycle_tensor(g_sum);
        g_main
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &self.shortcut {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.bn1.visit_params_mut(f);
        self.conv2.visit_params_mut(f);
        self.bn2.visit_params_mut(f);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.visit_params_mut(f);
            bn.visit_params_mut(f);
        }
    }

    fn visit_buffers(&self, f: &mut dyn FnMut(&Tensor)) {
        self.bn1.visit_buffers(f);
        self.bn2.visit_buffers(f);
        if let Some((_, bn)) = &self.shortcut {
            bn.visit_buffers(f);
        }
    }

    fn visit_buffers_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.bn1.visit_buffers_mut(f);
        self.bn2.visit_buffers_mut(f);
        if let Some((_, bn)) = &mut self.shortcut {
            bn.visit_buffers_mut(f);
        }
    }

    fn set_precision(&mut self, p: crate::layer::Precision) {
        self.conv1.set_precision(p);
        self.conv2.set_precision(p);
        if let Some((conv, _)) = &mut self.shortcut {
            conv.set_precision(p);
        }
    }

    fn name(&self) -> &'static str {
        "BasicBlock"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(BasicBlock {
            conv1: self.conv1.clone(),
            bn1: self.bn1.clone(),
            relu1: ReLU::new(),
            conv2: self.conv2.clone(),
            bn2: self.bn2.clone(),
            shortcut: self.shortcut.as_ref().map(|(c, b)| (c.clone(), b.clone())),
            relu_out: ReLU::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::testutil::grad_check;

    #[test]
    fn sequential_chains_layers() {
        let mut net = Sequential::new()
            .push(Linear::new(4, 8, 0))
            .push(ReLU::new())
            .push(Linear::new(8, 3, 1));
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward(&x, false);
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn sequential_gradcheck() {
        let mut net = Sequential::new()
            .push(Linear::new(3, 5, 10))
            .push(ReLU::new())
            .push(Linear::new(5, 2, 11));
        grad_check(&mut net, &[2, 3], 1e-2, 3e-2);
    }

    #[test]
    fn basic_block_preserves_shape_with_identity_shortcut() {
        let mut b = BasicBlock::new(4, 4, 1, 0);
        let x = Tensor::ones(&[1, 4, 6, 6]);
        let y = b.forward(&x, false);
        assert_eq!(y.dims(), &[1, 4, 6, 6]);
    }

    #[test]
    fn basic_block_downsamples_with_projection() {
        let mut b = BasicBlock::new(4, 8, 2, 0);
        let x = Tensor::ones(&[2, 4, 8, 8]);
        let y = b.forward(&x, false);
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn basic_block_gradcheck_identity() {
        // Small FD step: batch-norm centers activations at zero, so a large
        // perturbation pushes elements across ReLU kinks and corrupts the
        // finite differences. At 1e-3 the check fails spuriously (FD −1.21
        // vs a correct analytic −1.69 on param 0); an FD step sweep shows
        // the finite differences converge to the analytic value by 3e-4.
        let mut b = BasicBlock::new(2, 2, 1, 5);
        grad_check(&mut b, &[2, 2, 4, 4], 3e-4, 5e-2);
    }

    #[test]
    fn basic_block_gradcheck_projection() {
        let mut b = BasicBlock::new(2, 4, 2, 6);
        grad_check(&mut b, &[2, 2, 4, 4], 1e-3, 5e-2);
    }

    #[test]
    fn clone_box_deep_copies() {
        let b = BasicBlock::new(2, 2, 1, 7);
        let mut c = b.clone_box();
        c.visit_params_mut(&mut |p| p.value.fill(0.0));
        let mut any_nonzero = false;
        b.visit_params(&mut |p| {
            if p.value.data().iter().any(|&v| v != 0.0) {
                any_nonzero = true;
            }
        });
        assert!(any_nonzero, "clone should not alias the original");
    }
}
