//! Steady-state allocation audit for the training hot path.
//!
//! A counting global allocator proves the workspace plumbing end to end:
//! after one warm-up step populates every pool (im2col buffers, layer
//! outputs, loss gradients, optimizer velocity), a second full training
//! step — forward, loss, backward, SGD — performs **zero** heap
//! allocations. The same audit then covers the int8 quantized forward
//! (per-layer code/scale buffers from the i8 pool) and a GEMM large
//! enough to take the parallel-packing grid split (per-thread pack
//! pools).
//!
//! This file holds exactly one test: the counter is process-global, and a
//! concurrent test in the same binary would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Count heap allocations performed by `f`.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn second_training_step_allocates_nothing() {
    use kemf_nn::activation::{Flatten, ReLU};
    use kemf_nn::conv2d::Conv2d;
    use kemf_nn::layer::Layer;
    use kemf_nn::linear::Linear;
    use kemf_nn::loss::cross_entropy_ws;
    use kemf_nn::optim::{Sgd, SgdConfig};
    use kemf_nn::pool::MaxPool2;
    use kemf_nn::sequential::Sequential;
    use kemf_tensor::rng::seeded_rng;
    use kemf_tensor::workspace::Workspace;
    use kemf_tensor::Tensor;

    // Conv → ReLU → MaxPool → Conv → ReLU → Flatten → Linear: every layer
    // class on the DML hot path (norm layers keep per-batch statistics and
    // are audited by their own pool tests).
    let mut net = Sequential::new()
        .push(Conv2d::new(1, 8, 3, 1, 1, 1))
        .push(ReLU::new())
        .push(MaxPool2::new())
        .push(Conv2d::new(8, 8, 3, 1, 1, 2))
        .push(ReLU::new())
        .push(Flatten::new())
        .push(Linear::new(8 * 4 * 4, 10, 3));
    let mut opt = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4, nesterov: false });
    let mut ws = Workspace::new();
    let mut rng = seeded_rng(7);
    let x = Tensor::randn(&[4, 1, 8, 8], 1.0, &mut rng);
    let labels = [0usize, 3, 1, 7];

    let step = |net: &mut Sequential, ws: &mut Workspace, opt: &mut Sgd| {
        net.zero_grad();
        let logits = net.forward_ws(&x, true, ws);
        let (loss, grad) = cross_entropy_ws(&logits, &labels, ws);
        ws.recycle_tensor(logits);
        let gx = net.backward_ws(&grad, ws);
        ws.recycle_tensor(grad);
        ws.recycle_tensor(gx);
        opt.step(net);
        loss
    };

    // Warm-up: populates the workspace pools and the optimizer velocity.
    let warm_loss = step(&mut net, &mut ws, &mut opt);
    assert!(warm_loss.is_finite());

    // Steady state: the identical step must never touch the allocator.
    let allocs = count_allocs(|| {
        let loss = step(&mut net, &mut ws, &mut opt);
        assert!(loss.is_finite());
    });
    assert_eq!(allocs, 0, "steady-state training step allocated {allocs} times");

    // And it stays at zero across further steps.
    let allocs = count_allocs(|| {
        for _ in 0..3 {
            let _ = step(&mut net, &mut ws, &mut opt);
        }
    });
    assert_eq!(allocs, 0, "later steps allocated {allocs} times");

    // Int8 quantized inference: the first forward populates the i8
    // code/scale pools; the second must be allocation-free too.
    net.set_precision(kemf_nn::layer::Precision::Int8);
    let warm = net.forward_ws(&x, false, &mut ws);
    ws.recycle_tensor(warm);
    let allocs = count_allocs(|| {
        let y = net.forward_ws(&x, false, &mut ws);
        assert!(y.data().iter().all(|v| v.is_finite()));
        ws.recycle_tensor(y);
    });
    assert_eq!(allocs, 0, "steady-state int8 forward allocated {allocs} times");
    net.set_precision(kemf_nn::layer::Precision::F32);

    // Parallel-packing path: 160³ multiply-adds is past
    // `kemf_tensor::gemm::PAR_FLOPS`, so with a multi-thread pool
    // configured the M/N grid split engages (the vendored rayon runs it
    // inline on this thread, which keeps the audit deterministic). The
    // per-thread pack pools must absorb the second call entirely.
    rayon::ThreadPoolBuilder::new().num_threads(2).build_global().ok();
    let dim = 160;
    let a = vec![0.5f32; dim * dim];
    let b = vec![0.25f32; dim * dim];
    let mut c = vec![0.0f32; dim * dim];
    kemf_tensor::matmul::matmul_into(&a, &b, &mut c, dim, dim, dim);
    let allocs = count_allocs(|| {
        kemf_tensor::matmul::matmul_into(&a, &b, &mut c, dim, dim, dim);
    });
    assert_eq!(allocs, 0, "steady-state parallel-packed GEMM allocated {allocs} times");
    assert!((c[0] - 0.5 * 0.25 * dim as f32).abs() < 1e-3);
}
