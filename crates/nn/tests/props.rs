//! Property-based tests of the neural-network substrate: linearity of
//! layers that must be linear, invariances of normalization, and
//! optimizer/serialization invariants.

use kemf_nn::layer::Layer;
use kemf_nn::linear::Linear;
use kemf_nn::loss::{accuracy, cross_entropy};
use kemf_nn::models::{Arch, ModelSpec};
use kemf_nn::model::Model;
use kemf_nn::norm::BatchNorm2d;
use kemf_nn::optim::{clip_grad_norm, LrSchedule, Sgd, SgdConfig};
use kemf_nn::serialize::Weights;
use kemf_tensor::Tensor;
use proptest::prelude::*;

fn vecf(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_layer_is_affine(a in vecf(6), b in vecf(6), s in -2.0f32..2.0) {
        // f(s·x + y) − f(y) == s·(f(x) − f(0)) for an affine map.
        let mut l = Linear::new(3, 4, 7);
        let x = Tensor::from_vec(a, &[2, 3]);
        let y = Tensor::from_vec(b, &[2, 3]);
        let zero = Tensor::zeros(&[2, 3]);
        let f = |l: &mut Linear, t: &Tensor| l.forward(t, false);
        let lhs = f(&mut l, &x.scale(s).add(&y)).sub(&f(&mut l, &y));
        let rhs = f(&mut l, &x).sub(&f(&mut l, &zero)).scale(s);
        kemf_tensor::assert_close(lhs.data(), rhs.data(), 1e-3);
    }

    #[test]
    fn batchnorm_train_output_is_scale_invariant(v in vecf(2 * 2 * 3 * 3), gain in 0.5f32..4.0) {
        // BN(x) == BN(gain · x) in training mode (γ=1, β=0).
        let x = Tensor::from_vec(v, &[2, 2, 3, 3]);
        let mut bn1 = BatchNorm2d::new(2);
        let mut bn2 = BatchNorm2d::new(2);
        let a = bn1.forward(&x, true);
        let b = bn2.forward(&x.scale(gain), true);
        kemf_tensor::assert_close(a.data(), b.data(), 2e-2);
    }

    #[test]
    fn clip_grad_norm_caps_and_preserves_direction(v in vecf(12), max in 0.5f32..4.0) {
        let mut l = Linear::new(3, 4, 1);
        // Install the random gradient into the weight parameter.
        let mut i = 0;
        l.visit_params_mut(&mut |p| {
            if i == 0 {
                p.grad.data_mut().copy_from_slice(&v);
            }
            i += 1;
        });
        let pre = clip_grad_norm(&mut l, max);
        let post = {
            let mut sq = 0.0f32;
            l.visit_params(&mut |p| sq += p.grad.sq_norm());
            sq.sqrt()
        };
        prop_assert!(post <= max + 1e-4, "post-clip norm {post} > {max}");
        if pre <= max {
            prop_assert!((post - pre).abs() < 1e-4, "no-op clip changed gradient");
        } else {
            // Direction preserved: grad ∝ original.
            let scale = post / pre;
            let mut clipped = Vec::new();
            let mut i = 0;
            l.visit_params(&mut |p| {
                if i == 0 {
                    clipped = p.grad.data().to_vec();
                }
                i += 1;
            });
            for (g, &orig) in clipped.iter().zip(v.iter()) {
                prop_assert!((g - orig * scale).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn sgd_without_momentum_is_exact_rule(g in vecf(12), lr in 0.001f32..0.5) {
        let mut l = Linear::new(3, 4, 2);
        let before = Weights::from_layer(&l);
        let mut i = 0;
        l.visit_params_mut(&mut |p| {
            if i == 0 {
                p.grad.data_mut().copy_from_slice(&g);
            }
            i += 1;
        });
        let mut opt = Sgd::new(SgdConfig { lr, momentum: 0.0, weight_decay: 0.0, nesterov: false });
        opt.step(&mut l);
        let after = Weights::from_layer(&l);
        for (i, &gi) in g.iter().enumerate().take(12) {
            prop_assert!((after.values[i] - (before.values[i] - lr * gi)).abs() < 1e-5);
        }
        // Bias untouched (zero grad).
        for i in 12..16 {
            prop_assert!((after.values[i] - before.values[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn cosine_schedule_is_monotone_decreasing(base in 0.01f32..1.0, total in 4usize..50) {
        let s = LrSchedule::Cosine { total, min_lr: 0.0 };
        let mut last = f32::INFINITY;
        for r in 0..=total {
            let lr = s.lr_at(base, r);
            prop_assert!(lr <= last + 1e-6);
            prop_assert!(lr >= -1e-6);
            last = lr;
        }
    }

    #[test]
    fn accuracy_is_fraction_of_matches(labels in prop::collection::vec(0usize..4, 10)) {
        // One-hot logits at the labels → accuracy 1; shifted labels → 0.
        let mut v = vec![0.0f32; 10 * 4];
        for (i, &y) in labels.iter().enumerate() {
            v[i * 4 + y] = 5.0;
        }
        let logits = Tensor::from_vec(v, &[10, 4]);
        prop_assert!((accuracy(&logits, &labels) - 1.0).abs() < 1e-6);
        let wrong: Vec<usize> = labels.iter().map(|&y| (y + 1) % 4).collect();
        prop_assert!(accuracy(&logits, &wrong).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_decreases_along_negative_gradient(v in vecf(8), step in 0.01f32..0.3) {
        let logits = Tensor::from_vec(v, &[2, 4]);
        let labels = vec![1usize, 3];
        let (l0, grad) = cross_entropy(&logits, &labels);
        let moved = logits.add(&grad.scale(-step));
        let (l1, _) = cross_entropy(&moved, &labels);
        prop_assert!(l1 <= l0 + 1e-5, "loss should not increase along −∇: {l0} → {l1}");
    }
}

#[test]
fn model_state_bytes_consistent_across_archs() {
    for arch in [Arch::ResNet20, Arch::Vgg11, Arch::Cnn2] {
        let (ch, hw) = if arch == Arch::Cnn2 { (1, 12) } else { (3, 16) };
        let m = Model::new(ModelSpec::scaled(arch, ch, hw, 10, 0));
        let s = m.state();
        assert_eq!(s.bytes(), 4 * (s.params.numel() + s.buffers.numel()));
        assert_eq!(m.state_bytes(), s.bytes());
        assert!(m.bytes() <= s.bytes(), "buffers add to the wire size");
    }
}
