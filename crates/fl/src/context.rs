//! [`FlContext`]: the immutable world a federated run executes in —
//! client data shards, test set, and configuration.
//!
//! Shards come from one of two sources. [`FlContext::new`] /
//! [`FlContext::with_shards`] pre-materialize every client's dataset
//! (the classic layout, right for worlds small enough to hold). For
//! population-scale simulation, [`FlContext::synthetic`] keeps no
//! per-client data at all: each client's shard is generated on demand
//! from its own deterministic stream when [`FlContext::client_shard`]
//! is called, so resident data is O(cohort), not O(population).

use crate::config::FlConfig;
use kemf_data::dataset::Dataset;
use kemf_data::dirichlet::dirichlet_partition;
use kemf_data::stats::heterogeneity;
use kemf_data::synth::SynthTask;
use kemf_tensor::rng::child_seed;
use std::ops::Deref;

/// Stream offset for on-demand client shards, clear of the small
/// hand-picked stream ids the tests and examples draw from.
const SHARD_STREAM_BASE: u64 = 1 << 32;

/// Where client training shards come from.
enum ShardSource {
    /// One pre-built dataset per client.
    Materialized(Vec<Dataset>),
    /// Generate client `k`'s shard on demand from stream
    /// `SHARD_STREAM_BASE + k`.
    Synthetic {
        task: SynthTask,
        per_client: usize,
    },
}

/// A client's training shard: borrowed from a materialized partition,
/// or generated on demand and owned by the caller for the duration of
/// the client's local update.
pub enum ClientShard<'a> {
    /// View into a pre-materialized shard.
    Borrowed(&'a Dataset),
    /// Freshly generated shard (dropped when the client finishes).
    Owned(Dataset),
}

impl Deref for ClientShard<'_> {
    type Target = Dataset;
    fn deref(&self) -> &Dataset {
        match self {
            ClientShard::Borrowed(d) => d,
            ClientShard::Owned(d) => d,
        }
    }
}

/// Shared, read-only state of one federated experiment.
pub struct FlContext {
    /// Run configuration.
    pub cfg: FlConfig,
    /// Per-client training data source.
    shards: ShardSource,
    /// Global held-out test set.
    pub test: Dataset,
    /// Measured heterogeneity of the partition (mean TV distance);
    /// `0.0` for synthetic on-demand shards (each client draws from the
    /// same generator, so the partition is IID by construction).
    pub heterogeneity: f64,
}

impl FlContext {
    /// Partition `train` across `cfg.n_clients` clients with the
    /// configured Dirichlet α and materialize per-client datasets.
    pub fn new(cfg: FlConfig, train: &Dataset, test: Dataset) -> Self {
        // Construction has no error channel; the engine re-validates and
        // returns the typed error for callers that need to recover.
        if let Err(e) = cfg.validate() {
            panic!("invalid FlConfig: {e}");
        }
        let shards = dirichlet_partition(
            &train.labels,
            train.classes,
            cfg.n_clients,
            cfg.alpha,
            cfg.min_per_client,
            child_seed(cfg.seed, 0x5041_5254), // "PART"
        );
        let het = heterogeneity(&train.labels, train.classes, &shards);
        let client_data = shards.iter().map(|s| train.subset(s)).collect();
        FlContext { cfg, shards: ShardSource::Materialized(client_data), test, heterogeneity: het }
    }

    /// Build with an explicit, pre-computed partition (used by multi-model
    /// experiments that also assign per-client local test sets).
    pub fn with_shards(cfg: FlConfig, train: &Dataset, shards: &[Vec<usize>], test: Dataset) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FlConfig: {e}");
        }
        assert_eq!(shards.len(), cfg.n_clients, "shard count must equal client count");
        let het = heterogeneity(&train.labels, train.classes, shards);
        let client_data = shards.iter().map(|s| train.subset(s)).collect();
        FlContext { cfg, shards: ShardSource::Materialized(client_data), test, heterogeneity: het }
    }

    /// Population-scale world with no materialized shards: client `k`'s
    /// `per_client`-sample training set is generated on demand from its
    /// own deterministic stream every time `k` is fetched. Memory is
    /// O(cohort) regardless of `cfg.n_clients`.
    pub fn synthetic(cfg: FlConfig, task: SynthTask, per_client: usize, test: Dataset) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FlConfig: {e}");
        }
        assert!(per_client > 0, "per_client must be at least 1");
        FlContext {
            cfg,
            shards: ShardSource::Synthetic { task, per_client },
            test,
            heterogeneity: 0.0,
        }
    }

    /// Client `k`'s training shard: a borrow of the materialized
    /// dataset, or a freshly generated one the caller owns for the
    /// duration of the client's local update.
    pub fn client_shard(&self, k: usize) -> ClientShard<'_> {
        match &self.shards {
            ShardSource::Materialized(data) => ClientShard::Borrowed(&data[k]),
            ShardSource::Synthetic { task, per_client } => {
                ClientShard::Owned(task.generate(*per_client, SHARD_STREAM_BASE + k as u64))
            }
        }
    }

    /// Client `k`'s training sample count, without materializing the
    /// shard.
    pub fn client_shard_len(&self, k: usize) -> usize {
        match &self.shards {
            ShardSource::Materialized(data) => data[k].len(),
            ShardSource::Synthetic { per_client, .. } => *per_client,
        }
    }

    /// Number of clients with a shard (always `cfg.n_clients`).
    pub fn n_shards(&self) -> usize {
        match &self.shards {
            ShardSource::Materialized(data) => data.len(),
            ShardSource::Synthetic { .. } => self.cfg.n_clients,
        }
    }

    /// Total training samples across clients.
    pub fn total_train_samples(&self) -> usize {
        match &self.shards {
            ShardSource::Materialized(data) => data.iter().map(Dataset::len).sum(),
            ShardSource::Synthetic { per_client, .. } => self.cfg.n_clients * per_client,
        }
    }

    /// Number of classes in the task.
    pub fn classes(&self) -> usize {
        self.test.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_data::synth::SynthConfig;

    #[test]
    fn synthetic_shards_are_lazy_deterministic_and_per_client() {
        let task = SynthTask::new(SynthConfig::mnist_like(7));
        let test = task.generate(20, 1);
        let cfg = FlConfig { n_clients: 1_000_000, sample_ratio: 0.01, ..Default::default() };
        let ctx = FlContext::synthetic(cfg, SynthTask::new(SynthConfig::mnist_like(7)), 16, test);
        assert_eq!(ctx.n_shards(), 1_000_000);
        assert_eq!(ctx.client_shard_len(999_999), 16);
        assert_eq!(ctx.total_train_samples(), 16_000_000);
        let a = ctx.client_shard(3);
        let b = ctx.client_shard(3);
        assert_eq!(a.labels, b.labels, "same client, same shard");
        assert_eq!(a.len(), 16);
        let c = ctx.client_shard(4);
        assert_ne!(
            (a.images.data(), &a.labels),
            (c.images.data(), &c.labels),
            "different clients draw from different streams"
        );
    }
}
