//! [`FlContext`]: the immutable world a federated run executes in —
//! client data shards, test set, and configuration.

use crate::config::FlConfig;
use kemf_data::dataset::Dataset;
use kemf_data::dirichlet::dirichlet_partition;
use kemf_data::stats::heterogeneity;
use kemf_tensor::rng::child_seed;

/// Shared, read-only state of one federated experiment.
pub struct FlContext {
    /// Run configuration.
    pub cfg: FlConfig,
    /// Pre-materialized per-client training datasets.
    pub client_data: Vec<Dataset>,
    /// Global held-out test set.
    pub test: Dataset,
    /// Measured heterogeneity of the partition (mean TV distance).
    pub heterogeneity: f64,
}

impl FlContext {
    /// Partition `train` across `cfg.n_clients` clients with the
    /// configured Dirichlet α and materialize per-client datasets.
    pub fn new(cfg: FlConfig, train: &Dataset, test: Dataset) -> Self {
        // Construction has no error channel; the engine re-validates and
        // returns the typed error for callers that need to recover.
        if let Err(e) = cfg.validate() {
            panic!("invalid FlConfig: {e}");
        }
        let shards = dirichlet_partition(
            &train.labels,
            train.classes,
            cfg.n_clients,
            cfg.alpha,
            cfg.min_per_client,
            child_seed(cfg.seed, 0x5041_5254), // "PART"
        );
        let het = heterogeneity(&train.labels, train.classes, &shards);
        let client_data = shards.iter().map(|s| train.subset(s)).collect();
        FlContext { cfg, client_data, test, heterogeneity: het }
    }

    /// Build with an explicit, pre-computed partition (used by multi-model
    /// experiments that also assign per-client local test sets).
    pub fn with_shards(cfg: FlConfig, train: &Dataset, shards: &[Vec<usize>], test: Dataset) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FlConfig: {e}");
        }
        assert_eq!(shards.len(), cfg.n_clients, "shard count must equal client count");
        let het = heterogeneity(&train.labels, train.classes, shards);
        let client_data = shards.iter().map(|s| train.subset(s)).collect();
        FlContext { cfg, client_data, test, heterogeneity: het }
    }

    /// Total training samples across clients.
    pub fn total_train_samples(&self) -> usize {
        self.client_data.iter().map(Dataset::len).sum()
    }

    /// Number of classes in the task.
    pub fn classes(&self) -> usize {
        self.test.classes
    }
}
