//! Simulated network model: turn communication bytes into wall-clock
//! time so experiments can report *time-to-accuracy*, the quantity edge
//! deployments actually optimize. The paper argues in bytes; a byte
//! budget maps to seconds through exactly this kind of link model.

use crate::metrics::History;
use serde::{Deserialize, Serialize};

/// A symmetric client↔server link.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Sustained throughput in bytes per second.
    pub bandwidth_bps: f64,
    /// Per-round fixed latency in seconds (connection setup, signaling).
    pub latency_s: f64,
}

impl NetworkModel {
    /// A 4G-class uplink: ~5 MB/s sustained, 80 ms round latency.
    pub fn cellular_4g() -> Self {
        NetworkModel { bandwidth_bps: 5.0 * 1024.0 * 1024.0, latency_s: 0.08 }
    }

    /// Home broadband: ~25 MB/s, 20 ms.
    pub fn broadband() -> Self {
        NetworkModel { bandwidth_bps: 25.0 * 1024.0 * 1024.0, latency_s: 0.02 }
    }

    /// Constrained IoT uplink: ~128 KB/s, 200 ms.
    pub fn iot() -> Self {
        NetworkModel { bandwidth_bps: 128.0 * 1024.0, latency_s: 0.2 }
    }

    /// Transfer time for one payload (seconds). Clients within a round
    /// transfer in parallel; the round is gated by the *largest single
    /// client payload*, so the caller passes per-client bytes.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        assert!(self.bandwidth_bps > 0.0, "bandwidth must be positive");
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Simulated communication time of a full training history, assuming
    /// each round's traffic is spread evenly over its sampled clients and
    /// clients transfer in parallel.
    pub fn history_comm_time(&self, history: &History, sampled_per_round: usize) -> f64 {
        assert!(sampled_per_round > 0, "need at least one client per round");
        let mut total = 0.0;
        let mut prev = 0u64;
        for r in &history.records {
            let round_bytes = r.cum_bytes - prev;
            prev = r.cum_bytes;
            let per_client = round_bytes / sampled_per_round as u64;
            total += self.transfer_time(per_client);
        }
        total
    }

    /// Simulated seconds of communication to reach `target` accuracy, or
    /// `None` if the run never reaches it.
    pub fn time_to_accuracy(
        &self,
        history: &History,
        sampled_per_round: usize,
        target: f32,
    ) -> Option<f64> {
        let reach = history.rounds_to_target(target)?;
        let mut total = 0.0;
        let mut prev = 0u64;
        for r in history.records.iter().take(reach) {
            let round_bytes = r.cum_bytes - prev;
            prev = r.cum_bytes;
            total += self.transfer_time(round_bytes / sampled_per_round as u64);
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RoundRecord;

    fn hist(accs: &[f32], bytes_per_round: u64) -> History {
        let mut h = History::new("t");
        for (i, &a) in accs.iter().enumerate() {
            h.push(RoundRecord {
                round: i,
                test_acc: a,
                train_loss: 0.0,
                cum_bytes: bytes_per_round * (i as u64 + 1),
            });
        }
        h
    }

    #[test]
    fn transfer_time_includes_latency() {
        let net = NetworkModel { bandwidth_bps: 1000.0, latency_s: 0.5 };
        assert!((net.transfer_time(2000) - 2.5).abs() < 1e-9);
        assert!((net.transfer_time(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn comm_time_scales_with_payload() {
        let net = NetworkModel::broadband();
        let small = hist(&[0.1, 0.2, 0.3], 1024);
        let large = hist(&[0.1, 0.2, 0.3], 100 * 1024 * 1024);
        let ts = net.history_comm_time(&small, 4);
        let tl = net.history_comm_time(&large, 4);
        assert!(tl > 10.0 * ts, "{ts} vs {tl}");
    }

    #[test]
    fn time_to_accuracy_stops_at_target_round() {
        let net = NetworkModel { bandwidth_bps: 1.0e6, latency_s: 0.0 };
        let h = hist(&[0.1, 0.5, 0.9], 1_000_000);
        let t = net.time_to_accuracy(&h, 1, 0.5).unwrap();
        assert!((t - 2.0).abs() < 1e-9, "two rounds of 1s each, got {t}");
        assert!(net.time_to_accuracy(&h, 1, 0.95).is_none());
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let h = hist(&[0.5], 10 * 1024 * 1024);
        let t_iot = NetworkModel::iot().history_comm_time(&h, 1);
        let t_4g = NetworkModel::cellular_4g().history_comm_time(&h, 1);
        let t_bb = NetworkModel::broadband().history_comm_time(&h, 1);
        assert!(t_iot > t_4g && t_4g > t_bb);
    }
}
