//! Simulated network model: turn communication bytes into wall-clock
//! time so experiments can report *time-to-accuracy*, the quantity edge
//! deployments actually optimize. The paper argues in bytes; a byte
//! budget maps to seconds through exactly this kind of link model.
//!
//! Time is computed from each round's recorded lifecycle: the download
//! phase (broadcast, clients in parallel) completes before local
//! training, and the upload phase follows it, so a round's communication
//! time is the *sum* of the two phase times — each gated by a single
//! per-client payload since clients within a phase transfer in parallel.

use crate::lifecycle::{ClientOutcome, ClientPlan, RoundPlan, WirePayload};
use crate::metrics::{History, RoundRecord};
use serde::{Deserialize, Serialize};

/// A symmetric client↔server link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Sustained throughput in bytes per second.
    pub bandwidth_bps: f64,
    /// Per-round fixed latency in seconds (connection setup, signaling).
    pub latency_s: f64,
}

impl NetworkModel {
    /// A 4G-class uplink: ~5 MB/s sustained, 80 ms round latency.
    pub fn cellular_4g() -> Self {
        NetworkModel { bandwidth_bps: 5.0 * 1024.0 * 1024.0, latency_s: 0.08 }
    }

    /// Home broadband: ~25 MB/s, 20 ms.
    pub fn broadband() -> Self {
        NetworkModel { bandwidth_bps: 25.0 * 1024.0 * 1024.0, latency_s: 0.02 }
    }

    /// Constrained IoT uplink: ~128 KB/s, 200 ms.
    pub fn iot() -> Self {
        NetworkModel { bandwidth_bps: 128.0 * 1024.0, latency_s: 0.2 }
    }

    /// A 3G-class link: ~48 KB/s sustained, 300 ms round latency.
    pub fn cellular_3g() -> Self {
        NetworkModel { bandwidth_bps: 48.0 * 1024.0, latency_s: 0.3 }
    }

    /// Transfer time for one payload (seconds). Clients within a phase
    /// transfer in parallel; the phase is gated by the *largest single
    /// client payload*, so the caller passes per-client bytes.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.transfer_time_f(bytes as f64)
    }

    /// [`NetworkModel::transfer_time`] over fractional bytes — per-client
    /// shares of a round total must not be truncated to whole bytes
    /// (integer division silently dropped up to `clients − 1` bytes per
    /// round and underestimated slow links).
    pub fn transfer_time_f(&self, bytes: f64) -> f64 {
        assert!(self.bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(bytes >= 0.0, "bytes must be non-negative");
        self.latency_s + bytes / self.bandwidth_bps
    }

    /// Communication time of one recorded round: the download phase over
    /// the broadcast set, then the upload phase over the clients that
    /// actually reported — divided by each phase's *actual* participant
    /// count, not the configured sample size (under faults the two
    /// differ, and dividing by the configured count underestimated the
    /// per-client share). A phase with no participants costs nothing.
    pub fn round_comm_time(&self, rec: &RoundRecord) -> f64 {
        let mut t = 0.0;
        if rec.down_clients > 0 {
            t += self.transfer_time_f(rec.down_bytes as f64 / rec.down_clients as f64);
        }
        if rec.up_clients > 0 {
            // Wasted retry attempts rode the same uplink phase.
            let up = (rec.up_bytes + rec.wasted_up_bytes) as f64 / rec.up_clients as f64;
            t += self.transfer_time_f(up);
        }
        t
    }

    /// Simulated communication time of a full training history, from the
    /// per-round lifecycle records.
    pub fn history_comm_time(&self, history: &History) -> f64 {
        history.records.iter().map(|r| self.round_comm_time(r)).sum()
    }

    /// Simulated seconds of communication to reach `target` accuracy, or
    /// `None` if the run never reaches it.
    pub fn time_to_accuracy(&self, history: &History, target: f32) -> Option<f64> {
        let reach = history.rounds_to_target(target)?;
        Some(history.records.iter().take(reach).map(|r| self.round_comm_time(r)).sum())
    }

    /// Wall-clock of one round under its drawn lifecycle: every client
    /// runs download → (injected straggler delay) → upload attempts
    /// sequentially, clients run in parallel, and the server waits for
    /// the slowest client it still cares about. A straggler cut at the
    /// deadline holds the round open for exactly the deadline, no longer
    /// — the deadline is what bounds a round against unbounded
    /// stragglers. Training compute is not modeled (the engine measures
    /// real compute; this prices the network).
    pub fn lifecycle_round_time(
        &self,
        plan: &RoundPlan,
        payload: WirePayload,
        deadline_s: Option<f64>,
    ) -> f64 {
        let t_down = self.transfer_time(payload.down_bytes);
        let t_up = self.transfer_time(payload.up_bytes);
        let mut round = 0.0f64;
        for c in &plan.clients {
            round = round.max(client_finish_time(c.outcome, t_down, t_up, deadline_s));
        }
        round
    }

    /// [`NetworkModel::lifecycle_round_time`] with each client's
    /// transfers sized by its *own* [`ClientPlan`] — a FedRolex window
    /// client finishes its download sooner than a full-model one.
    /// `plans` must align index-for-index with `plan.clients`. For
    /// uniform plans this runs the same f64 ops in the same order as
    /// the fleet-wide variant, so the two are bit-identical.
    pub fn lifecycle_round_time_planned(
        &self,
        plan: &RoundPlan,
        plans: &[ClientPlan],
        deadline_s: Option<f64>,
    ) -> f64 {
        debug_assert_eq!(plans.len(), plan.clients.len(), "plans must align with sampled clients");
        let mut round = 0.0f64;
        for (c, p) in plan.clients.iter().zip(plans) {
            let t_down = self.transfer_time(p.payload.down_bytes);
            let t_up = self.transfer_time(p.payload.up_bytes);
            round = round.max(client_finish_time(c.outcome, t_down, t_up, deadline_s));
        }
        round
    }
}

/// Finish time of one client under its drawn outcome, given that
/// client's per-direction transfer times.
///
/// A cut straggler holds the round open to the deadline. A plan can only
/// contain that outcome if a deadline was configured when it was drawn;
/// if the caller passes `None` anyway, fall back to the drawn delay
/// (≥ the deadline by construction) instead of panicking.
fn client_finish_time(
    outcome: ClientOutcome,
    t_down: f64,
    t_up: f64,
    deadline_s: Option<f64>,
) -> f64 {
    match outcome {
        ClientOutcome::DroppedBeforeDownload => 0.0,
        ClientOutcome::DroppedAfterDownload => t_down,
        ClientOutcome::StragglerTimedOut { delay_s } => deadline_s.unwrap_or(delay_s),
        ClientOutcome::UploadFailed { attempts } => t_down + attempts as f64 * t_up,
        ClientOutcome::Completed { attempts, delay_s } => t_down + delay_s + attempts as f64 * t_up,
    }
}

/// Per-client heterogeneous link assignment: client `i` uses
/// `models[i % models.len()]`, so a fleet can mix broadband, 4G, and 3G
/// devices the way real federations do. A single-entry profile is
/// exactly the old fleet-wide [`NetworkModel`] — same computation, same
/// f64s, bit-identical results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfiles {
    /// Link models, assigned round-robin by client index. Must be
    /// non-empty (enforced by [`NetworkProfiles::validate`], which every
    /// consuming configuration calls before use).
    pub models: Vec<NetworkModel>,
}

impl NetworkProfiles {
    /// One model for the whole fleet (the old behavior).
    pub fn uniform(model: NetworkModel) -> Self {
        NetworkProfiles { models: vec![model] }
    }

    /// Assign `models` round-robin by client index.
    pub fn cycle(models: Vec<NetworkModel>) -> Self {
        NetworkProfiles { models }
    }

    /// The canonical heterogeneous mix: a third of the fleet each on
    /// home broadband ("wifi"), 4G, and 3G.
    pub fn wifi_4g_3g() -> Self {
        NetworkProfiles::cycle(vec![
            NetworkModel::broadband(),
            NetworkModel::cellular_4g(),
            NetworkModel::cellular_3g(),
        ])
    }

    /// The link model serving `client`.
    pub fn model_for(&self, client: usize) -> &NetworkModel {
        &self.models[client % self.models.len()]
    }

    /// True when every client sees the same link (equivalent to a
    /// fleet-wide [`NetworkModel`]).
    pub fn is_uniform(&self) -> bool {
        self.models.windows(2).all(|w| w[0] == w[1])
    }

    /// Reject profiles the time model cannot price: empty fleets,
    /// non-positive or non-finite bandwidth, negative or non-finite
    /// latency.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::ConfigError;
        if self.models.is_empty() {
            return Err(ConfigError::ZeroCount { field: "network_profiles.models" });
        }
        for m in &self.models {
            if !(m.bandwidth_bps.is_finite() && m.bandwidth_bps > 0.0) {
                return Err(ConfigError::OutOfRange {
                    field: "network_profiles.bandwidth_bps",
                    value: m.bandwidth_bps,
                    bounds: "(0, inf)",
                });
            }
            if !(m.latency_s.is_finite() && m.latency_s >= 0.0) {
                return Err(ConfigError::OutOfRange {
                    field: "network_profiles.latency_s",
                    value: m.latency_s,
                    bounds: "[0, inf)",
                });
            }
        }
        Ok(())
    }

    /// Wall-clock of one round under its drawn lifecycle, with each
    /// client's transfers priced by *its own* link — the heterogeneous
    /// generalization of [`NetworkModel::lifecycle_round_time`].
    pub fn lifecycle_round_time(
        &self,
        plan: &RoundPlan,
        payload: WirePayload,
        deadline_s: Option<f64>,
    ) -> f64 {
        let mut round = 0.0f64;
        for c in &plan.clients {
            let m = self.model_for(c.client);
            let t_down = m.transfer_time(payload.down_bytes);
            let t_up = m.transfer_time(payload.up_bytes);
            round = round.max(client_finish_time(c.outcome, t_down, t_up, deadline_s));
        }
        round
    }

    /// Per-client-plan pricing over heterogeneous links: each client's
    /// own payload over its own link. `plans` must align
    /// index-for-index with `plan.clients`.
    pub fn lifecycle_round_time_planned(
        &self,
        plan: &RoundPlan,
        plans: &[ClientPlan],
        deadline_s: Option<f64>,
    ) -> f64 {
        debug_assert_eq!(plans.len(), plan.clients.len(), "plans must align with sampled clients");
        let mut round = 0.0f64;
        for (c, p) in plan.clients.iter().zip(plans) {
            let m = self.model_for(c.client);
            let t_down = m.transfer_time(p.payload.down_bytes);
            let t_up = m.transfer_time(p.payload.up_bytes);
            round = round.max(client_finish_time(c.outcome, t_down, t_up, deadline_s));
        }
        round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{ClientRound, FaultConfig};
    use crate::metrics::RoundRecord;

    fn hist(accs: &[f32], bytes_per_round: u64) -> History {
        let mut h = History::new("t");
        // Checked running total — `bytes_per_round * (i + 1)` silently
        // wrapped u64 at large round counts × payloads.
        let mut cum = 0u64;
        for (i, &a) in accs.iter().enumerate() {
            cum = cum
                .checked_add(bytes_per_round)
                .unwrap_or_else(|| panic!("cumulative bytes overflow u64 at round {i}"));
            h.push(RoundRecord {
                round: i,
                test_acc: a,
                train_loss: 0.0,
                cum_bytes: cum,
                down_bytes: bytes_per_round / 2,
                up_bytes: bytes_per_round / 2,
                down_clients: 4,
                up_clients: 4,
                ..Default::default()
            });
        }
        h
    }

    #[test]
    fn transfer_time_includes_latency() {
        let net = NetworkModel { bandwidth_bps: 1000.0, latency_s: 0.5 };
        assert!((net.transfer_time(2000) - 2.5).abs() < 1e-9);
        assert!((net.transfer_time(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fractional_shares_are_not_truncated() {
        // 7 bytes over 4 clients on a 1 B/s link: integer division would
        // bill 1 s per direction; the true per-client share is 1.75 s.
        let net = NetworkModel { bandwidth_bps: 1.0, latency_s: 0.0 };
        let rec = RoundRecord {
            down_bytes: 7,
            up_bytes: 0,
            down_clients: 4,
            ..Default::default()
        };
        assert!((net.round_comm_time(&rec) - 1.75).abs() < 1e-9);
    }

    #[test]
    fn divisor_is_actual_survivors_not_configured_sample() {
        // Same round bytes; under dropout only 2 of 4 clients uploaded,
        // so each survivor's uplink share doubles.
        let net = NetworkModel { bandwidth_bps: 100.0, latency_s: 0.0 };
        let full = RoundRecord {
            up_bytes: 400,
            up_clients: 4,
            ..Default::default()
        };
        let thinned = RoundRecord {
            up_bytes: 400,
            up_clients: 2,
            ..Default::default()
        };
        assert!((net.round_comm_time(&full) - 1.0).abs() < 1e-9);
        assert!((net.round_comm_time(&thinned) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn phases_are_sequential() {
        let net = NetworkModel { bandwidth_bps: 10.0, latency_s: 1.0 };
        let rec = RoundRecord {
            down_bytes: 100,
            up_bytes: 50,
            down_clients: 1,
            up_clients: 1,
            ..Default::default()
        };
        // Download 1 + 10 s, then upload 1 + 5 s.
        assert!((net.round_comm_time(&rec) - 17.0).abs() < 1e-9);
        // An aborted broadcast-only round costs only the download phase.
        let aborted = RoundRecord { down_bytes: 100, down_clients: 1, ..Default::default() };
        assert!((net.round_comm_time(&aborted) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn comm_time_scales_with_payload() {
        let net = NetworkModel::broadband();
        let small = hist(&[0.1, 0.2, 0.3], 1024);
        let large = hist(&[0.1, 0.2, 0.3], 100 * 1024 * 1024);
        let ts = net.history_comm_time(&small);
        let tl = net.history_comm_time(&large);
        assert!(tl > 10.0 * ts, "{ts} vs {tl}");
    }

    #[test]
    fn time_to_accuracy_stops_at_target_round() {
        let net = NetworkModel { bandwidth_bps: 1.0e6, latency_s: 0.0 };
        let mut h = History::new("t");
        for (i, &a) in [0.1f32, 0.5, 0.9].iter().enumerate() {
            h.push(RoundRecord {
                round: i,
                test_acc: a,
                down_bytes: 500_000,
                up_bytes: 500_000,
                down_clients: 1,
                up_clients: 1,
                ..Default::default()
            });
        }
        let t = net.time_to_accuracy(&h, 0.5).unwrap();
        assert!((t - 2.0).abs() < 1e-9, "two rounds of 1s each, got {t}");
        assert!(net.time_to_accuracy(&h, 0.95).is_none());
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let h = hist(&[0.5], 10 * 1024 * 1024);
        let t_iot = NetworkModel::iot().history_comm_time(&h);
        let t_4g = NetworkModel::cellular_4g().history_comm_time(&h);
        let t_bb = NetworkModel::broadband().history_comm_time(&h);
        assert!(t_iot > t_4g && t_4g > t_bb);
    }

    #[test]
    fn lifecycle_round_time_gates_on_slowest_and_deadline() {
        let net = NetworkModel { bandwidth_bps: 100.0, latency_s: 0.0 };
        let payload = WirePayload::symmetric(100); // 1 s each way
        let plan = RoundPlan {
            clients: vec![
                ClientRound { client: 0, outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 } },
                ClientRound { client: 1, outcome: ClientOutcome::DroppedBeforeDownload },
                ClientRound { client: 2, outcome: ClientOutcome::Completed { attempts: 2, delay_s: 4.0 } },
            ],
            min_quorum: 1,
        };
        // Client 2: 1 s down + 4 s delay + 2 × 1 s upload attempts = 7 s.
        let t = net.lifecycle_round_time(&plan, payload, None);
        assert!((t - 7.0).abs() < 1e-9, "got {t}");
        // A cut straggler holds the round open exactly to the deadline.
        let cut = RoundPlan {
            clients: vec![
                ClientRound { client: 0, outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 } },
                ClientRound { client: 1, outcome: ClientOutcome::StragglerTimedOut { delay_s: 99.0 } },
            ],
            min_quorum: 1,
        };
        let t = net.lifecycle_round_time(&cut, payload, Some(10.0));
        assert!((t - 10.0).abs() < 1e-9, "deadline bounds the round, got {t}");
        let _ = FaultConfig::default(); // keep the import honest
    }

    #[test]
    fn uniform_profiles_price_exactly_like_the_fleet_wide_model() {
        let net = NetworkModel::cellular_4g();
        let profiles = NetworkProfiles::uniform(net);
        assert!(profiles.is_uniform());
        let payload = WirePayload { down_bytes: 123_457, up_bytes: 7_919 };
        let plan = RoundPlan {
            clients: vec![
                ClientRound { client: 0, outcome: ClientOutcome::Completed { attempts: 2, delay_s: 1.25 } },
                ClientRound { client: 5, outcome: ClientOutcome::UploadFailed { attempts: 3 } },
                ClientRound { client: 9, outcome: ClientOutcome::DroppedAfterDownload },
            ],
            min_quorum: 1,
        };
        // Bit-identical, not approximately equal: the same f64 ops run
        // in the same order.
        assert_eq!(
            profiles.lifecycle_round_time(&plan, payload, Some(30.0)).to_bits(),
            net.lifecycle_round_time(&plan, payload, Some(30.0)).to_bits(),
        );
    }

    #[test]
    fn heterogeneous_profiles_assign_by_client_index_and_gate_on_slowest() {
        let profiles = NetworkProfiles::wifi_4g_3g();
        assert!(!profiles.is_uniform());
        assert_eq!(profiles.model_for(0), &NetworkModel::broadband());
        assert_eq!(profiles.model_for(4), &NetworkModel::cellular_4g());
        assert_eq!(profiles.model_for(5), &NetworkModel::cellular_3g());
        let payload = WirePayload::symmetric(1024 * 1024);
        let completed = |client| ClientRound {
            client,
            outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 },
        };
        // Same outcome everywhere: the 3G client dominates the round.
        let plan = RoundPlan { clients: vec![completed(0), completed(1), completed(2)], min_quorum: 1 };
        let t_mixed = profiles.lifecycle_round_time(&plan, payload, None);
        let t_3g = NetworkModel::cellular_3g().lifecycle_round_time(&plan, payload, None);
        assert_eq!(t_mixed.to_bits(), t_3g.to_bits(), "slowest link gates the round");
        // Drop the 3G client from the sample: the 4G one gates instead.
        let fast = RoundPlan { clients: vec![completed(0), completed(1)], min_quorum: 1 };
        assert!(profiles.lifecycle_round_time(&fast, payload, None) < t_mixed);
    }

    #[test]
    fn per_client_plans_price_each_client_at_its_own_payload() {
        use crate::lifecycle::ModelView;
        let net = NetworkModel { bandwidth_bps: 100.0, latency_s: 0.0 };
        let completed = |client| ClientRound {
            client,
            outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 },
        };
        let plan = RoundPlan { clients: vec![completed(0), completed(1)], min_quorum: 1 };
        // Uniform plans are bit-identical to the fleet-wide pricing.
        let payload = WirePayload { down_bytes: 123, up_bytes: 45 };
        let uniform = ClientPlan::uniform(&[0, 1], ModelView::Full, payload);
        assert_eq!(
            net.lifecycle_round_time_planned(&plan, &uniform, None).to_bits(),
            net.lifecycle_round_time(&plan, payload, None).to_bits(),
        );
        let profiles = NetworkProfiles::wifi_4g_3g();
        assert_eq!(
            profiles.lifecycle_round_time_planned(&plan, &uniform, None).to_bits(),
            profiles.lifecycle_round_time(&plan, payload, None).to_bits(),
        );
        // A window client (quarter-size download) finishes first; the
        // full-model client gates the round.
        let mixed = vec![
            ClientPlan {
                client: 0,
                view: ModelView::Window { offset: 0, cycle: 4 },
                payload: WirePayload::symmetric(100),
            },
            ClientPlan { client: 1, view: ModelView::Full, payload: WirePayload::symmetric(400) },
        ];
        let t = net.lifecycle_round_time_planned(&plan, &mixed, None);
        assert!((t - 8.0).abs() < 1e-9, "full-model client gates: 4 s down + 4 s up, got {t}");
    }

    #[test]
    fn profiles_validation_rejects_broken_links() {
        assert!(NetworkProfiles::cycle(vec![]).validate().is_err());
        let bad_bw = NetworkProfiles::uniform(NetworkModel { bandwidth_bps: 0.0, latency_s: 0.1 });
        assert!(bad_bw.validate().is_err());
        let bad_lat =
            NetworkProfiles::uniform(NetworkModel { bandwidth_bps: 1e6, latency_s: f64::NAN });
        assert!(bad_lat.validate().is_err());
        assert!(NetworkProfiles::wifi_4g_3g().validate().is_ok());
    }
}
