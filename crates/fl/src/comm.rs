//! Communication-cost accounting.
//!
//! The paper reports `total cost = rounds × round-cost-per-client ×
//! sampled clients`, where round cost per client covers the downlink
//! (server → client) plus the uplink (client → server), and algorithms
//! that ship auxiliary state (FedNova's normalization info, SCAFFOLD's
//! control variates) pay a 2× multiplier. [`CommTracker`] accumulates the
//! measured bytes of a live run; [`CostModel`] reproduces the paper's
//! closed-form arithmetic for the tables.

use crate::lifecycle::RoundComm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Running per-phase byte counters of a federated training run. Each
/// round records the honest lifecycle split: downlink over the full
/// broadcast set, uplink over accepted reports, and wasted uplink from
/// failed upload attempts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CommTracker {
    /// Per-round lifecycle byte accounting.
    pub per_round: Vec<RoundComm>,
}

impl CommTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one round's traffic when only direction totals are known
    /// (no lifecycle detail — client counts are left zero).
    pub fn record(&mut self, down: u64, up: u64) {
        self.record_round(RoundComm { down_bytes: down, up_bytes: up, ..Default::default() });
    }

    /// Record one round's full lifecycle accounting.
    pub fn record_round(&mut self, comm: RoundComm) {
        self.per_round.push(comm);
    }

    /// Rounds recorded.
    pub fn rounds(&self) -> usize {
        self.per_round.len()
    }

    /// Total downlink bytes (server → broadcast sets).
    pub fn down_total(&self) -> Result<u64, CostError> {
        checked_byte_sum(self.per_round.iter().map(|r| r.down_bytes))
    }

    /// Total accepted uplink bytes (completed uploads only).
    pub fn up_total(&self) -> Result<u64, CostError> {
        checked_byte_sum(self.per_round.iter().map(|r| r.up_bytes))
    }

    /// Total wasted uplink bytes (failed upload attempts).
    pub fn wasted_total(&self) -> Result<u64, CostError> {
        checked_byte_sum(self.per_round.iter().map(|r| r.wasted_up_bytes))
    }

    /// Total bytes that crossed the network in either direction,
    /// including wasted upload attempts — the honest traffic bill.
    /// Checked: the old unchecked `sum()` silently wrapped `u64` on
    /// long runs at foundation-model payloads (debug builds panicked).
    pub fn total(&self) -> Result<u64, CostError> {
        checked_byte_sum(
            self.per_round
                .iter()
                .flat_map(|r| [r.down_bytes, r.up_bytes, r.wasted_up_bytes]),
        )
    }

    /// Cumulative bytes after each round, rejecting overflow with a
    /// typed error instead of wrapping.
    pub fn cumulative(&self) -> Result<Vec<u64>, CostError> {
        let mut out = Vec::with_capacity(self.rounds());
        let mut acc = 0u64;
        for r in &self.per_round {
            acc = checked_round_add(acc, r)?;
            out.push(acc);
        }
        Ok(out)
    }
}

/// Fold a byte iterator with overflow detection.
fn checked_byte_sum(bytes: impl Iterator<Item = u64>) -> Result<u64, CostError> {
    let mut acc = 0u64;
    for b in bytes {
        acc = acc.checked_add(b).ok_or(CostError::ByteTotalOverflow { acc, add: b })?;
    }
    Ok(acc)
}

/// `acc + down + up + wasted`, checked at every step.
pub(crate) fn checked_round_add(acc: u64, r: &RoundComm) -> Result<u64, CostError> {
    [r.down_bytes, r.up_bytes, r.wasted_up_bytes]
        .iter()
        .try_fold(acc, |a, &b| {
            a.checked_add(b).ok_or(CostError::ByteTotalOverflow { acc: a, add: b })
        })
}

/// Closed-form communication cost model for a federated algorithm.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Bytes of the payload a client downloads each round.
    pub down_bytes_per_client: u64,
    /// Bytes of the payload a client uploads each round.
    pub up_bytes_per_client: u64,
    /// Auxiliary-state multiplier (1 for FedAvg/FedProx/FedKEMF, 2 for
    /// FedNova and SCAFFOLD which ship extra per-round state).
    pub aux_multiplier: u64,
}

impl CostModel {
    /// Symmetric model payload with a multiplier.
    pub fn symmetric(model_bytes: u64, aux_multiplier: u64) -> Self {
        CostModel {
            down_bytes_per_client: model_bytes,
            up_bytes_per_client: model_bytes,
            aux_multiplier,
        }
    }

    /// Round cost per client (the paper's "Round/Client" column).
    /// Checked: at million-client scale with auxiliary multipliers the
    /// old unchecked arithmetic silently wrapped `u64`.
    pub fn round_cost_per_client(&self) -> Result<u64, CostError> {
        self.down_bytes_per_client
            .checked_add(self.up_bytes_per_client)
            .and_then(|per_dir| per_dir.checked_mul(self.aux_multiplier))
            .ok_or(CostError::RoundCostOverflow {
                down: self.down_bytes_per_client,
                up: self.up_bytes_per_client,
                aux: self.aux_multiplier,
            })
    }

    /// Total cost for `rounds` rounds with `sampled` clients per round.
    /// Computed through `u128` and rejected with a typed error when the
    /// true value does not fit a byte count.
    pub fn total_cost(&self, rounds: usize, sampled: usize) -> Result<u64, CostError> {
        let round_cost = self.round_cost_per_client()?;
        let total = round_cost as u128 * rounds as u128 * sampled as u128;
        u64::try_from(total).map_err(|_| CostError::TotalCostOverflow {
            round_cost,
            rounds,
            sampled,
        })
    }
}

/// A closed-form cost that does not fit in a `u64` byte count. Silent
/// wrapping here produced plausible-looking but garbage table entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostError {
    /// `(down + up) × aux` overflowed.
    RoundCostOverflow {
        /// Downlink bytes per client.
        down: u64,
        /// Uplink bytes per client.
        up: u64,
        /// Auxiliary-state multiplier.
        aux: u64,
    },
    /// `round_cost × rounds × sampled` exceeds `u64::MAX` bytes.
    TotalCostOverflow {
        /// Per-client round cost.
        round_cost: u64,
        /// Round count requested.
        rounds: usize,
        /// Sampled clients per round.
        sampled: usize,
    },
    /// A running byte total overflowed while folding measured rounds
    /// (cumulative traffic of a live run, not the closed-form model).
    ByteTotalOverflow {
        /// Accumulated bytes before the failing addition.
        acc: u64,
        /// The addend that pushed the total past `u64::MAX`.
        add: u64,
    },
    /// `count × per_client_bytes` overflowed while billing a buffered
    /// cycle's uplink (fused or evicted updates).
    UplinkOverflow {
        /// Updates billed.
        count: u64,
        /// Per-client uplink payload in bytes.
        bytes: u64,
    },
    /// A buffered cycle's per-event uplink sum (accumulated exactly in
    /// u128) does not fit a u64 byte count.
    BufferedUplinkOverflow {
        /// The true uplink total in bytes.
        total: u128,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::RoundCostOverflow { down, up, aux } => write!(
                f,
                "per-client round cost ({down} + {up}) x {aux} overflows u64 bytes"
            ),
            CostError::TotalCostOverflow { round_cost, rounds, sampled } => write!(
                f,
                "total cost {round_cost} x {rounds} rounds x {sampled} clients overflows u64 bytes"
            ),
            CostError::ByteTotalOverflow { acc, add } => write!(
                f,
                "cumulative byte total {acc} + {add} overflows u64"
            ),
            CostError::UplinkOverflow { count, bytes } => write!(
                f,
                "buffered uplink {count} update(s) x {bytes} bytes overflows u64"
            ),
            CostError::BufferedUplinkOverflow { total } => write!(
                f,
                "buffered uplink total {total} bytes overflows u64"
            ),
        }
    }
}

impl std::error::Error for CostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates() {
        let mut t = CommTracker::new();
        t.record(100, 50);
        t.record(200, 70);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.total().unwrap(), 420);
        assert_eq!(t.cumulative().unwrap(), vec![150, 420]);
        assert_eq!(t.down_total().unwrap(), 300);
        assert_eq!(t.up_total().unwrap(), 120);
    }

    #[test]
    fn tracker_counts_wasted_uplink() {
        let mut t = CommTracker::new();
        t.record_round(RoundComm {
            down_bytes: 100,
            up_bytes: 60,
            wasted_up_bytes: 20,
            down_clients: 5,
            up_clients: 3,
        });
        assert_eq!(t.total().unwrap(), 180, "wasted attempts are real traffic");
        assert_eq!(t.wasted_total().unwrap(), 20);
        assert_eq!(t.cumulative().unwrap(), vec![180]);
    }

    #[test]
    fn tracker_totals_refuse_overflow_instead_of_wrapping() {
        // Two half-max rounds fit exactly; a third byte overflows. The
        // old unchecked `sum()` wrapped silently in release builds.
        let mut t = CommTracker::new();
        t.record(u64::MAX / 2, 0);
        t.record(u64::MAX / 2 + 1, 0);
        assert_eq!(t.down_total().unwrap(), u64::MAX);
        assert_eq!(t.total().unwrap(), u64::MAX);
        assert_eq!(t.cumulative().unwrap(), vec![u64::MAX / 2, u64::MAX]);
        t.record(0, 1);
        assert!(matches!(t.total(), Err(CostError::ByteTotalOverflow { .. })));
        assert!(matches!(t.cumulative(), Err(CostError::ByteTotalOverflow { .. })));
        let msg = t.total().unwrap_err().to_string();
        assert!(msg.contains("overflows u64"), "bad message: {msg}");
    }

    #[test]
    fn cost_model_matches_paper_arithmetic() {
        // ResNet-20 ≈ 0.27 M params ≈ 1.05 MB; up+down ≈ 2.1 MB/round/client.
        let model_bytes = 272_474u64 * 4;
        let m = CostModel::symmetric(model_bytes, 1);
        let per_round_mb = m.round_cost_per_client().unwrap() as f64 / (1024.0 * 1024.0);
        assert!((per_round_mb - 2.08).abs() < 0.1, "{per_round_mb}");
        // FedAvg, 30 clients ratio 0.4 → 12 sampled, 163 rounds ≈ 4 GB.
        let total_gb = m.total_cost(163, 12).unwrap() as f64 / (1024.0f64.powi(3));
        assert!((total_gb - 3.97).abs() < 0.2, "{total_gb}");
    }

    #[test]
    fn aux_multiplier_doubles_cost() {
        let a = CostModel::symmetric(1000, 1);
        let b = CostModel::symmetric(1000, 2);
        assert_eq!(b.total_cost(10, 5).unwrap(), 2 * a.total_cost(10, 5).unwrap());
    }

    #[test]
    fn cost_overflow_is_a_typed_error_at_the_exact_boundary() {
        // Round cost: (down + up) itself overflows…
        let m = CostModel { down_bytes_per_client: u64::MAX, up_bytes_per_client: 1, aux_multiplier: 1 };
        assert_eq!(
            m.round_cost_per_client().unwrap_err(),
            CostError::RoundCostOverflow { down: u64::MAX, up: 1, aux: 1 }
        );
        // …and the aux multiplier can push a fitting sum over the edge.
        let m = CostModel::symmetric(u64::MAX / 2, 3);
        assert!(matches!(m.round_cost_per_client(), Err(CostError::RoundCostOverflow { .. })));

        // Total cost, straddling the boundary: round_cost × rounds ×
        // sampled at exactly u64::MAX fits; one more client overflows.
        let m = CostModel { down_bytes_per_client: u64::MAX / 15, up_bytes_per_client: 0, aux_multiplier: 1 };
        assert_eq!(m.total_cost(3, 5).unwrap(), (u64::MAX / 15) * 15);
        let err = m.total_cost(3, 6).unwrap_err();
        assert_eq!(
            err,
            CostError::TotalCostOverflow { round_cost: u64::MAX / 15, rounds: 3, sampled: 6 }
        );
        // The message names every factor, so a log line alone explains it.
        let msg = err.to_string();
        assert!(msg.contains("3 rounds") && msg.contains("6 clients"), "bad message: {msg}");

        // The realistic trigger: a million-client federation shipping a
        // multi-GB foundation model with an aux multiplier for years of
        // rounds — exactly the regime the paper's premise targets.
        let m = CostModel::symmetric(8 * 1024 * 1024 * 1024, 2);
        assert!(m.round_cost_per_client().is_ok(), "per-round still fits");
        assert!(m.total_cost(100_000, 1_000_000).is_err(), "total honestly refuses");
    }
}
