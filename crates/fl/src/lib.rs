//! # kemf-fl
//!
//! The federated-learning engine of the FedKEMF stack plus the four
//! baselines the paper compares against:
//!
//! * [`engine`] — round loop, client sampling, the [`engine::FedAlgorithm`]
//!   trait every algorithm (including FedKEMF in `kemf-core`) plugs into,
//!   and the [`engine::Engine::run`]/[`engine::RunOptions`] entry point;
//! * [`state`] / [`checkpoint`] — the algorithm-state bundle and the
//!   crash-consistent run-checkpoint layer behind resumable runs;
//! * [`client_store`] — per-client state at population scale: memory
//!   slots for small worlds, atomic disk spill (O(cohort) resident) for
//!   million-client ones;
//! * [`context`] — immutable experiment state: Dirichlet-partitioned
//!   client shards and the test set;
//! * [`local`] — the shared local-SGD loop with gradient hooks (proximal
//!   terms, control variates);
//! * [`lifecycle`] — the fault-aware round execution model: per-client
//!   download → train → upload outcomes, fault injection, and quorum;
//! * [`scheduler`] — the discrete-event buffered-asynchronous round
//!   scheduler (FedBuff-style): simulated arrival times, a bounded
//!   fusion buffer, and staleness-weighted updates behind
//!   [`scheduler::RoundMode`];
//! * [`comm`] / [`metrics`] — communication accounting and the derived
//!   metrics of the paper's tables and figures;
//! * [`trace`] — structured round-lifecycle observability: phase-timed
//!   spans with step/batch/FLOP/byte counters behind an [`trace::EventSink`];
//! * [`transport`] — the real-socket federation path: framed localhost
//!   TCP traffic to a worker pool behind
//!   [`transport::TransportMode::Socket`], with fault injection enacted
//!   on real frames and byte counters measured at the wire;
//! * [`fedavg`], [`fedprox`], [`fednova`], [`scaffold`] — the baselines;
//! * [`fedrolex`] — rolling-window sub-model training: a server model
//!   wider than any client, each client training an index-windowed
//!   slice sized to its budget ([`lifecycle::ModelView::Window`]).
//!
//! ```no_run
//! use kemf_fl::prelude::*;
//! use kemf_data::prelude::*;
//! use kemf_nn::prelude::*;
//!
//! let task = SynthTask::new(SynthConfig::mnist_like(0));
//! let train = task.generate(240, 0);
//! let test = task.generate(80, 1);
//! let ctx = FlContext::new(FlConfig { n_clients: 4, min_per_client: 10, ..Default::default() }, &train, test);
//! let mut algo = FedAvg::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
//! let report = Engine::run(&mut algo, &ctx, RunOptions::new()).unwrap();
//! println!("final accuracy {:.1}%", report.history.final_accuracy() * 100.0);
//! ```

pub mod checkpoint;
pub mod client_store;
pub mod comm;
pub mod compress;
pub mod config;
pub mod context;
pub mod engine;
pub mod fedavg;
pub mod fednova;
pub mod fedprox;
pub mod fedrolex;
pub mod lifecycle;
pub mod local;
pub mod metrics;
pub mod network;
pub mod scaffold;
pub mod scheduler;
pub mod state;
pub mod trace;
pub mod transport;
pub mod weight_common;

pub mod prelude {
    //! Common imports for downstream crates.
    pub use crate::checkpoint::CheckpointPolicy;
    pub use crate::client_store::{ClientBlob, ClientStateStore, SpillConfig, StoreError};
    pub use crate::comm::{CommTracker, CostError, CostModel};
    pub use crate::compress::{dequantize, quantize, CompressError, QuantizedWeights};
    pub use crate::config::{ConfigError, FlConfig};
    pub use crate::context::FlContext;
    pub use crate::engine::{
        Engine, EngineError, FedAlgorithm, ResumeError, RoundOutcome, RunOptions, RunReport,
    };
    pub use crate::lifecycle::{
        ClientOutcome, ClientPlan, ClientRound, FaultConfig, ModelView, RoundComm, RoundPlan,
        WirePayload,
    };
    pub use crate::fedavg::FedAvg;
    pub use crate::fednova::FedNova;
    pub use crate::fedprox::FedProx;
    pub use crate::fedrolex::{FedRolex, FedRolexConfig};
    pub use crate::local::{local_train, LocalCfg};
    pub use crate::metrics::{fairness_summary, FairnessSummary, History, RoundRecord};
    pub use crate::network::{NetworkModel, NetworkProfiles};
    pub use crate::scaffold::Scaffold;
    pub use crate::scheduler::{AsyncConfig, PreparedUpdate, RoundMode, UpdatePayload};
    pub use crate::state::{AlgorithmState, RestoreError, TensorBlob};
    pub use crate::trace::{
        Counters, EventSink, NoopSink, Phase, PhaseSummary, RoundScope, RunTrace, Span, TraceSink,
    };
    pub use crate::transport::{
        worker_entry_if_requested, worker_main_from_env, SocketConfig, TransportError,
        TransportMode, TransportStats, WorkerMode,
    };
}
