//! Crash-consistent run checkpoints: everything the engine needs to
//! continue a federated run from round *k* such that the finished
//! [`History`] is **bit-identical** to an uninterrupted run.
//!
//! A [`RunCheckpoint`] rides inside a kemf-nn v2 bundle
//! ([`kemf_nn::checkpoint::CheckpointBundle`]): the algorithm's
//! [`AlgorithmState`] maps onto the bundle's model/array/scalar
//! sections, and the engine's own metadata — config fingerprint, next
//! round index, RNG verification probes, and the history so far — is
//! binary-encoded into the bundle's opaque `meta` section (binary, not
//! JSON, so every `f32` bit pattern survives and the resumed history
//! re-serializes byte-for-byte).
//!
//! **Resume semantics.** The engine does not serialize raw RNG
//! internals (the vendored `StdRng` keeps its state private, matching
//! the real `rand` API). Instead it *replays* the sampler and fault
//! streams — re-drawing every completed round's client sample and
//! lifecycle plan, which also reconstructs the plans for the final
//! report — and then compares one probe draw per stream against the
//! values stored at save time. Any divergence (code drift, a foreign
//! checkpoint) refuses to resume rather than silently forking the run.
//!
//! **Fingerprint.** [`run_fingerprint`] hashes the run config (minus
//! `rounds`), the effective fault model, the algorithm name, and the
//! engine seed. `rounds` is deliberately excluded: the training horizon
//! is not part of a run's identity, so a checkpointed 5-round run may
//! be resumed with `rounds = 10` to extend it — the basis of both the
//! kill-and-resume tests and the CI smoke. Everything else mismatching
//! refuses resume with [`ResumeError::FingerprintMismatch`].

use crate::config::FlConfig;
use crate::lifecycle::FaultConfig;
use crate::metrics::RoundRecord;
use crate::state::{AlgorithmState, TensorBlob};
use kemf_nn::checkpoint::{load_bundle, save_bundle, CheckpointBundle};
use std::fmt;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Format version of the engine metadata inside the bundle's `meta`
/// section.
pub const RUN_CHECKPOINT_VERSION: u32 = 1;

/// File-name prefix/suffix of round checkpoints inside a checkpoint
/// directory: `round_00004.ckpt` holds the state *after* 4 completed
/// rounds (next round index 4).
const FILE_PREFIX: &str = "round_";
const FILE_SUFFIX: &str = ".ckpt";

/// A resumable snapshot of one run after `next_round` completed rounds.
#[derive(Clone, Debug, PartialEq)]
pub struct RunCheckpoint {
    /// [`run_fingerprint`] of the run that wrote this checkpoint.
    pub fingerprint: u64,
    /// Index of the first round still to execute.
    pub next_round: usize,
    /// Algorithm display name (engine-level duplicate of the state's
    /// header, so mismatches are reported before restore runs).
    pub algorithm: String,
    /// One probe draw of the sampler RNG at save time (the stream is
    /// replayed on resume and must land here).
    pub sampler_check: u64,
    /// One probe draw of the fault RNG at save time.
    pub fault_check: u64,
    /// History records of the completed rounds, bit-exact.
    pub records: Vec<RoundRecord>,
    /// The algorithm's full state after round `next_round - 1`.
    pub state: AlgorithmState,
}

/// When and where the engine writes checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory the `round_*.ckpt` files land in (created on demand).
    pub dir: PathBuf,
    /// Checkpoint after every `every` completed rounds (and always after
    /// the final round). Clamped to at least 1.
    pub every: usize,
    /// Keep at most this many checkpoint files, pruning the oldest;
    /// `0` keeps them all.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// Checkpoint into `dir` every `every` rounds, keeping the last two
    /// files (one good checkpoint always survives a crash mid-write of
    /// the next).
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointPolicy { dir: dir.into(), every: every.max(1), keep: 2 }
    }

    /// Keep at most `keep` checkpoint files (builder style; 0 = all).
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }
}

/// 64-bit FNV-1a over the run's identity: config JSON with `rounds`
/// zeroed (the horizon may change between checkpoint and resume), the
/// effective fault model, the algorithm name, and the engine seed.
pub fn run_fingerprint(cfg: &FlConfig, faults: &FaultConfig, algorithm: &str, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let cfg_id = FlConfig { rounds: 0, ..*cfg };
    eat(serde_json::to_string(&cfg_id).expect("config serializes").as_bytes());
    eat(serde_json::to_string(faults).expect("faults serialize").as_bytes());
    eat(algorithm.as_bytes());
    eat(&seed.to_le_bytes());
    h
}

// ---- meta encoding -----------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_u64(inp: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    inp.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_u32(inp: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    inp.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_f32(inp: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    inp.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn get_str(inp: &mut impl Read) -> io::Result<String> {
    let n = get_u64(inp)? as usize;
    if n > (1 << 20) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible string length"));
    }
    let mut buf = vec![0u8; n];
    inp.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 string"))
}

fn encode_meta(ckpt: &RunCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&RUN_CHECKPOINT_VERSION.to_le_bytes());
    put_u64(&mut out, ckpt.fingerprint);
    put_u64(&mut out, ckpt.next_round as u64);
    put_str(&mut out, &ckpt.algorithm);
    put_u64(&mut out, ckpt.sampler_check);
    put_u64(&mut out, ckpt.fault_check);
    put_str(&mut out, &ckpt.state.algorithm);
    out.extend_from_slice(&ckpt.state.version.to_le_bytes());
    put_u64(&mut out, ckpt.records.len() as u64);
    for r in &ckpt.records {
        put_u64(&mut out, r.round as u64);
        out.extend_from_slice(&r.test_acc.to_le_bytes());
        out.extend_from_slice(&r.train_loss.to_le_bytes());
        put_u64(&mut out, r.cum_bytes);
        put_u64(&mut out, r.down_bytes);
        put_u64(&mut out, r.up_bytes);
        put_u64(&mut out, r.wasted_up_bytes);
        put_u64(&mut out, r.down_clients as u64);
        put_u64(&mut out, r.up_clients as u64);
        out.push(r.quorum_met as u8);
    }
    out
}

struct DecodedMeta {
    fingerprint: u64,
    next_round: usize,
    algorithm: String,
    sampler_check: u64,
    fault_check: u64,
    state_algorithm: String,
    state_version: u32,
    records: Vec<RoundRecord>,
}

fn decode_meta(meta: &[u8]) -> io::Result<DecodedMeta> {
    let mut inp = meta;
    let version = get_u32(&mut inp)?;
    if version != RUN_CHECKPOINT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "run-checkpoint version mismatch: expected {RUN_CHECKPOINT_VERSION}, found {version}"
            ),
        ));
    }
    let fingerprint = get_u64(&mut inp)?;
    let next_round = get_u64(&mut inp)? as usize;
    let algorithm = get_str(&mut inp)?;
    let sampler_check = get_u64(&mut inp)?;
    let fault_check = get_u64(&mut inp)?;
    let state_algorithm = get_str(&mut inp)?;
    let state_version = get_u32(&mut inp)?;
    let n_records = get_u64(&mut inp)? as usize;
    if n_records > (1 << 24) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible record count"));
    }
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let round = get_u64(&mut inp)? as usize;
        let test_acc = get_f32(&mut inp)?;
        let train_loss = get_f32(&mut inp)?;
        let cum_bytes = get_u64(&mut inp)?;
        let down_bytes = get_u64(&mut inp)?;
        let up_bytes = get_u64(&mut inp)?;
        let wasted_up_bytes = get_u64(&mut inp)?;
        let down_clients = get_u64(&mut inp)? as usize;
        let up_clients = get_u64(&mut inp)? as usize;
        let mut q = [0u8; 1];
        inp.read_exact(&mut q)?;
        records.push(RoundRecord {
            round,
            test_acc,
            train_loss,
            cum_bytes,
            down_bytes,
            up_bytes,
            wasted_up_bytes,
            down_clients,
            up_clients,
            quorum_met: q[0] != 0,
        });
    }
    if !inp.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "trailing metadata bytes"));
    }
    Ok(DecodedMeta {
        fingerprint,
        next_round,
        algorithm,
        sampler_check,
        fault_check,
        state_algorithm,
        state_version,
        records,
    })
}

// ---- save / load -------------------------------------------------------

fn to_bundle(ckpt: &RunCheckpoint) -> CheckpointBundle {
    CheckpointBundle {
        meta: encode_meta(ckpt),
        models: ckpt.state.models.clone(),
        arrays: ckpt
            .state
            .tensors
            .iter()
            .map(|(n, t)| (n.clone(), t.dims.clone(), t.values.clone()))
            .collect(),
        scalars: ckpt.state.scalars.clone(),
    }
}

fn from_bundle(bundle: CheckpointBundle) -> io::Result<RunCheckpoint> {
    let meta = decode_meta(&bundle.meta)?;
    let state = AlgorithmState {
        algorithm: meta.state_algorithm,
        version: meta.state_version,
        models: bundle.models,
        tensors: bundle
            .arrays
            .into_iter()
            .map(|(n, dims, values)| (n, TensorBlob { dims, values }))
            .collect(),
        scalars: bundle.scalars,
    };
    Ok(RunCheckpoint {
        fingerprint: meta.fingerprint,
        next_round: meta.next_round,
        algorithm: meta.algorithm,
        sampler_check: meta.sampler_check,
        fault_check: meta.fault_check,
        records: meta.records,
        state,
    })
}

/// File name of the checkpoint taken after `next_round` completed
/// rounds.
pub fn checkpoint_file(dir: &Path, next_round: usize) -> PathBuf {
    dir.join(format!("{FILE_PREFIX}{next_round:05}{FILE_SUFFIX}"))
}

/// Atomically write `ckpt` into `dir` (created on demand) and return the
/// file path.
pub fn save_run(ckpt: &RunCheckpoint, dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = checkpoint_file(dir, ckpt.next_round);
    save_bundle(&to_bundle(ckpt), &path)?;
    Ok(path)
}

/// Why [`load_run`] could not produce a checkpoint. The directory cases
/// are distinguished so a resume caller can tell "nothing was ever
/// checkpointed here" from "checkpoints exist but every one is
/// unreadable" — the former is typically a wrong path, the latter real
/// corruption.
#[derive(Debug)]
pub enum LoadError {
    /// Reading the path (or a single checkpoint file) failed.
    Io(io::Error),
    /// The directory exists but holds no `round_*.ckpt` files at all.
    NoCheckpoints {
        /// The directory scanned.
        dir: PathBuf,
    },
    /// Every `round_*.ckpt` candidate in the directory failed to load.
    AllCorrupt {
        /// The directory scanned.
        dir: PathBuf,
        /// Number of candidates tried (newest first).
        tried: usize,
        /// The error from the last (oldest) candidate.
        last: io::Error,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "{e}"),
            LoadError::NoCheckpoints { dir } => {
                write!(f, "no round_*.ckpt checkpoints in {}", dir.display())
            }
            LoadError::AllCorrupt { dir, tried, last } => write!(
                f,
                "all {tried} checkpoint(s) in {} failed to load; last error: {last}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Load a run checkpoint. `path` may be a checkpoint file or a
/// checkpoint directory; a directory resolves to its newest loadable
/// `round_*.ckpt` (stray `.tmp` leftovers from an interrupted save and
/// corrupt files are skipped, so a crash mid-write never blocks resume
/// from the previous good checkpoint). An empty directory and a
/// directory of only unreadable files are distinct typed errors, not
/// panics.
pub fn load_run(path: &Path) -> Result<RunCheckpoint, LoadError> {
    if path.is_dir() {
        let mut rounds = checkpoint_rounds(path).map_err(LoadError::Io)?;
        if rounds.is_empty() {
            return Err(LoadError::NoCheckpoints { dir: path.to_path_buf() });
        }
        // Newest first; fall back past corrupt files to the last good one.
        rounds.reverse();
        let tried = rounds.len();
        let mut last_err = None;
        for r in rounds {
            match load_bundle(checkpoint_file(path, r)).and_then(from_bundle) {
                Ok(ckpt) => return Ok(ckpt),
                Err(e) => last_err = Some(e),
            }
        }
        Err(LoadError::AllCorrupt {
            dir: path.to_path_buf(),
            tried,
            // `rounds` was non-empty, so the loop ran at least once and
            // recorded an error before falling through to here.
            last: last_err.unwrap_or_else(|| io::Error::other("no load attempted")),
        })
    } else {
        from_bundle(load_bundle(path).map_err(LoadError::Io)?).map_err(LoadError::Io)
    }
}

/// Completed-round indices of the `round_*.ckpt` files in `dir`,
/// ascending. Non-checkpoint files (including `.tmp` leftovers) are
/// ignored.
pub fn checkpoint_rounds(dir: &Path) -> io::Result<Vec<usize>> {
    let mut rounds = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name.strip_prefix(FILE_PREFIX).and_then(|s| s.strip_suffix(FILE_SUFFIX))
        {
            if let Ok(r) = stem.parse::<usize>() {
                rounds.push(r);
            }
        }
    }
    rounds.sort_unstable();
    Ok(rounds)
}

/// Path of the newest checkpoint in `dir`, if any (no load attempted).
pub fn latest_checkpoint(dir: &Path) -> io::Result<Option<PathBuf>> {
    if !dir.is_dir() {
        return Ok(None);
    }
    Ok(checkpoint_rounds(dir)?.last().map(|&r| checkpoint_file(dir, r)))
}

/// Delete all but the newest `keep` checkpoints in `dir` (`keep == 0`
/// keeps everything).
pub fn prune_checkpoints(dir: &Path, keep: usize) -> io::Result<()> {
    if keep == 0 {
        return Ok(());
    }
    let rounds = checkpoint_rounds(dir)?;
    for &r in rounds.iter().rev().skip(keep) {
        std::fs::remove_file(checkpoint_file(dir, r))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_nn::model::Model;
    use kemf_nn::models::{Arch, ModelSpec};

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kemf_runckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn sample_ckpt(next_round: usize) -> RunCheckpoint {
        let state = AlgorithmState::new("FedAvg", 1)
            .with_model("global", Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 8, 10, 3)).state())
            .with_tensor("c", vec![3], vec![1.0, f32::NAN, -0.0])
            .with_scalar("mu", 0.01);
        RunCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            next_round,
            algorithm: "FedAvg".into(),
            sampler_check: 17,
            fault_check: 23,
            records: vec![
                RoundRecord { round: 0, test_acc: 0.5, train_loss: f32::NAN, ..Default::default() },
                RoundRecord { round: 1, test_acc: 0.625, train_loss: 1.5, ..Default::default() },
            ],
            state,
        }
    }

    #[test]
    fn run_checkpoint_roundtrips_bit_exactly() {
        let dir = tmpdir("rt");
        let ckpt = sample_ckpt(2);
        let path = save_run(&ckpt, &dir).unwrap();
        let loaded = load_run(&path).unwrap();
        assert_eq!(loaded.fingerprint, ckpt.fingerprint);
        assert_eq!(loaded.next_round, 2);
        assert_eq!(loaded.algorithm, "FedAvg");
        assert_eq!((loaded.sampler_check, loaded.fault_check), (17, 23));
        assert_eq!(loaded.state.models, ckpt.state.models);
        assert_eq!(loaded.state.scalars, ckpt.state.scalars);
        // NaNs round-trip by bit pattern.
        assert_eq!(
            loaded.state.tensors[0].1.values[1].to_bits(),
            ckpt.state.tensors[0].1.values[1].to_bits()
        );
        assert_eq!(loaded.records[0].train_loss.to_bits(), f32::NAN.to_bits());
        assert_eq!(loaded.records[1].test_acc.to_bits(), 0.625f32.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_resume_picks_newest_and_skips_tmp_and_corrupt() {
        let dir = tmpdir("latest");
        save_run(&sample_ckpt(2), &dir).unwrap();
        save_run(&sample_ckpt(4), &dir).unwrap();
        // A crash mid-write of round 6 leaves a truncated tmp file...
        std::fs::write(dir.join("round_00006.ckpt.tmp"), b"KEMFCK").unwrap();
        // ...and even a corrupt *named* checkpoint must fall back.
        std::fs::write(checkpoint_file(&dir, 8), b"KEMFCKPT garbage").unwrap();
        assert_eq!(latest_checkpoint(&dir).unwrap(), Some(checkpoint_file(&dir, 8)));
        let loaded = load_run(&dir).unwrap();
        assert_eq!(loaded.next_round, 4, "corrupt newest falls back to last good");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmpdir("prune");
        for r in [1, 2, 3, 4] {
            save_run(&sample_ckpt(r), &dir).unwrap();
        }
        prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(checkpoint_rounds(&dir).unwrap(), vec![3, 4]);
        prune_checkpoints(&dir, 0).unwrap();
        assert_eq!(checkpoint_rounds(&dir).unwrap(), vec![3, 4], "keep=0 keeps all");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_ignores_rounds_but_sees_everything_else() {
        let cfg = FlConfig::default();
        let faults = FaultConfig::reliable();
        let base = run_fingerprint(&cfg, &faults, "FedAvg", 7);
        let longer = FlConfig { rounds: 100, ..cfg };
        assert_eq!(run_fingerprint(&longer, &faults, "FedAvg", 7), base, "horizon is not identity");
        let other_seed = run_fingerprint(&cfg, &faults, "FedAvg", 8);
        assert_ne!(other_seed, base);
        let other_algo = run_fingerprint(&cfg, &faults, "FedProx", 7);
        assert_ne!(other_algo, base);
        let other_cfg = FlConfig { n_clients: 11, ..cfg };
        assert_ne!(run_fingerprint(&other_cfg, &faults, "FedAvg", 7), base);
        let other_faults = FaultConfig { drop_after_download: 0.1, ..faults };
        assert_ne!(run_fingerprint(&cfg, &other_faults, "FedAvg", 7), base);
    }

    #[test]
    fn empty_dir_is_clean_error() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = load_run(&dir).unwrap_err();
        assert!(matches!(err, LoadError::NoCheckpoints { .. }), "got: {err}");
        assert!(err.to_string().contains("no round_*.ckpt"), "bad message: {err}");
        assert!(latest_checkpoint(&dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_only_dir_is_a_typed_error_not_a_panic() {
        let dir = tmpdir("corrupt_only");
        std::fs::create_dir_all(&dir).unwrap();
        // Two named checkpoints, both garbage: the fallback scan used to
        // end in `last_err.expect(..)`; now it reports what it tried.
        std::fs::write(checkpoint_file(&dir, 2), b"KEMFCKPT nope").unwrap();
        std::fs::write(checkpoint_file(&dir, 4), b"still nope").unwrap();
        let err = load_run(&dir).unwrap_err();
        match err {
            LoadError::AllCorrupt { dir: ref d, tried, .. } => {
                assert_eq!(tried, 2);
                assert_eq!(d, &dir);
            }
            other => panic!("expected AllCorrupt, got: {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
