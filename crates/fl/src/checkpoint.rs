//! Crash-consistent run checkpoints: everything the engine needs to
//! continue a federated run from round *k* such that the finished
//! [`History`] is **bit-identical** to an uninterrupted run.
//!
//! A [`RunCheckpoint`] rides inside a kemf-nn v2 bundle
//! ([`kemf_nn::checkpoint::CheckpointBundle`]): the algorithm's
//! [`AlgorithmState`] maps onto the bundle's model/array/scalar
//! sections, and the engine's own metadata — config fingerprint, next
//! round index, RNG verification probes, and the history so far — is
//! binary-encoded into the bundle's opaque `meta` section (binary, not
//! JSON, so every `f32` bit pattern survives and the resumed history
//! re-serializes byte-for-byte).
//!
//! **Resume semantics.** The engine does not serialize raw RNG
//! internals (the vendored `StdRng` keeps its state private, matching
//! the real `rand` API). Instead it *replays* the sampler and fault
//! streams — re-drawing every completed round's client sample and
//! lifecycle plan, which also reconstructs the plans for the final
//! report — and then compares one probe draw per stream against the
//! values stored at save time. Any divergence (code drift, a foreign
//! checkpoint) refuses to resume rather than silently forking the run.
//!
//! **Fingerprint.** [`run_fingerprint`] hashes the run config (minus
//! `rounds`), the effective fault model, the algorithm name, and the
//! engine seed. `rounds` is deliberately excluded: the training horizon
//! is not part of a run's identity, so a checkpointed 5-round run may
//! be resumed with `rounds = 10` to extend it — the basis of both the
//! kill-and-resume tests and the CI smoke. Everything else mismatching
//! refuses resume with [`ResumeError::FingerprintMismatch`].

use crate::client_store::ClientBlob;
use crate::config::FlConfig;
use crate::lifecycle::FaultConfig;
use crate::metrics::RoundRecord;
use crate::scheduler::{PendingEvent, PreparedUpdate, SchedulerState, UpdatePayload};
use crate::state::{AlgorithmState, TensorBlob};
use kemf_nn::checkpoint::{load_bundle, save_bundle, CheckpointBundle};
use kemf_nn::optim::LrSchedule;
use kemf_nn::serialize::{ModelState, Weights};
use std::fmt;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Format version of the engine metadata inside the bundle's `meta`
/// section. Synchronous runs still write exactly this version (and
/// byte-identical files to every earlier build); buffered-asynchronous
/// runs write [`ASYNC_CHECKPOINT_VERSION`], which appends the
/// scheduler's virtual clock and in-flight event queue after the v1
/// fields. Both versions load.
pub const RUN_CHECKPOINT_VERSION: u32 = 1;

/// Meta version written when the checkpoint carries async scheduler
/// state. v3 adds the frozen per-event uplink byte count (and the
/// windowed sub-model payload variant) to each in-flight event; the
/// short-lived v2 format, which lacked per-event billing, is refused on
/// load rather than silently resumed with zeroed uplink bytes.
pub const ASYNC_CHECKPOINT_VERSION: u32 = 3;

/// File-name prefix/suffix of round checkpoints inside a checkpoint
/// directory: `round_00004.ckpt` holds the state *after* 4 completed
/// rounds (next round index 4).
const FILE_PREFIX: &str = "round_";
const FILE_SUFFIX: &str = ".ckpt";

/// A resumable snapshot of one run after `next_round` completed rounds.
#[derive(Clone, Debug, PartialEq)]
pub struct RunCheckpoint {
    /// [`run_fingerprint`] of the run that wrote this checkpoint.
    pub fingerprint: u64,
    /// Index of the first round still to execute.
    pub next_round: usize,
    /// Algorithm display name (engine-level duplicate of the state's
    /// header, so mismatches are reported before restore runs).
    pub algorithm: String,
    /// One probe draw of the sampler RNG at save time (the stream is
    /// replayed on resume and must land here).
    pub sampler_check: u64,
    /// One probe draw of the fault RNG at save time.
    pub fault_check: u64,
    /// History records of the completed rounds, bit-exact.
    pub records: Vec<RoundRecord>,
    /// The algorithm's full state after round `next_round - 1`.
    pub state: AlgorithmState,
    /// Async scheduler snapshot (virtual clock + in-flight updates);
    /// `None` for synchronous runs. The fusion buffer is transient
    /// within a cycle, so the queue is the only event state to persist.
    pub scheduler: Option<SchedulerState>,
}

/// When and where the engine writes checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory the `round_*.ckpt` files land in (created on demand).
    pub dir: PathBuf,
    /// Checkpoint after every `every` completed rounds (and always after
    /// the final round). Clamped to at least 1.
    pub every: usize,
    /// Keep at most this many checkpoint files, pruning the oldest;
    /// `0` keeps them all.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// Checkpoint into `dir` every `every` rounds, keeping the last two
    /// files (one good checkpoint always survives a crash mid-write of
    /// the next).
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointPolicy { dir: dir.into(), every: every.max(1), keep: 2 }
    }

    /// Keep at most `keep` checkpoint files (builder style; 0 = all).
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }
}

/// Why a run identity could not be fingerprinted.
///
/// The old code path `expect`ed JSON serialization to succeed — but the
/// real hazard was never a serializer panic: the vendored `serde_json`
/// renders non-finite floats as `null`, so a config holding a NaN
/// (e.g. a corrupted learning rate) would silently fingerprint
/// *identically* to a different broken config and resume across them.
/// Non-finite identity fields are now refused up front with a typed
/// error.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// An identity-defining float is NaN or infinite.
    NonFinite {
        /// Which structure held it (`"config"` / `"faults"`).
        what: &'static str,
        /// The offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// The identity structures failed to serialize.
    Serialize {
        /// Which structure failed.
        what: &'static str,
        /// The serializer's message.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NonFinite { what, field, value } => {
                write!(f, "cannot fingerprint the run: {what}.{field} is non-finite ({value})")
            }
            CheckpointError::Serialize { what, detail } => {
                write!(f, "cannot fingerprint the run: {what} failed to serialize: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// 64-bit FNV-1a over the run's identity: config JSON with `rounds`
/// zeroed (the horizon may change between checkpoint and resume), the
/// effective fault model, the algorithm name, and the engine seed.
///
/// Refuses configs whose identity-defining floats are non-finite — the
/// JSON rendering would collapse them all to `null`, making distinct
/// broken runs resume-compatible with each other.
pub fn run_fingerprint(
    cfg: &FlConfig,
    faults: &FaultConfig,
    algorithm: &str,
    seed: u64,
) -> Result<u64, CheckpointError> {
    let finite = |what: &'static str, field: &'static str, value: f64| {
        if value.is_finite() {
            Ok(())
        } else {
            Err(CheckpointError::NonFinite { what, field, value })
        }
    };
    finite("config", "sample_ratio", cfg.sample_ratio as f64)?;
    finite("config", "lr", cfg.lr as f64)?;
    finite("config", "momentum", cfg.momentum as f64)?;
    finite("config", "weight_decay", cfg.weight_decay as f64)?;
    finite("config", "alpha", cfg.alpha)?;
    finite("config", "dropout_prob", cfg.dropout_prob as f64)?;
    match cfg.lr_schedule {
        LrSchedule::Constant => {}
        LrSchedule::Step { gamma, .. } => finite("config", "lr_schedule.gamma", gamma as f64)?,
        LrSchedule::Cosine { min_lr, .. } => {
            finite("config", "lr_schedule.min_lr", min_lr as f64)?
        }
    }
    finite("faults", "drop_before_download", faults.drop_before_download as f64)?;
    finite("faults", "drop_after_download", faults.drop_after_download as f64)?;
    finite("faults", "straggler_prob", faults.straggler_prob as f64)?;
    finite("faults", "straggler_delay_s", faults.straggler_delay_s)?;
    finite("faults", "upload_failure_prob", faults.upload_failure_prob as f64)?;
    if let Some(d) = faults.round_deadline_s {
        finite("faults", "round_deadline_s", d)?;
    }

    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let cfg_id = FlConfig { rounds: 0, ..*cfg };
    let cfg_json = serde_json::to_string(&cfg_id)
        .map_err(|e| CheckpointError::Serialize { what: "config", detail: e.to_string() })?;
    let faults_json = serde_json::to_string(faults)
        .map_err(|e| CheckpointError::Serialize { what: "faults", detail: e.to_string() })?;
    eat(cfg_json.as_bytes());
    eat(faults_json.as_bytes());
    eat(algorithm.as_bytes());
    eat(&seed.to_le_bytes());
    Ok(h)
}

// ---- meta encoding -----------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_u64(inp: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    inp.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_u32(inp: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    inp.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_f32(inp: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    inp.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn get_str(inp: &mut impl Read) -> io::Result<String> {
    let n = get_u64(inp)? as usize;
    if n > (1 << 20) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible string length"));
    }
    let mut buf = vec![0u8; n];
    inp.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 string"))
}

// ---- scheduler-state encoding (meta v3) --------------------------------
//
// In-flight updates carry raw f32 values in the opaque meta section:
// little-endian bit patterns, so NaNs, -0.0, and every rounding artifact
// survive the round trip — the async kill-and-resume test compares the
// finished histories byte-for-byte.

fn put_f32_vec(out: &mut Vec<u8>, v: &[f32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn get_f32_vec(inp: &mut impl Read) -> io::Result<Vec<f32>> {
    let n = get_u64(inp)? as usize;
    if n > (1 << 28) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible f32 vector length"));
    }
    let mut buf = vec![0u8; n * 4];
    inp.read_exact(&mut buf)?;
    Ok(buf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

fn put_usize_vec(out: &mut Vec<u8>, v: &[usize]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u64(out, x as u64);
    }
}

fn get_usize_vec(inp: &mut impl Read) -> io::Result<Vec<usize>> {
    let n = get_u64(inp)? as usize;
    if n > (1 << 24) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible usize vector length"));
    }
    (0..n).map(|_| get_u64(inp).map(|x| x as usize)).collect()
}

fn put_weights(out: &mut Vec<u8>, w: &Weights) {
    put_usize_vec(out, &w.lens);
    put_f32_vec(out, &w.values);
}

fn get_weights(inp: &mut impl Read) -> io::Result<Weights> {
    let lens = get_usize_vec(inp)?;
    let values = get_f32_vec(inp)?;
    Ok(Weights { lens, values })
}

fn put_model_state(out: &mut Vec<u8>, s: &ModelState) {
    put_weights(out, &s.params);
    put_weights(out, &s.buffers);
}

fn get_model_state(inp: &mut impl Read) -> io::Result<ModelState> {
    let params = get_weights(inp)?;
    let buffers = get_weights(inp)?;
    Ok(ModelState { params, buffers })
}

fn put_tensor_blob(out: &mut Vec<u8>, t: &TensorBlob) {
    put_usize_vec(out, &t.dims);
    put_f32_vec(out, &t.values);
}

fn get_tensor_blob(inp: &mut impl Read) -> io::Result<TensorBlob> {
    let dims = get_usize_vec(inp)?;
    let values = get_f32_vec(inp)?;
    Ok(TensorBlob { dims, values })
}

fn put_client_blob(out: &mut Vec<u8>, blob: &ClientBlob) {
    put_u64(out, blob.models.len() as u64);
    for (name, state) in &blob.models {
        put_str(out, name);
        put_model_state(out, state);
    }
    put_u64(out, blob.tensors.len() as u64);
    for (name, tensor) in &blob.tensors {
        put_str(out, name);
        put_tensor_blob(out, tensor);
    }
}

fn get_client_blob(inp: &mut impl Read) -> io::Result<ClientBlob> {
    let n_models = get_u64(inp)? as usize;
    if n_models > (1 << 16) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible blob model count"));
    }
    let mut blob = ClientBlob::new();
    for _ in 0..n_models {
        let name = get_str(inp)?;
        blob.models.push((name, get_model_state(inp)?));
    }
    let n_tensors = get_u64(inp)? as usize;
    if n_tensors > (1 << 16) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible blob tensor count"));
    }
    for _ in 0..n_tensors {
        let name = get_str(inp)?;
        blob.tensors.push((name, get_tensor_blob(inp)?));
    }
    Ok(blob)
}

const PAYLOAD_EMPTY: u8 = 0;
const PAYLOAD_STATE: u8 = 1;
const PAYLOAD_STATE_AUX: u8 = 2;
const PAYLOAD_LOGITS: u8 = 3;
const PAYLOAD_WINDOW: u8 = 4;

fn put_event(out: &mut Vec<u8>, ev: &PendingEvent) {
    put_u64(out, ev.time_bits);
    put_u64(out, ev.wave as u64);
    put_u64(out, ev.idx as u64);
    put_u64(out, ev.up_bytes);
    put_u64(out, ev.update.client as u64);
    put_u64(out, ev.update.n_samples as u64);
    put_u64(out, ev.update.steps as u64);
    out.extend_from_slice(&ev.update.loss.to_le_bytes());
    match &ev.update.payload {
        UpdatePayload::Empty => out.push(PAYLOAD_EMPTY),
        UpdatePayload::State(state) => {
            out.push(PAYLOAD_STATE);
            put_model_state(out, state);
        }
        UpdatePayload::StateAux { state, aux } => {
            out.push(PAYLOAD_STATE_AUX);
            put_model_state(out, state);
            put_f32_vec(out, aux);
        }
        UpdatePayload::Logits(t) => {
            out.push(PAYLOAD_LOGITS);
            put_tensor_blob(out, t);
        }
        UpdatePayload::Window { offset, state } => {
            out.push(PAYLOAD_WINDOW);
            put_u64(out, *offset as u64);
            put_model_state(out, state);
        }
    }
    match &ev.update.commit {
        None => out.push(0),
        Some(blob) => {
            out.push(1);
            put_client_blob(out, blob);
        }
    }
}

fn get_event(inp: &mut impl Read) -> io::Result<PendingEvent> {
    let time_bits = get_u64(inp)?;
    let wave = get_u64(inp)? as usize;
    let idx = get_u64(inp)? as usize;
    let up_bytes = get_u64(inp)?;
    let client = get_u64(inp)? as usize;
    let n_samples = get_u64(inp)? as usize;
    let steps = get_u64(inp)? as usize;
    let loss = get_f32(inp)?;
    let mut tag = [0u8; 1];
    inp.read_exact(&mut tag)?;
    let payload = match tag[0] {
        PAYLOAD_EMPTY => UpdatePayload::Empty,
        PAYLOAD_STATE => UpdatePayload::State(get_model_state(inp)?),
        PAYLOAD_STATE_AUX => {
            let state = get_model_state(inp)?;
            let aux = get_f32_vec(inp)?;
            UpdatePayload::StateAux { state, aux }
        }
        PAYLOAD_LOGITS => UpdatePayload::Logits(get_tensor_blob(inp)?),
        PAYLOAD_WINDOW => {
            let offset = get_u64(inp)? as usize;
            let state = get_model_state(inp)?;
            UpdatePayload::Window { offset, state }
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown update payload tag {other}"),
            ));
        }
    };
    let mut flag = [0u8; 1];
    inp.read_exact(&mut flag)?;
    let commit = match flag[0] {
        0 => None,
        1 => Some(get_client_blob(inp)?),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown commit flag {other}"),
            ));
        }
    };
    Ok(PendingEvent {
        time_bits,
        wave,
        idx,
        up_bytes,
        update: PreparedUpdate { client, n_samples, steps, loss, payload, commit },
    })
}

fn encode_meta(ckpt: &RunCheckpoint) -> Vec<u8> {
    let version = if ckpt.scheduler.is_some() {
        ASYNC_CHECKPOINT_VERSION
    } else {
        RUN_CHECKPOINT_VERSION
    };
    let mut out = Vec::new();
    out.extend_from_slice(&version.to_le_bytes());
    put_u64(&mut out, ckpt.fingerprint);
    put_u64(&mut out, ckpt.next_round as u64);
    put_str(&mut out, &ckpt.algorithm);
    put_u64(&mut out, ckpt.sampler_check);
    put_u64(&mut out, ckpt.fault_check);
    put_str(&mut out, &ckpt.state.algorithm);
    out.extend_from_slice(&ckpt.state.version.to_le_bytes());
    put_u64(&mut out, ckpt.records.len() as u64);
    for r in &ckpt.records {
        put_u64(&mut out, r.round as u64);
        out.extend_from_slice(&r.test_acc.to_le_bytes());
        out.extend_from_slice(&r.train_loss.to_le_bytes());
        put_u64(&mut out, r.cum_bytes);
        put_u64(&mut out, r.down_bytes);
        put_u64(&mut out, r.up_bytes);
        put_u64(&mut out, r.wasted_up_bytes);
        put_u64(&mut out, r.down_clients as u64);
        put_u64(&mut out, r.up_clients as u64);
        out.push(r.quorum_met as u8);
    }
    if let Some(sched) = &ckpt.scheduler {
        put_u64(&mut out, sched.now_bits);
        put_u64(&mut out, sched.events.len() as u64);
        for ev in &sched.events {
            put_event(&mut out, ev);
        }
    }
    out
}

struct DecodedMeta {
    fingerprint: u64,
    next_round: usize,
    algorithm: String,
    sampler_check: u64,
    fault_check: u64,
    state_algorithm: String,
    state_version: u32,
    records: Vec<RoundRecord>,
    scheduler: Option<SchedulerState>,
}

fn decode_meta(meta: &[u8]) -> io::Result<DecodedMeta> {
    let mut inp = meta;
    let version = get_u32(&mut inp)?;
    if version == 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "run-checkpoint version 2 predates per-event uplink accounting; \
             re-run from scratch (or from a synchronous v1 checkpoint)",
        ));
    }
    if version != RUN_CHECKPOINT_VERSION && version != ASYNC_CHECKPOINT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "run-checkpoint version mismatch: expected {RUN_CHECKPOINT_VERSION} or \
                 {ASYNC_CHECKPOINT_VERSION}, found {version}"
            ),
        ));
    }
    let fingerprint = get_u64(&mut inp)?;
    let next_round = get_u64(&mut inp)? as usize;
    let algorithm = get_str(&mut inp)?;
    let sampler_check = get_u64(&mut inp)?;
    let fault_check = get_u64(&mut inp)?;
    let state_algorithm = get_str(&mut inp)?;
    let state_version = get_u32(&mut inp)?;
    let n_records = get_u64(&mut inp)? as usize;
    if n_records > (1 << 24) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible record count"));
    }
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let round = get_u64(&mut inp)? as usize;
        let test_acc = get_f32(&mut inp)?;
        let train_loss = get_f32(&mut inp)?;
        let cum_bytes = get_u64(&mut inp)?;
        let down_bytes = get_u64(&mut inp)?;
        let up_bytes = get_u64(&mut inp)?;
        let wasted_up_bytes = get_u64(&mut inp)?;
        let down_clients = get_u64(&mut inp)? as usize;
        let up_clients = get_u64(&mut inp)? as usize;
        let mut q = [0u8; 1];
        inp.read_exact(&mut q)?;
        records.push(RoundRecord {
            round,
            test_acc,
            train_loss,
            cum_bytes,
            down_bytes,
            up_bytes,
            wasted_up_bytes,
            down_clients,
            up_clients,
            quorum_met: q[0] != 0,
        });
    }
    let scheduler = if version >= ASYNC_CHECKPOINT_VERSION {
        let now_bits = get_u64(&mut inp)?;
        let n_events = get_u64(&mut inp)? as usize;
        if n_events > (1 << 24) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible event count"));
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(get_event(&mut inp)?);
        }
        Some(SchedulerState { now_bits, events })
    } else {
        None
    };
    if !inp.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "trailing metadata bytes"));
    }
    Ok(DecodedMeta {
        fingerprint,
        next_round,
        algorithm,
        sampler_check,
        fault_check,
        state_algorithm,
        state_version,
        records,
        scheduler,
    })
}

// ---- save / load -------------------------------------------------------

fn to_bundle(ckpt: &RunCheckpoint) -> CheckpointBundle {
    CheckpointBundle {
        meta: encode_meta(ckpt),
        models: ckpt.state.models.clone(),
        arrays: ckpt
            .state
            .tensors
            .iter()
            .map(|(n, t)| (n.clone(), t.dims.clone(), t.values.clone()))
            .collect(),
        scalars: ckpt.state.scalars.clone(),
    }
}

fn from_bundle(bundle: CheckpointBundle) -> io::Result<RunCheckpoint> {
    let meta = decode_meta(&bundle.meta)?;
    let state = AlgorithmState {
        algorithm: meta.state_algorithm,
        version: meta.state_version,
        models: bundle.models,
        tensors: bundle
            .arrays
            .into_iter()
            .map(|(n, dims, values)| (n, TensorBlob { dims, values }))
            .collect(),
        scalars: bundle.scalars,
    };
    Ok(RunCheckpoint {
        fingerprint: meta.fingerprint,
        next_round: meta.next_round,
        algorithm: meta.algorithm,
        sampler_check: meta.sampler_check,
        fault_check: meta.fault_check,
        records: meta.records,
        state,
        scheduler: meta.scheduler,
    })
}

/// File name of the checkpoint taken after `next_round` completed
/// rounds.
pub fn checkpoint_file(dir: &Path, next_round: usize) -> PathBuf {
    dir.join(format!("{FILE_PREFIX}{next_round:05}{FILE_SUFFIX}"))
}

/// Atomically write `ckpt` into `dir` (created on demand) and return the
/// file path.
pub fn save_run(ckpt: &RunCheckpoint, dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = checkpoint_file(dir, ckpt.next_round);
    save_bundle(&to_bundle(ckpt), &path)?;
    Ok(path)
}

/// Why [`load_run`] could not produce a checkpoint. The directory cases
/// are distinguished so a resume caller can tell "nothing was ever
/// checkpointed here" from "checkpoints exist but every one is
/// unreadable" — the former is typically a wrong path, the latter real
/// corruption.
#[derive(Debug)]
pub enum LoadError {
    /// Reading the path (or a single checkpoint file) failed.
    Io(io::Error),
    /// The directory exists but holds no `round_*.ckpt` files at all.
    NoCheckpoints {
        /// The directory scanned.
        dir: PathBuf,
    },
    /// Every `round_*.ckpt` candidate in the directory failed to load.
    AllCorrupt {
        /// The directory scanned.
        dir: PathBuf,
        /// Number of candidates tried (newest first).
        tried: usize,
        /// The error from the last (oldest) candidate.
        last: io::Error,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "{e}"),
            LoadError::NoCheckpoints { dir } => {
                write!(f, "no round_*.ckpt checkpoints in {}", dir.display())
            }
            LoadError::AllCorrupt { dir, tried, last } => write!(
                f,
                "all {tried} checkpoint(s) in {} failed to load; last error: {last}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Load a run checkpoint. `path` may be a checkpoint file or a
/// checkpoint directory; a directory resolves to its newest loadable
/// `round_*.ckpt` (stray `.tmp` leftovers from an interrupted save and
/// corrupt files are skipped, so a crash mid-write never blocks resume
/// from the previous good checkpoint). An empty directory and a
/// directory of only unreadable files are distinct typed errors, not
/// panics.
pub fn load_run(path: &Path) -> Result<RunCheckpoint, LoadError> {
    if path.is_dir() {
        let mut rounds = checkpoint_rounds(path).map_err(LoadError::Io)?;
        if rounds.is_empty() {
            return Err(LoadError::NoCheckpoints { dir: path.to_path_buf() });
        }
        // Newest first; fall back past corrupt files to the last good one.
        rounds.reverse();
        let tried = rounds.len();
        let mut last_err = None;
        for r in rounds {
            match load_bundle(checkpoint_file(path, r)).and_then(from_bundle) {
                Ok(ckpt) => return Ok(ckpt),
                Err(e) => last_err = Some(e),
            }
        }
        Err(LoadError::AllCorrupt {
            dir: path.to_path_buf(),
            tried,
            // `rounds` was non-empty, so the loop ran at least once and
            // recorded an error before falling through to here.
            last: last_err.unwrap_or_else(|| io::Error::other("no load attempted")),
        })
    } else {
        from_bundle(load_bundle(path).map_err(LoadError::Io)?).map_err(LoadError::Io)
    }
}

/// Completed-round indices of the `round_*.ckpt` files in `dir`,
/// ascending. Non-checkpoint files (including `.tmp` leftovers) are
/// ignored.
pub fn checkpoint_rounds(dir: &Path) -> io::Result<Vec<usize>> {
    let mut rounds = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name.strip_prefix(FILE_PREFIX).and_then(|s| s.strip_suffix(FILE_SUFFIX))
        {
            if let Ok(r) = stem.parse::<usize>() {
                rounds.push(r);
            }
        }
    }
    rounds.sort_unstable();
    Ok(rounds)
}

/// Path of the newest checkpoint in `dir`, if any (no load attempted).
pub fn latest_checkpoint(dir: &Path) -> io::Result<Option<PathBuf>> {
    if !dir.is_dir() {
        return Ok(None);
    }
    Ok(checkpoint_rounds(dir)?.last().map(|&r| checkpoint_file(dir, r)))
}

/// Delete all but the newest `keep` checkpoints in `dir` (`keep == 0`
/// keeps everything).
pub fn prune_checkpoints(dir: &Path, keep: usize) -> io::Result<()> {
    if keep == 0 {
        return Ok(());
    }
    let rounds = checkpoint_rounds(dir)?;
    for &r in rounds.iter().rev().skip(keep) {
        std::fs::remove_file(checkpoint_file(dir, r))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_nn::model::Model;
    use kemf_nn::models::{Arch, ModelSpec};

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kemf_runckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn sample_ckpt(next_round: usize) -> RunCheckpoint {
        let state = AlgorithmState::new("FedAvg", 1)
            .with_model("global", Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 8, 10, 3)).state())
            .with_tensor("c", vec![3], vec![1.0, f32::NAN, -0.0])
            .with_scalar("mu", 0.01);
        RunCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            next_round,
            algorithm: "FedAvg".into(),
            sampler_check: 17,
            fault_check: 23,
            records: vec![
                RoundRecord { round: 0, test_acc: 0.5, train_loss: f32::NAN, ..Default::default() },
                RoundRecord { round: 1, test_acc: 0.625, train_loss: 1.5, ..Default::default() },
            ],
            state,
            scheduler: None,
        }
    }

    #[test]
    fn run_checkpoint_roundtrips_bit_exactly() {
        let dir = tmpdir("rt");
        let ckpt = sample_ckpt(2);
        let path = save_run(&ckpt, &dir).unwrap();
        let loaded = load_run(&path).unwrap();
        assert_eq!(loaded.fingerprint, ckpt.fingerprint);
        assert_eq!(loaded.next_round, 2);
        assert_eq!(loaded.algorithm, "FedAvg");
        assert_eq!((loaded.sampler_check, loaded.fault_check), (17, 23));
        assert_eq!(loaded.state.models, ckpt.state.models);
        assert_eq!(loaded.state.scalars, ckpt.state.scalars);
        // NaNs round-trip by bit pattern.
        assert_eq!(
            loaded.state.tensors[0].1.values[1].to_bits(),
            ckpt.state.tensors[0].1.values[1].to_bits()
        );
        assert_eq!(loaded.records[0].train_loss.to_bits(), f32::NAN.to_bits());
        assert_eq!(loaded.records[1].test_acc.to_bits(), 0.625f32.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_checkpoint_with_in_flight_events_roundtrips_bit_exactly() {
        use crate::client_store::ClientBlob;
        use crate::scheduler::{PendingEvent, PreparedUpdate, SchedulerState, UpdatePayload};
        let dir = tmpdir("async_rt");
        let model = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 8, 10, 3)).state();
        // One event per payload variant, with awkward bit patterns.
        let events = vec![
            PendingEvent {
                time_bits: 3.5f64.to_bits(),
                wave: 0,
                idx: 1,
                up_bytes: 4096,
                update: PreparedUpdate {
                    client: 7,
                    n_samples: 12,
                    steps: 30,
                    loss: f32::NAN,
                    payload: UpdatePayload::Empty,
                    commit: None,
                },
            },
            PendingEvent {
                time_bits: 4.25f64.to_bits(),
                wave: 1,
                idx: 0,
                up_bytes: u64::MAX,
                update: PreparedUpdate {
                    client: 2,
                    n_samples: 9,
                    steps: 18,
                    loss: 0.75,
                    payload: UpdatePayload::StateAux {
                        state: model.clone(),
                        aux: vec![1.0, -0.0, f32::NAN],
                    },
                    commit: Some(
                        ClientBlob::new()
                            .with_model("model", model.clone())
                            .with_tensor("c", vec![2], vec![0.5, -1.5]),
                    ),
                },
            },
            PendingEvent {
                time_bits: 9.0f64.to_bits(),
                wave: 1,
                idx: 2,
                up_bytes: 0,
                update: PreparedUpdate {
                    client: 4,
                    n_samples: 3,
                    steps: 6,
                    loss: 2.0,
                    payload: UpdatePayload::Logits(TensorBlob {
                        dims: vec![2, 3],
                        values: vec![0.1, 0.2, 0.3, -0.4, 0.5, -0.0],
                    }),
                    commit: None,
                },
            },
            PendingEvent {
                time_bits: 10.75f64.to_bits(),
                wave: 2,
                idx: 0,
                up_bytes: 1313,
                update: PreparedUpdate {
                    client: 5,
                    n_samples: 4,
                    steps: 8,
                    loss: 0.25,
                    payload: UpdatePayload::Window { offset: 3, state: model.clone() },
                    commit: None,
                },
            },
        ];
        let mut ckpt = sample_ckpt(2);
        ckpt.scheduler = Some(SchedulerState { now_bits: 1.125f64.to_bits(), events });
        let path = save_run(&ckpt, &dir).unwrap();
        let loaded = load_run(&path).unwrap();
        let sched = loaded.scheduler.expect("async checkpoint carries the scheduler");
        let want = ckpt.scheduler.as_ref().unwrap();
        assert_eq!(sched.now_bits, want.now_bits);
        assert_eq!(sched.events.len(), want.events.len());
        for (got, want) in sched.events.iter().zip(&want.events) {
            assert_eq!((got.time_bits, got.wave, got.idx), (want.time_bits, want.wave, want.idx));
            assert_eq!(got.up_bytes, want.up_bytes, "frozen uplink bytes survive the round trip");
            assert_eq!(
                (got.update.client, got.update.n_samples, got.update.steps),
                (want.update.client, want.update.n_samples, want.update.steps)
            );
            // NaN losses round-trip by bit pattern (PartialEq would
            // reject NaN == NaN, so compare bits).
            assert_eq!(got.update.loss.to_bits(), want.update.loss.to_bits());
            assert_eq!(got.update.commit, want.update.commit, "blob equality is bit-exact");
        }
        match &sched.events[1].update.payload {
            UpdatePayload::StateAux { state, aux } => {
                assert_eq!(state, &model);
                assert_eq!(aux[0].to_bits(), 1.0f32.to_bits());
                assert_eq!(aux[1].to_bits(), (-0.0f32).to_bits());
                assert_eq!(aux[2].to_bits(), f32::NAN.to_bits());
            }
            other => panic!("wrong payload variant: {other:?}"),
        }
        match &sched.events[2].update.payload {
            UpdatePayload::Logits(t) => assert_eq!(t.dims, vec![2, 3]),
            other => panic!("wrong payload variant: {other:?}"),
        }
        match &sched.events[3].update.payload {
            UpdatePayload::Window { offset, state } => {
                assert_eq!(*offset, 3);
                assert_eq!(state, &model);
            }
            other => panic!("wrong payload variant: {other:?}"),
        }
        assert!(matches!(sched.events[0].update.payload, UpdatePayload::Empty));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_checkpoints_still_write_version_one() {
        // Growing the format must not disturb synchronous checkpoints:
        // the meta section still leads with version 1 byte-for-byte.
        let dir = tmpdir("v1_stable");
        let path = save_run(&sample_ckpt(2), &dir).unwrap();
        let loaded = load_run(&path).unwrap();
        assert!(loaded.scheduler.is_none());
        assert_eq!(loaded.next_round, 2);
        assert_eq!(loaded.records.len(), 2);
        let mut sync = sample_ckpt(2);
        let sync_meta = super::encode_meta(&sync);
        assert_eq!(sync_meta[0..4], RUN_CHECKPOINT_VERSION.to_le_bytes());
        sync.scheduler = Some(crate::scheduler::SchedulerState { now_bits: 0, events: vec![] });
        let async_meta = super::encode_meta(&sync);
        assert_eq!(async_meta[0..4], ASYNC_CHECKPOINT_VERSION.to_le_bytes());
        assert_eq!(
            async_meta[4..sync_meta.len()],
            sync_meta[4..],
            "the async format appends after the v1 fields, it does not reshuffle them"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_two_checkpoints_are_refused_with_a_clear_message() {
        // v2 async checkpoints carried no per-event uplink bytes; loading
        // one would silently zero the billing of every in-flight event.
        let err = match super::decode_meta(&2u32.to_le_bytes()) {
            Ok(_) => panic!("a v2 checkpoint must be refused"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("version 2"), "bad message: {err}");
        assert!(err.to_string().contains("uplink"), "bad message: {err}");
    }

    #[test]
    fn directory_resume_picks_newest_and_skips_tmp_and_corrupt() {
        let dir = tmpdir("latest");
        save_run(&sample_ckpt(2), &dir).unwrap();
        save_run(&sample_ckpt(4), &dir).unwrap();
        // A crash mid-write of round 6 leaves a truncated tmp file...
        std::fs::write(dir.join("round_00006.ckpt.tmp"), b"KEMFCK").unwrap();
        // ...and even a corrupt *named* checkpoint must fall back.
        std::fs::write(checkpoint_file(&dir, 8), b"KEMFCKPT garbage").unwrap();
        assert_eq!(latest_checkpoint(&dir).unwrap(), Some(checkpoint_file(&dir, 8)));
        let loaded = load_run(&dir).unwrap();
        assert_eq!(loaded.next_round, 4, "corrupt newest falls back to last good");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmpdir("prune");
        for r in [1, 2, 3, 4] {
            save_run(&sample_ckpt(r), &dir).unwrap();
        }
        prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(checkpoint_rounds(&dir).unwrap(), vec![3, 4]);
        prune_checkpoints(&dir, 0).unwrap();
        assert_eq!(checkpoint_rounds(&dir).unwrap(), vec![3, 4], "keep=0 keeps all");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_ignores_rounds_but_sees_everything_else() {
        let cfg = FlConfig::default();
        let faults = FaultConfig::reliable();
        let base = run_fingerprint(&cfg, &faults, "FedAvg", 7).unwrap();
        let longer = FlConfig { rounds: 100, ..cfg };
        assert_eq!(
            run_fingerprint(&longer, &faults, "FedAvg", 7).unwrap(),
            base,
            "horizon is not identity"
        );
        let other_seed = run_fingerprint(&cfg, &faults, "FedAvg", 8).unwrap();
        assert_ne!(other_seed, base);
        let other_algo = run_fingerprint(&cfg, &faults, "FedProx", 7).unwrap();
        assert_ne!(other_algo, base);
        let other_cfg = FlConfig { n_clients: 11, ..cfg };
        assert_ne!(run_fingerprint(&other_cfg, &faults, "FedAvg", 7).unwrap(), base);
        let other_faults = FaultConfig { drop_after_download: 0.1, ..faults };
        assert_ne!(run_fingerprint(&cfg, &other_faults, "FedAvg", 7).unwrap(), base);
    }

    #[test]
    fn fingerprint_refuses_non_finite_identity_fields() {
        // The vendored serde_json writes NaN as `null`, so without the
        // explicit guard two *different* broken configs would share one
        // fingerprint. The guard must catch every float that defines
        // run identity, in both the config and the fault model.
        let faults = FaultConfig::reliable();
        let bad_cfg = FlConfig { momentum: f32::NAN, ..FlConfig::default() };
        let err = run_fingerprint(&bad_cfg, &faults, "FedAvg", 7).unwrap_err();
        assert!(
            matches!(err, CheckpointError::NonFinite { what: "config", field: "momentum", .. }),
            "got: {err}"
        );
        let bad_lr = FlConfig { lr: f32::INFINITY, ..FlConfig::default() };
        assert!(run_fingerprint(&bad_lr, &faults, "FedAvg", 7).is_err());
        let bad_faults =
            FaultConfig { straggler_delay_s: f64::NAN, ..FaultConfig::reliable() };
        let err = run_fingerprint(&FlConfig::default(), &bad_faults, "FedAvg", 7).unwrap_err();
        assert!(
            matches!(err, CheckpointError::NonFinite { what: "faults", .. }),
            "got: {err}"
        );
        let bad_deadline = FaultConfig {
            round_deadline_s: Some(f64::INFINITY),
            ..FaultConfig::reliable()
        };
        assert!(run_fingerprint(&FlConfig::default(), &bad_deadline, "FedAvg", 7).is_err());
    }

    #[test]
    fn empty_dir_is_clean_error() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = load_run(&dir).unwrap_err();
        assert!(matches!(err, LoadError::NoCheckpoints { .. }), "got: {err}");
        assert!(err.to_string().contains("no round_*.ckpt"), "bad message: {err}");
        assert!(latest_checkpoint(&dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_only_dir_is_a_typed_error_not_a_panic() {
        let dir = tmpdir("corrupt_only");
        std::fs::create_dir_all(&dir).unwrap();
        // Two named checkpoints, both garbage: the fallback scan used to
        // end in `last_err.expect(..)`; now it reports what it tried.
        std::fs::write(checkpoint_file(&dir, 2), b"KEMFCKPT nope").unwrap();
        std::fs::write(checkpoint_file(&dir, 4), b"still nope").unwrap();
        let err = load_run(&dir).unwrap_err();
        match err {
            LoadError::AllCorrupt { dir: ref d, tried, .. } => {
                assert_eq!(tried, 2);
                assert_eq!(d, &dir);
            }
            other => panic!("expected AllCorrupt, got: {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
