//! Per-round training history and the derived quantities the paper
//! reports: rounds-to-target-accuracy (Fig. 6, Table 1), convergence
//! accuracy (Fig. 5, Table 2), and training stability (Fig. 7).

use crate::trace::RunTrace;
use serde::{DeError, Deserialize, Serialize, Value};

/// Fairness statistics over per-client accuracies (Michieli & Ozay 2021
/// ask whether all users are treated fairly; the multi-model experiment
/// reports these alongside the mean).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FairnessSummary {
    /// Mean per-client accuracy.
    pub mean: f32,
    /// Standard deviation across clients (lower = fairer).
    pub std: f32,
    /// Worst-off client.
    pub min: f32,
    /// Best-off client.
    pub max: f32,
}

/// Summarize per-client accuracies into a fairness triple. `None` when
/// no clients reported — the old version asserted, killing a server over
/// a fully-dropped round, and a 0/0 variant would have reported NaN/±∞
/// as if they were measurements.
pub fn fairness_summary(per_client: &[f32]) -> Option<FairnessSummary> {
    if per_client.is_empty() {
        return None;
    }
    let n = per_client.len() as f32;
    let mean = per_client.iter().sum::<f32>() / n;
    let var = per_client.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
    Some(FairnessSummary {
        mean,
        std: var.sqrt(),
        min: per_client.iter().copied().fold(f32::INFINITY, f32::min),
        max: per_client.iter().copied().fold(f32::NEG_INFINITY, f32::max),
    })
}

/// One communication round's observables, including the per-phase
/// communication split the fault-aware executor records: downlink over
/// the full broadcast set, uplink over accepted reports, and wasted
/// uplink from failed upload attempts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Global-model top-1 test accuracy after this round.
    pub test_acc: f32,
    /// Mean local training loss across reporting clients. NaN when the
    /// round aborted below quorum (nobody reported, so there is no
    /// loss). JSON has no NaN: it serializes as `null` and parses back
    /// to NaN, instead of — as the pre-fix engine did — masquerading as
    /// a perfect `0.0`.
    pub train_loss: f32,
    /// Cumulative communication bytes through this round.
    pub cum_bytes: u64,
    /// Downlink bytes this round (summed over each broadcast-reached
    /// client's own payload — uniform algorithms degenerate to payload ×
    /// broadcast set).
    pub down_bytes: u64,
    /// Accepted uplink bytes this round (summed over each completed
    /// upload's own payload).
    pub up_bytes: u64,
    /// Uplink bytes of failed upload attempts this round.
    pub wasted_up_bytes: u64,
    /// Clients that received the broadcast.
    pub down_clients: usize,
    /// Clients whose upload the server accepted.
    pub up_clients: usize,
    /// False when the round aborted below the reporting quorum (the
    /// global state rolled forward unchanged).
    pub quorum_met: bool,
}

impl Default for RoundRecord {
    fn default() -> Self {
        RoundRecord {
            round: 0,
            test_acc: 0.0,
            train_loss: 0.0,
            cum_bytes: 0,
            down_bytes: 0,
            up_bytes: 0,
            wasted_up_bytes: 0,
            down_clients: 0,
            up_clients: 0,
            quorum_met: true,
        }
    }
}

/// Full history of one federated run.
#[derive(Clone, Debug)]
pub struct History {
    /// Algorithm label.
    pub algorithm: String,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
    /// Round-lifecycle trace, when the run was recorded through a
    /// [`crate::trace::TraceSink`]. Absent — and absent from the JSON —
    /// for untraced runs, so observability never perturbs existing
    /// serialized histories.
    pub trace: Option<RunTrace>,
    /// What the byte columns actually price on the wire: `"weights"`
    /// (full model state), `"window"` (a rolling sub-model), `"logits"`
    /// (knowledge-only exchange), or `"mixed"` when clients of one round
    /// received different view kinds. Empty — and omitted from both the
    /// JSON and the CSV — when the run predates per-client plans, so
    /// legacy histories re-serialize byte-identically.
    pub payload_kind: String,
}

// Hand-written (rather than derived) so an absent trace is *omitted*
// from the JSON instead of rendered as `"trace": null`: untraced
// histories stay bit-identical to the pre-observability format.
impl Serialize for History {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("algorithm".to_string(), self.algorithm.to_value()),
            ("records".to_string(), self.records.to_value()),
        ];
        if let Some(trace) = &self.trace {
            entries.push(("trace".to_string(), trace.to_value()));
        }
        if !self.payload_kind.is_empty() {
            entries.push(("payload_kind".to_string(), self.payload_kind.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for History {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::custom("expected map for History"))?;
        Ok(History {
            algorithm: String::from_value(serde::get_field(m, "algorithm")?)?,
            records: Vec::from_value(serde::get_field(m, "records")?)?,
            trace: m
                .iter()
                .find(|(k, _)| k == "trace")
                .map(|(_, t)| RunTrace::from_value(t))
                .transpose()?,
            payload_kind: m
                .iter()
                .find(|(k, _)| k == "payload_kind")
                .map(|(_, v)| String::from_value(v))
                .transpose()?
                .unwrap_or_default(),
        })
    }
}

impl History {
    /// Empty history for an algorithm.
    pub fn new(algorithm: impl Into<String>) -> Self {
        History {
            algorithm: algorithm.into(),
            records: Vec::new(),
            trace: None,
            payload_kind: String::new(),
        }
    }

    /// Append a round.
    pub fn push(&mut self, rec: RoundRecord) {
        self.records.push(rec);
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.records.len()
    }

    /// Accuracy series.
    pub fn accuracies(&self) -> Vec<f32> {
        self.records.iter().map(|r| r.test_acc).collect()
    }

    /// First round (1-based, matching the paper's tables) whose accuracy
    /// reaches `target`, or `None` if never reached.
    pub fn rounds_to_target(&self, target: f32) -> Option<usize> {
        self.records.iter().position(|r| r.test_acc >= target).map(|i| i + 1)
    }

    /// Cumulative bytes at the round `target` accuracy was reached.
    pub fn bytes_to_target(&self, target: f32) -> Option<u64> {
        self.records.iter().find(|r| r.test_acc >= target).map(|r| r.cum_bytes)
    }

    /// Convergence accuracy: mean test accuracy over the last `window`
    /// rounds (the paper's "converge acc."). Uses all rounds if fewer.
    /// NaN for an empty history — a mean over zero rounds is not `0.0`,
    /// and downstream `{:.4}` formatting renders NaN honestly.
    pub fn converged_accuracy(&self, window: usize) -> f32 {
        if self.records.is_empty() {
            return f32::NAN;
        }
        let w = window.clamp(1, self.records.len());
        let tail = &self.records[self.records.len() - w..];
        tail.iter().map(|r| r.test_acc).sum::<f32>() / w as f32
    }

    /// Round at which training plateaued: the first round after which the
    /// best accuracy improves by less than `tol` (the paper's "converge
    /// rounds"). Returns the last round if no plateau is detected.
    pub fn converge_round(&self, tol: f32) -> usize {
        let accs = self.accuracies();
        if accs.is_empty() {
            return 0;
        }
        let mut best = f32::NEG_INFINITY;
        let mut best_round = 0;
        for (i, &a) in accs.iter().enumerate() {
            if a > best + tol {
                best = a;
                best_round = i;
            }
        }
        best_round + 1
    }

    /// Peak test accuracy.
    pub fn best_accuracy(&self) -> f32 {
        self.records.iter().map(|r| r.test_acc).fold(0.0, f32::max)
    }

    /// Final-round accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.test_acc)
    }

    /// Total communication bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.last().map_or(0, |r| r.cum_bytes)
    }

    /// Stability: standard deviation of the accuracy over the last
    /// `window` rounds (Fig. 7 reports FedKEMF's low variance).
    pub fn tail_std(&self, window: usize) -> f32 {
        if self.records.len() < 2 {
            return 0.0;
        }
        let w = window.clamp(2, self.records.len());
        let tail: Vec<f32> =
            self.records[self.records.len() - w..].iter().map(|r| r.test_acc).collect();
        let mean = tail.iter().sum::<f32>() / tail.len() as f32;
        (tail.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / tail.len() as f32).sqrt()
    }

    /// Serialize to pretty JSON (plotting pipelines, checkpointing).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("history serializes")
    }

    /// Parse a history back from [`History::to_json`] output.
    pub fn from_json(s: &str) -> Result<History, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// CSV rows for downstream plotting. Carries the full lifecycle
    /// story of fault-aware runs: per-phase client counts and the
    /// quorum outcome ride along with the byte split (they used to be
    /// silently dropped). A quorum-aborted round's missing loss renders
    /// as `NaN`, which every plotting stack treats as a gap — never as
    /// a perfect zero. When the run recorded a [`History::payload_kind`],
    /// a trailing `payload` column says what the byte columns actually
    /// price (`weights` / `window` / `logits` / `mixed`) instead of
    /// letting every consumer assume full model weights; legacy
    /// histories keep the exact old schema.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,test_acc,train_loss,down_bytes,up_bytes,wasted_up_bytes,cum_bytes,down_clients,up_clients,quorum_met",
        );
        if !self.payload_kind.is_empty() {
            out.push_str(",payload");
        }
        out.push('\n');
        for r in &self.records {
            out.push_str(&format!(
                "{},{:.4},{:.4},{},{},{},{},{},{},{}",
                r.round + 1,
                r.test_acc,
                r.train_loss,
                r.down_bytes,
                r.up_bytes,
                r.wasted_up_bytes,
                r.cum_bytes,
                r.down_clients,
                r.up_clients,
                r.quorum_met
            ));
            if !self.payload_kind.is_empty() {
                out.push(',');
                out.push_str(&self.payload_kind);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(accs: &[f32]) -> History {
        let mut h = History::new("test");
        for (i, &a) in accs.iter().enumerate() {
            h.push(RoundRecord {
                round: i,
                test_acc: a,
                train_loss: 1.0 - a,
                cum_bytes: (i as u64 + 1) * 100,
                down_bytes: 60,
                up_bytes: 40,
                down_clients: 2,
                up_clients: 2,
                ..Default::default()
            });
        }
        h
    }

    #[test]
    fn rounds_to_target() {
        let h = hist(&[0.1, 0.3, 0.5, 0.4, 0.7]);
        assert_eq!(h.rounds_to_target(0.5), Some(3));
        assert_eq!(h.rounds_to_target(0.65), Some(5));
        assert_eq!(h.rounds_to_target(0.9), None);
        assert_eq!(h.bytes_to_target(0.5), Some(300));
    }

    #[test]
    fn converged_accuracy_averages_tail() {
        let h = hist(&[0.1, 0.2, 0.6, 0.6, 0.6]);
        assert!((h.converged_accuracy(3) - 0.6).abs() < 1e-6);
        assert!((h.converged_accuracy(100) - 0.42).abs() < 1e-6);
    }

    #[test]
    fn converge_round_detects_plateau() {
        let h = hist(&[0.1, 0.4, 0.55, 0.56, 0.56, 0.561]);
        assert_eq!(h.converge_round(0.02), 3);
        // With a tight tolerance the tiny late gains count.
        assert_eq!(h.converge_round(0.0005), 6);
    }

    #[test]
    fn stability_metric_orders_noisy_vs_smooth() {
        let smooth = hist(&[0.5, 0.51, 0.52, 0.52, 0.53]);
        let noisy = hist(&[0.5, 0.2, 0.6, 0.1, 0.55]);
        assert!(noisy.tail_std(5) > smooth.tail_std(5) * 3.0);
    }

    #[test]
    fn empty_history_is_safe() {
        let h = History::new("x");
        assert_eq!(h.rounds_to_target(0.1), None);
        assert!(h.converged_accuracy(5).is_nan(), "no rounds → no mean, not a fake 0.0");
        assert_eq!(h.tail_std(5), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert_eq!(h.total_bytes(), 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let h = hist(&[0.5]);
        let csv = h.to_csv();
        assert_eq!(
            csv.lines().next().unwrap(),
            "round,test_acc,train_loss,down_bytes,up_bytes,wasted_up_bytes,cum_bytes,\
             down_clients,up_clients,quorum_met"
        );
        assert_eq!(csv.lines().count(), 2);
        assert!(
            csv.lines().nth(1).unwrap().ends_with(",2,2,true"),
            "lifecycle columns present: {csv}"
        );
    }

    #[test]
    fn payload_kind_rides_the_csv_and_json_only_when_known() {
        // Legacy histories (no payload kind) keep the exact old schema.
        let legacy = hist(&[0.5]);
        assert!(!legacy.to_csv().contains("payload"), "{}", legacy.to_csv());
        assert!(!legacy.to_json().contains("payload_kind"), "{}", legacy.to_json());
        // A run that recorded what crossed the wire labels its bytes.
        let mut h = hist(&[0.5, 0.6]);
        h.payload_kind = "window".to_string();
        let csv = h.to_csv();
        assert!(csv.lines().next().unwrap().ends_with(",quorum_met,payload"), "{csv}");
        assert!(csv.lines().nth(1).unwrap().ends_with(",true,window"), "{csv}");
        let parsed = History::from_json(&h.to_json()).unwrap();
        assert_eq!(parsed.payload_kind, "window");
        // And a legacy JSON (field absent) parses to the empty kind.
        let reparsed = History::from_json(&legacy.to_json()).unwrap();
        assert!(reparsed.payload_kind.is_empty());
    }

    #[test]
    fn quorum_aborted_loss_renders_honestly() {
        let mut h = History::new("x");
        h.push(RoundRecord {
            round: 0,
            test_acc: 0.4,
            train_loss: f32::NAN,
            quorum_met: false,
            ..Default::default()
        });
        // CSV: NaN, which plotting stacks read as a gap, not a 0.0.
        let row = h.to_csv().lines().nth(1).unwrap().to_string();
        assert!(row.contains(",NaN,"), "{row}");
        assert!(row.ends_with(",false"), "{row}");
        // JSON: null, and it round-trips back to NaN.
        let json = h.to_json();
        assert!(json.contains("\"train_loss\": null"), "{json}");
        let parsed = History::from_json(&json).unwrap();
        assert!(parsed.records[0].train_loss.is_nan());
        assert!(!parsed.records[0].quorum_met);
    }

    #[test]
    fn json_roundtrip() {
        let h = hist(&[0.1, 0.5, 0.7]);
        let parsed = History::from_json(&h.to_json()).unwrap();
        assert_eq!(parsed.algorithm, h.algorithm);
        assert_eq!(parsed.rounds(), 3);
        assert_eq!(parsed.accuracies(), h.accuracies());
    }

    #[test]
    fn fairness_summary_statistics() {
        let f = fairness_summary(&[0.5, 0.7, 0.9]).unwrap();
        assert!((f.mean - 0.7).abs() < 1e-6);
        assert!((f.min - 0.5).abs() < 1e-6);
        assert!((f.max - 0.9).abs() < 1e-6);
        assert!(f.std > 0.1 && f.std < 0.2);
        let uniform = fairness_summary(&[0.6; 4]).unwrap();
        assert!(uniform.std < 1e-6, "identical clients are perfectly fair");
        // Zero reporting clients is an absence of data, not a NaN/±∞
        // summary and not a process-killing assert.
        assert!(fairness_summary(&[]).is_none());
    }
}
