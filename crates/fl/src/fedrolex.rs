//! FedRolex (Alam et al. 2022): rolling-window sub-model training for a
//! server model *wider than any client can host*. Each round, client `k`
//! receives only the hidden units `{j : j mod C == t}` of the server's
//! one-hidden-layer MLP, where `C` is the number of disjoint windows and
//! `t = (round + k) mod C` rolls by one every round. Over any `C`
//! consecutive rounds a participating client touches every window, so
//! every server parameter is trained exactly once per full cycle — the
//! invariant the window tests below pin down.
//!
//! The architecture is [`Arch::Mlp1`] by construction: each hidden unit
//! `j` owns exactly one input-weight row `W1[j, ·]`, one hidden bias
//! `b1[j]`, and one classifier column `W2[·, j]` — disjoint slices a
//! window can extract and scatter back without touching its neighbours.
//! The classifier bias `b2` is shared by all units: every client
//! downloads it (the sub-model cannot run without it), but only the
//! window-0 client scatters it back, so it too is written exactly once
//! per cycle and the uplink of every other window omits its bytes.
//!
//! Per-client pricing is where this algorithm needed the redesigned
//! broadcast API: a window of `w` units moves `4·(w·(D+1+K) + K)` bytes
//! down and `4·w·(D+1+K)` (+`4K` for window 0) bytes up — a fraction
//! `≈ w/H` of the full server model, which
//! [`crate::engine::FedAlgorithm::client_plans`] now bills truthfully
//! per (client, round) instead of fleet-wide.

use crate::config::ConfigError;
use crate::context::FlContext;
use crate::engine::{EngineError, FedAlgorithm, RoundOutcome};
use crate::lifecycle::{ClientPlan, ModelView, WirePayload};
use crate::local::{local_train, LocalCfg};
use crate::scheduler::{PreparedUpdate, UpdatePayload};
use crate::state::{check_model_layout, AlgorithmState, RestoreError};
use crate::trace::{Phase, RoundScope};
use crate::weight_common::GlobalModel;
use kemf_nn::model::Model;
use kemf_nn::models::{Arch, ModelSpec};
use kemf_nn::serialize::{ModelState, Weights};
use kemf_tensor::rng::child_seed;
use rayon::prelude::*;

/// Configuration of a FedRolex server.
#[derive(Clone, Copy, Debug)]
pub struct FedRolexConfig {
    /// The server model. Must be [`Arch::Mlp1`]; its `width` is the
    /// server hidden dimension `H`, typically several times what any
    /// client can host.
    pub server_spec: ModelSpec,
    /// Largest hidden width a client can host (`L`). The rolling cycle
    /// is `C = ceil(H / L)`, so every window fits in `L` units.
    pub client_width: usize,
}

/// Rolling-window sub-model training over a wide MLP server.
pub struct FedRolex {
    global: GlobalModel,
    cycle: usize,
}

/// Hidden units of window `t`: `{j < h : j mod cycle == t}`, ascending.
fn window_units(h: usize, cycle: usize, t: usize) -> impl Iterator<Item = usize> {
    (t..h).step_by(cycle.max(1))
}

/// Number of hidden units in window `t` (`ceil((h − t) / cycle)`).
fn window_width(h: usize, cycle: usize, t: usize) -> usize {
    debug_assert!(t < cycle && cycle <= h);
    (h - t).div_ceil(cycle)
}

/// Flat layout of an [`Arch::Mlp1`] parameter vector of hidden width
/// `w`: `W1[w, d]` row-major, `b1[w]`, `W2[k, w]` row-major, `b2[k]`.
#[derive(Clone, Copy)]
struct MlpLayout {
    /// Input dimension `D` (flattened image).
    d: usize,
    /// Hidden width.
    w: usize,
    /// Classes `K`.
    k: usize,
}

impl MlpLayout {
    fn of(spec: &ModelSpec, width: usize) -> Self {
        MlpLayout { d: spec.in_channels * spec.input_hw * spec.input_hw, w: width, k: spec.classes }
    }

    fn numel(&self) -> usize {
        self.w * (self.d + 1 + self.k) + self.k
    }

    fn lens(&self) -> Vec<usize> {
        vec![self.w * self.d, self.w, self.k * self.w, self.k]
    }

    /// Flat offsets of the four parameter blocks.
    fn blocks(&self) -> (usize, usize, usize, usize) {
        let w1 = 0;
        let b1 = self.w * self.d;
        let w2 = b1 + self.w;
        let b2 = w2 + self.k * self.w;
        (w1, b1, w2, b2)
    }
}

impl FedRolex {
    /// New FedRolex server. Panics on a non-MLP architecture or a zero
    /// client width; prefer catching those at configuration time.
    pub fn new(cfg: FedRolexConfig) -> Self {
        assert_eq!(cfg.server_spec.arch, Arch::Mlp1, "FedRolex requires Arch::Mlp1");
        assert!(cfg.client_width >= 1, "client_width must be at least 1");
        let h = cfg.server_spec.width;
        assert!(cfg.client_width <= h, "client_width {} exceeds server width {h}", cfg.client_width);
        let cycle = h.div_ceil(cfg.client_width);
        FedRolex { global: GlobalModel::new(cfg.server_spec), cycle }
    }

    /// Number of disjoint windows covering the server model.
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Server parameter count (for the ≥2×-any-client headline).
    pub fn server_params(&self) -> usize {
        self.global.state.params.numel()
    }

    /// Parameter count of the largest window's sub-model.
    pub fn largest_client_params(&self) -> usize {
        let spec = self.global.spec;
        MlpLayout::of(&spec, window_width(spec.width, self.cycle, 0)).numel()
    }

    fn server_layout(&self) -> MlpLayout {
        MlpLayout::of(&self.global.spec, self.global.spec.width)
    }

    /// The window offset client `k` trains at round `r`.
    fn offset_for(&self, round: usize, client: usize) -> usize {
        (round + client) % self.cycle
    }

    /// Extract window `t` of the server parameters as a client-sized
    /// sub-model state (`b2` always included — the sub-model cannot
    /// classify without it).
    fn extract(&self, t: usize) -> ModelState {
        let sl = self.server_layout();
        let w = window_width(sl.w, self.cycle, t);
        let cl = MlpLayout { w, ..sl };
        let (sw1, sb1, sw2, sb2) = sl.blocks();
        let (cw1, cb1, cw2, cb2) = cl.blocks();
        let src = &self.global.state.params.values;
        let mut values = vec![0.0f32; cl.numel()];
        for (i, j) in window_units(sl.w, self.cycle, t).enumerate() {
            values[cw1 + i * cl.d..cw1 + (i + 1) * cl.d]
                .copy_from_slice(&src[sw1 + j * sl.d..sw1 + (j + 1) * sl.d]);
            values[cb1 + i] = src[sb1 + j];
            for c in 0..cl.k {
                values[cw2 + c * cl.w + i] = src[sw2 + c * sl.w + j];
            }
        }
        values[cb2..cb2 + cl.k].copy_from_slice(&src[sb2..sb2 + sl.k]);
        ModelState {
            params: Weights { values, lens: cl.lens() },
            buffers: Weights { values: Vec::new(), lens: Vec::new() },
        }
    }

    /// Scatter an averaged window-`t` sub-model back into the server
    /// parameters. `b2` is written only when `include_b2` (window 0).
    fn scatter(&mut self, t: usize, avg: &Weights, include_b2: bool) {
        let sl = self.server_layout();
        let w = window_width(sl.w, self.cycle, t);
        let cl = MlpLayout { w, ..sl };
        debug_assert_eq!(avg.values.len(), cl.numel());
        let (sw1, sb1, sw2, sb2) = sl.blocks();
        let (cw1, cb1, cw2, cb2) = cl.blocks();
        let dst = &mut self.global.state.params.values;
        for (i, j) in window_units(sl.w, self.cycle, t).enumerate() {
            dst[sw1 + j * sl.d..sw1 + (j + 1) * sl.d]
                .copy_from_slice(&avg.values[cw1 + i * cl.d..cw1 + (i + 1) * cl.d]);
            dst[sb1 + j] = avg.values[cb1 + i];
            for c in 0..cl.k {
                dst[sw2 + c * sl.w + j] = avg.values[cw2 + c * cl.w + i];
            }
        }
        if include_b2 {
            dst[sb2..sb2 + sl.k].copy_from_slice(&avg.values[cb2..cb2 + cl.k]);
        }
    }

    /// Downlink bytes of window `t`'s sub-model.
    fn window_down_bytes(&self, t: usize) -> u64 {
        let sl = self.server_layout();
        4 * MlpLayout { w: window_width(sl.w, self.cycle, t), ..sl }.numel() as u64
    }
}

impl FedAlgorithm for FedRolex {
    fn name(&self) -> String {
        "FedRolex".into()
    }

    fn init(&mut self, _ctx: &FlContext) -> Result<(), ConfigError> {
        if self.global.spec.classes == 0 {
            return Err(ConfigError::AlgorithmSetup {
                algorithm: self.name(),
                reason: "server model must have at least one class".into(),
            });
        }
        Ok(())
    }

    fn client_plans(&self, round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        let b2_bytes = 4 * self.global.spec.classes as u64;
        sampled
            .iter()
            .map(|&client| {
                let t = self.offset_for(round, client);
                let down_bytes = self.window_down_bytes(t);
                // Every window downloads b2; only window 0 uploads it.
                let up_bytes = if t == 0 { down_bytes } else { down_bytes - b2_bytes };
                ClientPlan {
                    client,
                    view: ModelView::Window { offset: t, cycle: self.cycle },
                    payload: WirePayload { down_bytes, up_bytes },
                }
            })
            .collect()
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        if sampled.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        // The synchronous round is exactly the asynchronous pair at
        // staleness weight 1.0, so both modes share one code path.
        let updates = self.train_cohort(round, sampled, ctx, scope)?;
        self.fuse(round, updates.into_iter().map(|u| (u, 1.0)).collect(), ctx, scope)
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        if sampled.is_empty() {
            return Ok(Vec::new());
        }
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(wave),
        };
        let spec = self.global.spec;
        let cycle = self.cycle;
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut out = Vec::with_capacity(sampled.len());
        scope.phase(Phase::LocalUpdate, |c| {
            for batch in sampled.chunks(chunk) {
                let results: Vec<PreparedUpdate> = batch
                    .par_iter()
                    .map(|&k| {
                        let t = (wave + k) % cycle;
                        let sub = self.extract(t);
                        let mut model =
                            Model::new(ModelSpec { width: sub.params.lens[1], ..spec });
                        model.set_state(&sub);
                        let seed = child_seed(ctx.cfg.seed, (wave as u64) << 20 | k as u64);
                        let shard = ctx.client_shard(k);
                        let outcome = local_train(&mut model, &shard, &local, seed, None);
                        PreparedUpdate {
                            client: k,
                            n_samples: shard.len(),
                            steps: outcome.steps,
                            loss: outcome.mean_loss,
                            payload: UpdatePayload::Window { offset: t, state: model.state() },
                            commit: None,
                        }
                    })
                    .collect();
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.steps as u64).sum::<u64>();
                c.batches = c.steps;
                out.extend(results);
            }
        });
        Ok(out)
    }

    fn fuse(
        &mut self,
        _round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        _ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        if updates.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let sl = self.server_layout();
        let mut loss_sum = 0.0f32;
        let reported = updates.len();
        // Group by window offset in arrival order; each group averages
        // at coefficient staleness_weight × n_samples, then scatters
        // into its disjoint server slice.
        let mut groups: Vec<Vec<(&Weights, f32)>> = vec![Vec::new(); self.cycle];
        for (u, w) in &updates {
            let UpdatePayload::Window { offset, state } = &u.payload else {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("client {}: expected a window update payload", u.client),
                }));
            };
            if *offset >= self.cycle {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!(
                        "client {}: window offset {offset} outside cycle {}",
                        u.client, self.cycle
                    ),
                }));
            }
            let want = MlpLayout { w: window_width(sl.w, self.cycle, *offset), ..sl }.numel();
            if state.params.values.len() != want {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!(
                        "client {}: window {offset} update has {} params, expected {want}",
                        u.client,
                        state.params.values.len()
                    ),
                }));
            }
            groups[*offset].push((&state.params, w * u.n_samples as f32));
            loss_sum += u.loss;
        }
        let mut fused: Vec<(usize, Weights)> = Vec::new();
        for (t, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let total: f32 = group.iter().map(|(_, c)| c).sum();
            let mut acc = group[0].0.zeros_like();
            for (params, coeff) in group {
                acc.scale_add(1.0, params, coeff / total);
            }
            fused.push((t, acc));
        }
        scope.phase(Phase::Fusion, |c| {
            c.clients = reported;
            for (t, avg) in &fused {
                self.scatter(*t, avg, *t == 0);
            }
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.global.evaluate(ctx)
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        Ok(AlgorithmState::new(self.name(), 1)
            .with_model("global", self.global.state.clone())
            .with_scalar("cycle", self.cycle as f64))
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let cycle = state.scalar("cycle")?;
        if cycle != self.cycle as f64 {
            return Err(RestoreError::ShapeMismatch {
                name: "cycle".into(),
                detail: format!("checkpointed cycle {cycle} != live {}", self.cycle),
            });
        }
        let incoming = state.model("global")?;
        check_model_layout("global", incoming, &self.global.state)?;
        self.global.state = incoming.clone();
        Ok(())
    }

    fn global_model(&self) -> Option<(ModelSpec, ModelState)> {
        Some((self.global.spec, self.global.state.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::engine::{Engine, RunOptions};
    use kemf_data::synth::{SynthConfig, SynthTask};

    fn server_spec(width: usize) -> ModelSpec {
        ModelSpec { width, ..ModelSpec::scaled(Arch::Mlp1, 1, 12, 10, 7) }
    }

    fn rolex(width: usize, client_width: usize) -> FedRolex {
        FedRolex::new(FedRolexConfig { server_spec: server_spec(width), client_width })
    }

    fn ctx(seed: u64, rounds: usize) -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(240, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: 4,
            sample_ratio: 1.0,
            rounds,
            local_epochs: 2,
            batch_size: 16,
            alpha: 1.0,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    #[test]
    fn windows_partition_every_hidden_unit_exactly_once() {
        for (h, l) in [(32usize, 8usize), (33, 8), (7, 3), (16, 16), (9, 1)] {
            let cycle = h.div_ceil(l);
            let mut seen = vec![0usize; h];
            for t in 0..cycle {
                let units: Vec<usize> = window_units(h, cycle, t).collect();
                assert_eq!(units.len(), window_width(h, cycle, t), "H={h} L={l} t={t}");
                assert!(units.len() <= l, "window exceeds client budget: H={h} L={l} t={t}");
                for j in units {
                    seen[j] += 1;
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "H={h} L={l}: coverage {seen:?}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// The schedule invariant over arbitrary geometry, not just the
        /// hand-picked cases above: for any server width `H` and client
        /// budget `L ≤ H`, one full cycle of windows covers every server
        /// parameter exactly once. Coverage (sentinel overwrite) plus a
        /// write-count equal to the parameter count pins "exactly once";
        /// each window also has to fit the client budget.
        #[test]
        fn any_geometry_covers_every_server_parameter_exactly_once(
            h in 1usize..64,
            l in 1usize..64,
        ) {
            // The vendored proptest has no prop_assume: clamp instead.
            let l = l.min(h);
            let mut algo = rolex(h, l);
            let cycle = algo.cycle();
            let sl = algo.server_layout();
            let mut width_sum = 0usize;
            for t in 0..cycle {
                let w = window_width(h, cycle, t);
                proptest::prop_assert!(w <= l, "H={h} L={l} t={t}: width {w} exceeds budget");
                width_sum += w;
            }
            // Total scattered writes: each unit owns d+1+k parameters,
            // plus b2 (k values) written only by window 0.
            let writes = width_sum * (sl.d + 1 + sl.k) + sl.k;
            proptest::prop_assert!(
                writes == algo.server_params(),
                "H={} L={}: {} writes vs {} params", h, l, writes, algo.server_params()
            );
            for v in algo.global.state.params.values.iter_mut() {
                *v = -1.0;
            }
            for t in 0..cycle {
                let sub = algo.extract(t);
                let sentinel = Weights {
                    values: vec![t as f32 + 1.0; sub.params.values.len()],
                    lens: sub.params.lens.clone(),
                };
                algo.scatter(t, &sentinel, t == 0);
            }
            proptest::prop_assert!(
                algo.global.state.params.values.iter().all(|&v| v > 0.0),
                "H={} L={}: some server parameter was never written", h, l
            );
        }
    }

    #[test]
    fn extract_then_scatter_is_the_identity() {
        let mut algo = rolex(33, 8);
        let before = algo.global.state.params.values.clone();
        for t in 0..algo.cycle() {
            let sub = algo.extract(t);
            algo.scatter(t, &sub.params, t == 0);
        }
        assert_eq!(algo.global.state.params.values, before);
    }

    #[test]
    fn scattering_every_window_writes_every_server_parameter() {
        // Overwrite each window with a sentinel; after a full cycle no
        // server parameter may retain its original value — the
        // exactly-once coverage the rolling schedule guarantees.
        let mut algo = rolex(32, 8);
        for v in algo.global.state.params.values.iter_mut() {
            *v = -1.0;
        }
        for t in 0..algo.cycle() {
            let sub = algo.extract(t);
            let sentinel = Weights {
                values: vec![t as f32 + 1.0; sub.params.values.len()],
                lens: sub.params.lens.clone(),
            };
            algo.scatter(t, &sentinel, t == 0);
        }
        assert!(
            algo.global.state.params.values.iter().all(|&v| v > 0.0),
            "some server parameter was never written by any window"
        );
    }

    #[test]
    fn plans_price_the_window_not_the_server_model() {
        let algo = rolex(32, 8);
        let full = 4 * algo.server_params() as u64;
        let sampled = [0usize, 1, 2, 3];
        let plans = algo.client_plans(0, &sampled);
        for p in &plans {
            assert!(p.payload.down_bytes < full / 2, "window should be ≪ full: {p:?}");
            let ModelView::Window { offset, cycle } = p.view else {
                panic!("expected a window view, got {:?}", p.view)
            };
            assert_eq!(cycle, algo.cycle());
            // Only window 0 uploads the shared classifier bias.
            let b2 = 4 * 10;
            if offset == 0 {
                assert_eq!(p.payload.up_bytes, p.payload.down_bytes);
            } else {
                assert_eq!(p.payload.up_bytes, p.payload.down_bytes - b2);
            }
        }
        // The schedule rolls: the same client sees a different window
        // next round.
        let next = algo.client_plans(1, &sampled);
        assert_ne!(plans[0].view, next[0].view);
    }

    #[test]
    fn server_is_at_least_twice_any_client() {
        let algo = rolex(32, 8);
        assert!(
            algo.server_params() >= 2 * algo.largest_client_params(),
            "server {} vs client {}",
            algo.server_params(),
            algo.largest_client_params()
        );
    }

    #[test]
    fn fedrolex_learns_above_chance() {
        // rounds ≥ 2 cycles so every window trains at least twice.
        let c = ctx(41, 8);
        let mut algo = rolex(32, 8);
        let report = Engine::run(&mut algo, &c, RunOptions::new()).unwrap();
        assert!(
            report.history.best_accuracy() > 0.2,
            "got {}",
            report.history.best_accuracy()
        );
        assert_eq!(report.history.payload_kind, "window");
    }

    #[test]
    fn empty_cohort_leaves_the_server_untouched() {
        let c = ctx(42, 3);
        let mut algo = rolex(32, 8);
        let before = algo.global.state.params.values.clone();
        let mut sink = crate::trace::NoopSink;
        let mut scope = RoundScope::new(&mut sink, 0);
        let out = algo.round(0, &[], &c, &mut scope).unwrap();
        assert!(out.train_loss.is_nan());
        assert_eq!(algo.global.state.params.values, before);
    }

    #[test]
    fn state_round_trips_and_refuses_a_different_cycle() {
        let c = ctx(43, 4);
        let mut algo = rolex(32, 8);
        let _ = Engine::run(&mut algo, &c, RunOptions::new()).unwrap();
        let snap = algo.state().unwrap();
        let mut fresh = rolex(32, 8);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.global.state.params.values, algo.global.state.params.values);
        // A server carved into a different number of windows must refuse.
        let mut other = rolex(32, 16);
        let err = other.restore(&snap).unwrap_err();
        assert!(matches!(err, RestoreError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn fuse_rejects_foreign_and_misshapen_payloads() {
        let c = ctx(44, 1);
        let mut algo = rolex(32, 8);
        let mut sink = crate::trace::NoopSink;
        let mut scope = RoundScope::new(&mut sink, 0);
        let bad = PreparedUpdate {
            client: 0,
            n_samples: 10,
            steps: 1,
            loss: 0.0,
            payload: UpdatePayload::Empty,
            commit: None,
        };
        let err = algo.fuse(0, vec![(bad, 1.0)], &c, &mut scope).unwrap_err();
        assert!(err.to_string().contains("window"), "{err}");
        let misshapen = PreparedUpdate {
            client: 1,
            n_samples: 10,
            steps: 1,
            loss: 0.0,
            payload: UpdatePayload::Window {
                offset: 0,
                state: ModelState {
                    params: Weights { values: vec![0.0; 3], lens: vec![3] },
                    buffers: Weights { values: Vec::new(), lens: Vec::new() },
                },
            },
            commit: None,
        };
        let err = algo.fuse(0, vec![(misshapen, 1.0)], &c, &mut scope).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }
}
