//! Fault-aware client-round lifecycle.
//!
//! Each sampled client's round is modeled as three phases —
//! **download** (server → client broadcast of the transmitted state),
//! **local train**, and **upload** (client → server report) — and a
//! client can fail at any phase boundary. The executor in [`crate::engine`]
//! draws one [`RoundPlan`] per round from a [`FaultConfig`] and charges
//! communication honestly against it:
//!
//! * downlink bytes are charged to **every client that received the
//!   broadcast**, including clients that crash afterwards (the regime
//!   ensemble-distillation methods are designed to tolerate — a crashed
//!   client still cost the server a full model transmission);
//! * uplink bytes are charged only to clients whose upload **completed**;
//!   failed upload attempts are tracked separately as wasted traffic;
//! * a round with fewer than [`FaultConfig::min_quorum`] completed
//!   clients is aborted: the algorithm never sees it and the global
//!   state rolls forward unchanged (fail-over to the previous state).
//!
//! All randomness is drawn from the engine's dedicated fault RNG in a
//! fixed per-client order, so runs are bit-reproducible per seed, and a
//! fully reliable configuration draws **nothing** — reliable fleets are
//! bit-identical to an engine without fault injection at all.

use crate::comm::CostError;
use serde::{Deserialize, Serialize};
use rand::rngs::StdRng;
use rand::Rng;

/// Fault-injection configuration for one federated run.
///
/// All probabilities are per-client per-round and independent. The
/// default is a fully reliable fleet (every probability zero).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a sampled client is unreachable before the broadcast
    /// (dead battery, lost connectivity). Costs no bytes in either
    /// direction.
    pub drop_before_download: f32,
    /// Probability a client crashes after downloading the global state
    /// but before reporting. Costs full downlink, zero uplink — the
    /// failure mode the legacy `dropout_prob` knob maps onto.
    pub drop_after_download: f32,
    /// Probability a client is a straggler this round.
    pub straggler_prob: f32,
    /// Maximum extra delay (seconds) a straggler adds; the actual delay
    /// is drawn uniformly from `[0, straggler_delay_s)`.
    pub straggler_delay_s: f64,
    /// Round deadline (seconds of injected delay the server tolerates).
    /// A straggler whose drawn delay exceeds the deadline is cut from
    /// the round after training: full downlink charged, upload dropped.
    /// `None` = the server waits out every straggler.
    pub round_deadline_s: Option<f64>,
    /// Probability a single upload attempt fails in transit.
    pub upload_failure_prob: f32,
    /// Transient upload failures are retried (with backoff) up to this
    /// many extra attempts before the client gives up for the round.
    pub upload_retries: u32,
    /// Minimum number of completed client reports for the server to
    /// aggregate; below it the round is aborted and the previous global
    /// state is kept.
    pub min_quorum: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_before_download: 0.0,
            drop_after_download: 0.0,
            straggler_prob: 0.0,
            straggler_delay_s: 30.0,
            round_deadline_s: None,
            upload_failure_prob: 0.0,
            upload_retries: 2,
            min_quorum: 1,
        }
    }
}

impl FaultConfig {
    /// A fully reliable fleet (no fault ever fires).
    pub fn reliable() -> Self {
        Self::default()
    }

    /// True when at least one fault mode can fire.
    pub fn any_faults(&self) -> bool {
        self.drop_before_download > 0.0
            || self.drop_after_download > 0.0
            || self.straggler_prob > 0.0
            || self.upload_failure_prob > 0.0
    }

    /// Check the fault model for inconsistencies (typed error, no panic).
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::ConfigError;
        for (p, field) in [
            (self.drop_before_download, "drop_before_download"),
            (self.drop_after_download, "drop_after_download"),
            (self.straggler_prob, "straggler_prob"),
            (self.upload_failure_prob, "upload_failure_prob"),
        ] {
            if !(0.0..1.0).contains(&p) {
                return Err(ConfigError::OutOfRange { field, value: p as f64, bounds: "[0, 1)" });
            }
        }
        if self.straggler_delay_s.is_nan() || self.straggler_delay_s < 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "straggler_delay_s",
                value: self.straggler_delay_s,
                bounds: "[0, inf)",
            });
        }
        if let Some(d) = self.round_deadline_s {
            if d.is_nan() || d < 0.0 {
                return Err(ConfigError::OutOfRange {
                    field: "round_deadline_s",
                    value: d,
                    bounds: "[0, inf)",
                });
            }
        }
        Ok(())
    }
}

/// How one sampled client's round ended.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClientOutcome {
    /// Unreachable before the broadcast: no bytes either way.
    DroppedBeforeDownload,
    /// Downloaded the global state, then crashed: downlink charged,
    /// no report.
    DroppedAfterDownload,
    /// Trained, but its injected delay exceeded the round deadline and
    /// the server cut it: downlink charged, upload discarded.
    StragglerTimedOut {
        /// Injected delay that broke the deadline (seconds).
        delay_s: f64,
    },
    /// Every upload attempt failed in transit: downlink charged, the
    /// failed attempts count as wasted uplink traffic.
    UploadFailed {
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// Full lifecycle: download → train → upload accepted.
    Completed {
        /// Upload attempts until success (1 = first try).
        attempts: u32,
        /// Injected straggler delay, 0 for punctual clients (seconds).
        delay_s: f64,
    },
}

impl ClientOutcome {
    /// Did the client receive the broadcast (i.e. cost downlink bytes)?
    pub fn downloaded(&self) -> bool {
        !matches!(self, ClientOutcome::DroppedBeforeDownload)
    }

    /// Did the server accept this client's upload?
    pub fn uploaded(&self) -> bool {
        matches!(self, ClientOutcome::Completed { .. })
    }

    /// Upload attempts that failed in transit (wasted uplink transfers).
    pub fn wasted_upload_attempts(&self) -> u32 {
        match self {
            ClientOutcome::UploadFailed { attempts } => *attempts,
            ClientOutcome::Completed { attempts, .. } => attempts - 1,
            _ => 0,
        }
    }
}

/// One client's slot in a round plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientRound {
    /// Client index.
    pub client: usize,
    /// Lifecycle outcome drawn for this round.
    pub outcome: ClientOutcome,
}

/// Per-round communication totals derived from a lifecycle plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundComm {
    /// Downlink bytes actually transmitted (full broadcast set).
    pub down_bytes: u64,
    /// Uplink bytes of accepted reports.
    pub up_bytes: u64,
    /// Uplink bytes of failed upload attempts (transmitted but useless).
    pub wasted_up_bytes: u64,
    /// Clients that received the broadcast.
    pub down_clients: usize,
    /// Clients whose report the server accepted.
    pub up_clients: usize,
}

/// Per-client per-direction wire payload of one round. The bytes are
/// whatever the algorithm actually transmits — full model weights, a
/// rolling sub-model window, or logits on a public pool — so neither
/// direction is assumed to carry "model weights"; the accompanying
/// [`ModelView`] names the content.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WirePayload {
    /// Bytes one client downloads.
    pub down_bytes: u64,
    /// Bytes one client uploads.
    pub up_bytes: u64,
}

impl WirePayload {
    /// Identical payload both ways (the common case: the transmitted
    /// state, whatever its view).
    pub fn symmetric(bytes: u64) -> Self {
        WirePayload { down_bytes: bytes, up_bytes: bytes }
    }
}

/// What part of the server's knowledge one client receives (and
/// reports against) this round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelView {
    /// The full transmitted model state.
    Full,
    /// An index-windowed sub-model of a server net larger than the
    /// client: the client holds the parameter window at `offset` within
    /// a rolling cycle of `cycle` disjoint windows (FedRolex-style
    /// rolling extraction).
    Window {
        /// Window offset within the rolling cycle.
        offset: usize,
        /// Number of disjoint windows covering the server model.
        cycle: usize,
    },
    /// Logits on a shared public pool — no weights cross the wire.
    Logits,
}

impl ModelView {
    /// Short label naming what actually crosses the wire; surfaces in
    /// trace spans and the history's CSV `payload` column.
    pub fn label(&self) -> &'static str {
        match self {
            ModelView::Full => "weights",
            ModelView::Window { .. } => "window",
            ModelView::Logits => "logits",
        }
    }
}

/// What one (client, round) pair transfers: the client index, the view
/// of the server model it receives, and the priced wire payload. The
/// engine asks the algorithm for one `ClientPlan` per sampled client
/// per round, so heterogeneous payloads (sub-model windows of varying
/// size, per-client compression) are billed at their true cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientPlan {
    /// Client index this plan belongs to.
    pub client: usize,
    /// What the payload contains.
    pub view: ModelView,
    /// Bytes this client moves in each direction.
    pub payload: WirePayload,
}

impl ClientPlan {
    /// The uniform adapter: every sampled client gets the same view and
    /// payload — exactly the pre-redesign "one payload per algorithm"
    /// contract. Summing `n` identical payloads equals the old
    /// `payload × n` products, so algorithms migrating through this
    /// constructor keep bit-identical byte accounting.
    pub fn uniform(sampled: &[usize], view: ModelView, payload: WirePayload) -> Vec<ClientPlan> {
        sampled.iter().map(|&client| ClientPlan { client, view, payload }).collect()
    }
}

/// The drawn lifecycle of every sampled client for one round.
#[derive(Clone, Debug)]
pub struct RoundPlan {
    /// Per-client outcomes, in sampled order.
    pub clients: Vec<ClientRound>,
    /// Quorum the round must meet to aggregate.
    pub min_quorum: usize,
}

impl RoundPlan {
    /// Clients whose report the server accepted, in index order (the set
    /// the algorithm aggregates over).
    pub fn reporters(&self) -> Vec<usize> {
        self.clients.iter().filter(|c| c.outcome.uploaded()).map(|c| c.client).collect()
    }

    /// Number of clients that received the broadcast.
    pub fn broadcast_count(&self) -> usize {
        self.clients.iter().filter(|c| c.outcome.downloaded()).count()
    }

    /// Did enough clients report for the server to aggregate?
    pub fn quorum_met(&self) -> bool {
        self.reporters().len() >= self.min_quorum.max(1)
    }

    /// Honest byte accounting of this plan at per-client payloads.
    /// `plans` aligns one-to-one with `self.clients` in sampled order
    /// (the engine validates the algorithm's plans before any billing).
    /// Checked: per-client sums refuse to wrap instead of silently
    /// producing garbage totals at foundation-model payloads.
    pub fn comm(&self, plans: &[ClientPlan]) -> Result<RoundComm, CostError> {
        debug_assert_eq!(plans.len(), self.clients.len(), "plans must align with sampled clients");
        let add = |acc: u64, b: u64| {
            acc.checked_add(b).ok_or(CostError::ByteTotalOverflow { acc, add: b })
        };
        let mut comm = RoundComm::default();
        for (c, p) in self.clients.iter().zip(plans) {
            if c.outcome.downloaded() {
                comm.down_clients += 1;
                comm.down_bytes = add(comm.down_bytes, p.payload.down_bytes)?;
            }
            if c.outcome.uploaded() {
                comm.up_clients += 1;
                comm.up_bytes = add(comm.up_bytes, p.payload.up_bytes)?;
            }
            let attempts = c.outcome.wasted_upload_attempts() as u64;
            if attempts > 0 {
                let waste = p.payload.up_bytes.checked_mul(attempts).ok_or(
                    CostError::UplinkOverflow { count: attempts, bytes: p.payload.up_bytes },
                )?;
                comm.wasted_up_bytes = add(comm.wasted_up_bytes, waste)?;
            }
        }
        Ok(comm)
    }
}

/// Draw one round's lifecycle for the sampled clients.
///
/// RNG draws happen in client order, and each fault mode draws only when
/// its probability is positive — a reliable config consumes no
/// randomness, so enabling one fault never perturbs another's stream
/// less than necessary and the no-fault path is exactly the legacy
/// engine.
pub fn plan_round(sampled: &[usize], faults: &FaultConfig, rng: &mut StdRng) -> RoundPlan {
    let clients = sampled
        .iter()
        .map(|&client| ClientRound { client, outcome: draw_outcome(faults, rng) })
        .collect();
    RoundPlan { clients, min_quorum: faults.min_quorum }
}

fn draw_outcome(faults: &FaultConfig, rng: &mut StdRng) -> ClientOutcome {
    if faults.drop_before_download > 0.0 && rng.gen::<f32>() < faults.drop_before_download {
        return ClientOutcome::DroppedBeforeDownload;
    }
    if faults.drop_after_download > 0.0 && rng.gen::<f32>() < faults.drop_after_download {
        return ClientOutcome::DroppedAfterDownload;
    }
    let mut delay_s = 0.0f64;
    if faults.straggler_prob > 0.0 && rng.gen::<f32>() < faults.straggler_prob {
        // Drawn directly in f64: the old `rng.gen::<f32>() as f64`
        // quantized the uniform variate to ~2^24 lattice points, so
        // delays clustered and deadline comparisons near the cut could
        // only ever see f32-representable delays.
        delay_s = rng.gen::<f64>() * faults.straggler_delay_s;
        if let Some(deadline) = faults.round_deadline_s {
            if delay_s > deadline {
                return ClientOutcome::StragglerTimedOut { delay_s };
            }
        }
    }
    let max_attempts = 1 + faults.upload_retries;
    let mut attempts = 0u32;
    while attempts < max_attempts {
        attempts += 1;
        let failed = faults.upload_failure_prob > 0.0
            && rng.gen::<f32>() < faults.upload_failure_prob;
        if !failed {
            return ClientOutcome::Completed { attempts, delay_s };
        }
    }
    ClientOutcome::UploadFailed { attempts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_tensor::rng::seeded_rng;

    fn plan_with(faults: &FaultConfig, seed: u64, n: usize) -> RoundPlan {
        let sampled: Vec<usize> = (0..n).collect();
        let mut rng = seeded_rng(seed);
        plan_round(&sampled, faults, &mut rng)
    }

    fn uniform_for(plan: &RoundPlan, payload: WirePayload) -> Vec<ClientPlan> {
        let ids: Vec<usize> = plan.clients.iter().map(|c| c.client).collect();
        ClientPlan::uniform(&ids, ModelView::Full, payload)
    }

    #[test]
    fn reliable_plan_completes_everyone_without_randomness() {
        let plan = plan_with(&FaultConfig::reliable(), 7, 10);
        assert!(plan
            .clients
            .iter()
            .all(|c| c.outcome == ClientOutcome::Completed { attempts: 1, delay_s: 0.0 }));
        assert_eq!(plan.reporters(), (0..10).collect::<Vec<_>>());
        assert!(plan.quorum_met());
        // No fault probability fires → no RNG draws: the stream is
        // untouched and two plans from one RNG agree.
        let mut rng = seeded_rng(3);
        let before: f32 = rng.gen();
        let mut rng2 = seeded_rng(3);
        let _ = plan_round(&[0, 1, 2], &FaultConfig::reliable(), &mut rng2);
        assert_eq!(before, rng2.gen::<f32>(), "reliable plan must not consume randomness");
    }

    #[test]
    fn drop_before_download_costs_nothing() {
        let faults = FaultConfig { drop_before_download: 0.99, ..Default::default() };
        let plan = plan_with(&faults, 11, 50);
        let comm = plan.comm(&uniform_for(&plan, WirePayload::symmetric(100))).unwrap();
        assert!(plan.broadcast_count() < 50);
        assert_eq!(comm.down_bytes, plan.broadcast_count() as u64 * 100);
        assert_eq!(comm.up_bytes, plan.reporters().len() as u64 * 100);
    }

    #[test]
    fn drop_after_download_charges_downlink_only() {
        let faults = FaultConfig { drop_after_download: 0.5, ..Default::default() };
        let plan = plan_with(&faults, 13, 40);
        let comm = plan.comm(&uniform_for(&plan, WirePayload::symmetric(10))).unwrap();
        // Every client received the broadcast...
        assert_eq!(comm.down_clients, 40);
        assert_eq!(comm.down_bytes, 400);
        // ...but only survivors are charged uplink.
        assert!(comm.up_clients < 40 && comm.up_clients > 0);
        assert_eq!(comm.up_bytes, comm.up_clients as u64 * 10);
        assert!(comm.down_bytes > comm.up_bytes);
    }

    #[test]
    fn straggler_past_deadline_is_cut() {
        let faults = FaultConfig {
            straggler_prob: 0.9,
            straggler_delay_s: 100.0,
            round_deadline_s: Some(10.0),
            ..Default::default()
        };
        let plan = plan_with(&faults, 17, 60);
        let cut: Vec<_> = plan
            .clients
            .iter()
            .filter_map(|c| match c.outcome {
                ClientOutcome::StragglerTimedOut { delay_s } => Some(delay_s),
                _ => None,
            })
            .collect();
        assert!(!cut.is_empty(), "with 90% stragglers up to 100s, some break a 10s deadline");
        assert!(cut.iter().all(|&d| d > 10.0));
        // Cut stragglers still cost downlink.
        let comm = plan.comm(&uniform_for(&plan, WirePayload::symmetric(1))).unwrap();
        assert_eq!(comm.down_clients, 60);
        assert_eq!(comm.up_clients, plan.reporters().len());
    }

    #[test]
    fn upload_retries_bound_attempts_and_count_waste() {
        let faults = FaultConfig {
            upload_failure_prob: 0.6,
            upload_retries: 2,
            ..Default::default()
        };
        let plan = plan_with(&faults, 19, 200);
        let mut saw_retry = false;
        let mut saw_exhausted = false;
        for c in &plan.clients {
            match c.outcome {
                ClientOutcome::Completed { attempts, .. } => {
                    assert!((1..=3).contains(&attempts));
                    saw_retry |= attempts > 1;
                }
                ClientOutcome::UploadFailed { attempts } => {
                    assert_eq!(attempts, 3, "gives up after 1 + retries attempts");
                    saw_exhausted = true;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(saw_retry && saw_exhausted);
        let comm = plan.comm(&uniform_for(&plan, WirePayload::symmetric(7))).unwrap();
        let expected_waste: u64 = plan
            .clients
            .iter()
            .map(|c| c.outcome.wasted_upload_attempts() as u64 * 7)
            .sum();
        assert_eq!(comm.wasted_up_bytes, expected_waste);
        assert!(comm.wasted_up_bytes > 0);
    }

    #[test]
    fn straggler_delays_are_sampled_in_full_f64_precision() {
        // Regression: delays used to be drawn as `rng.gen::<f32>() as
        // f64`, collapsing the uniform variate onto the f32 lattice. A
        // full-precision draw must produce delays that are *not* exactly
        // representable as f32 once scaled.
        let faults = FaultConfig {
            straggler_prob: 1.0 - f32::EPSILON, // always a straggler, still draws
            straggler_delay_s: 1.0,             // delay == the raw uniform variate
            ..Default::default()
        };
        let plan = plan_with(&faults, 37, 256);
        let delays: Vec<f64> = plan
            .clients
            .iter()
            .filter_map(|c| match c.outcome {
                ClientOutcome::Completed { delay_s, .. } => Some(delay_s),
                ClientOutcome::StragglerTimedOut { delay_s } => Some(delay_s),
                _ => None,
            })
            .collect();
        assert_eq!(delays.len(), 256);
        let off_lattice = delays.iter().filter(|&&d| (d as f32) as f64 != d).count();
        assert!(
            off_lattice > 200,
            "f64 draws should almost never land on the f32 lattice, got {off_lattice}/256"
        );
    }

    #[test]
    fn deadline_comparisons_match_the_drawn_delay_exactly() {
        // Regression companion to the f64 fix: for seeded runs, the
        // cut-vs-survive classification must be exactly `delay_s >
        // deadline` on the delay actually recorded in the outcome — no
        // hidden re-rounding between the draw and the comparison.
        let faults = FaultConfig {
            straggler_prob: 0.8,
            straggler_delay_s: 40.0,
            round_deadline_s: Some(20.0),
            ..Default::default()
        };
        for seed in [41u64, 42, 43] {
            let plan = plan_with(&faults, seed, 128);
            for c in &plan.clients {
                match c.outcome {
                    ClientOutcome::StragglerTimedOut { delay_s } => {
                        assert!(delay_s > 20.0, "cut straggler below deadline: {delay_s}")
                    }
                    ClientOutcome::Completed { delay_s, .. } => {
                        assert!(delay_s <= 20.0, "surviving delay past deadline: {delay_s}")
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
    }

    #[test]
    fn quorum_detection() {
        let faults = FaultConfig {
            drop_before_download: 0.97,
            min_quorum: 3,
            ..Default::default()
        };
        let plan = plan_with(&faults, 23, 4);
        assert!(!plan.quorum_met(), "3-of-4 quorum under 97% dropout should fail");
        let reliable = plan_with(&FaultConfig { min_quorum: 3, ..Default::default() }, 23, 4);
        assert!(reliable.quorum_met());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let faults = FaultConfig {
            drop_before_download: 0.1,
            drop_after_download: 0.2,
            straggler_prob: 0.3,
            straggler_delay_s: 50.0,
            round_deadline_s: Some(20.0),
            upload_failure_prob: 0.3,
            ..Default::default()
        };
        let a = plan_with(&faults, 31, 64);
        let b = plan_with(&faults, 31, 64);
        assert_eq!(a.clients, b.clients);
        let c = plan_with(&faults, 32, 64);
        assert_ne!(a.clients, c.clients, "different seed draws a different plan");
    }

    #[test]
    fn per_client_payloads_bill_each_client_at_its_own_bytes() {
        // Three clients with genuinely different payloads (a rolling
        // window of varying width): the totals are per-client sums, not
        // a payload × n product.
        let plan = plan_with(&FaultConfig::reliable(), 3, 3);
        let plans: Vec<ClientPlan> = [(0usize, 100u64), (1, 70), (2, 30)]
            .iter()
            .map(|&(client, b)| ClientPlan {
                client,
                view: ModelView::Window { offset: client, cycle: 3 },
                payload: WirePayload::symmetric(b),
            })
            .collect();
        let comm = plan.comm(&plans).unwrap();
        assert_eq!(comm.down_bytes, 200);
        assert_eq!(comm.up_bytes, 200);
        assert_eq!((comm.down_clients, comm.up_clients), (3, 3));
    }

    #[test]
    fn uniform_plans_match_the_old_multiplication_exactly() {
        let faults = FaultConfig {
            drop_after_download: 0.3,
            upload_failure_prob: 0.4,
            upload_retries: 2,
            ..Default::default()
        };
        let plan = plan_with(&faults, 29, 80);
        let payload = WirePayload { down_bytes: 1013, up_bytes: 307 };
        let comm = plan.comm(&uniform_for(&plan, payload)).unwrap();
        let wasted: u64 =
            plan.clients.iter().map(|c| c.outcome.wasted_upload_attempts() as u64).sum();
        assert_eq!(comm.down_bytes, plan.broadcast_count() as u64 * 1013);
        assert_eq!(comm.up_bytes, plan.reporters().len() as u64 * 307);
        assert_eq!(comm.wasted_up_bytes, wasted * 307);
    }

    #[test]
    fn per_client_comm_refuses_overflow_with_a_typed_error() {
        let plan = plan_with(&FaultConfig::reliable(), 7, 2);
        let plans = uniform_for(&plan, WirePayload::symmetric(u64::MAX / 2 + 1));
        assert!(matches!(plan.comm(&plans), Err(CostError::ByteTotalOverflow { .. })));
    }

    #[test]
    fn model_views_label_what_crosses_the_wire() {
        assert_eq!(ModelView::Full.label(), "weights");
        assert_eq!(ModelView::Window { offset: 2, cycle: 5 }.label(), "window");
        assert_eq!(ModelView::Logits.label(), "logits");
    }

    #[test]
    fn validate_rejects_probability_of_one() {
        let err = FaultConfig { drop_after_download: 1.0, ..Default::default() }
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("drop_after_download"), "bad message: {err}");
        FaultConfig::reliable().validate().unwrap();
    }
}
