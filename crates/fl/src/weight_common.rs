//! Shared plumbing for the weight-sharing baselines (FedAvg, FedProx,
//! FedNova, SCAFFOLD): a global model holder with evaluation, and the
//! parallel client-update fan-out.

use crate::context::FlContext;
use crate::local::{local_train, LocalCfg, LocalOutcome};
use kemf_nn::layer::Layer;
use kemf_nn::model::Model;
use kemf_nn::models::ModelSpec;
use kemf_nn::serialize::ModelState;
use kemf_tensor::rng::child_seed;
use rayon::prelude::*;

/// Server-side global model shared by the weight baselines.
pub struct GlobalModel {
    /// Architecture every client trains.
    pub spec: ModelSpec,
    /// Current global transmitted state.
    pub state: ModelState,
    eval_model: Model,
}

impl GlobalModel {
    /// Initialize from a spec (the server's round-0 model).
    pub fn new(spec: ModelSpec) -> Self {
        let eval_model = Model::new(spec);
        let state = eval_model.state();
        GlobalModel { spec, state, eval_model }
    }

    /// Transmitted payload size per direction, in bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.state.bytes() as u64
    }

    /// Test accuracy of the current global state.
    pub fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.eval_model.set_state(&self.state);
        self.eval_model
            .evaluate(&ctx.test.images, &ctx.test.labels, ctx.cfg.eval_batch)
    }
}

/// Owned per-client gradient hook built by `hook_for` in
/// [`fan_out_clients`] (boxed so it can cross the parallel fan-out).
pub type BoxedGradHook = Box<dyn Fn(&mut dyn Layer) + Send + Sync>;

/// One client's round result.
pub struct ClientResult {
    /// Client index.
    pub client: usize,
    /// Post-training transmitted state.
    pub state: ModelState,
    /// Local sample count (FedAvg weighting).
    pub n_samples: usize,
    /// Steps/loss bookkeeping.
    pub outcome: LocalOutcome,
}

/// Run local training on every sampled client in parallel, starting each
/// from the global state. `hook_for` builds the per-client gradient hook
/// (None for FedAvg/FedNova).
pub fn fan_out_clients(
    global: &ModelState,
    spec: ModelSpec,
    round: usize,
    sampled: &[usize],
    ctx: &FlContext,
    local: &LocalCfg,
    hook_for: &(dyn Fn(usize) -> Option<BoxedGradHook> + Sync),
) -> Vec<ClientResult> {
    sampled
        .par_iter()
        .map(|&k| {
            let mut model = Model::new(spec);
            model.set_state(global);
            let hook = hook_for(k);
            let seed = child_seed(ctx.cfg.seed, (round as u64) << 20 | k as u64);
            let outcome = local_train(
                &mut model,
                &ctx.client_data[k],
                local,
                seed,
                hook.as_deref().map(|h| h as &dyn Fn(&mut dyn Layer)),
            );
            ClientResult { client: k, state: model.state(), n_samples: ctx.client_data[k].len(), outcome }
        })
        .collect()
}

/// Mean local loss across client results.
pub fn mean_loss(results: &[ClientResult]) -> f32 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.outcome.mean_loss).sum::<f32>() / results.len() as f32
}
