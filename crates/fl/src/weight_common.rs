//! Shared plumbing for the weight-sharing baselines (FedAvg, FedProx,
//! FedNova, SCAFFOLD): a global model holder with evaluation, the
//! parallel client-update fan-out, and streaming weighted averages that
//! let a round fold results in as they arrive instead of holding every
//! client state until aggregation.

use crate::config::ConfigError;
use crate::context::FlContext;
use crate::engine::{EngineError, RoundOutcome};
use crate::local::{local_train, LocalCfg, LocalOutcome};
use crate::scheduler::{PreparedUpdate, UpdatePayload};
use crate::trace::{Phase, RoundScope};
use kemf_nn::layer::Layer;
use kemf_nn::model::Model;
use kemf_nn::models::ModelSpec;
use kemf_nn::serialize::{ModelState, Weights};
use kemf_tensor::rng::child_seed;
use rayon::prelude::*;

/// Server-side global model shared by the weight baselines.
pub struct GlobalModel {
    /// Architecture every client trains.
    pub spec: ModelSpec,
    /// Current global transmitted state.
    pub state: ModelState,
    eval_model: Model,
}

impl GlobalModel {
    /// Initialize from a spec (the server's round-0 model).
    pub fn new(spec: ModelSpec) -> Self {
        let eval_model = Model::new(spec);
        let state = eval_model.state();
        GlobalModel { spec, state, eval_model }
    }

    /// Transmitted payload size per direction, in bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.state.bytes() as u64
    }

    /// Test accuracy of the current global state.
    pub fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.eval_model.set_state(&self.state);
        self.eval_model
            .evaluate(&ctx.test.images, &ctx.test.labels, ctx.cfg.eval_batch)
    }
}

/// Owned per-client gradient hook built by `hook_for` in
/// [`fan_out_clients`] (boxed so it can cross the parallel fan-out).
pub type BoxedGradHook = Box<dyn Fn(&mut dyn Layer) + Send + Sync>;

/// One client's round result.
pub struct ClientResult {
    /// Client index.
    pub client: usize,
    /// Post-training transmitted state.
    pub state: ModelState,
    /// Local sample count (FedAvg weighting).
    pub n_samples: usize,
    /// Steps/loss bookkeeping.
    pub outcome: LocalOutcome,
}

/// Run local training on every sampled client in parallel, starting each
/// from the global state. `hook_for` builds the per-client gradient hook
/// (None for FedAvg/FedNova).
pub fn fan_out_clients(
    global: &ModelState,
    spec: ModelSpec,
    round: usize,
    sampled: &[usize],
    ctx: &FlContext,
    local: &LocalCfg,
    hook_for: &(dyn Fn(usize) -> Option<BoxedGradHook> + Sync),
) -> Vec<ClientResult> {
    sampled
        .par_iter()
        .map(|&k| {
            let mut model = Model::new(spec);
            model.set_state(global);
            let hook = hook_for(k);
            let seed = child_seed(ctx.cfg.seed, (round as u64) << 20 | k as u64);
            let shard = ctx.client_shard(k);
            let outcome = local_train(
                &mut model,
                &shard,
                local,
                seed,
                hook.as_deref().map(|h| h as &dyn Fn(&mut dyn Layer)),
            );
            ClientResult { client: k, state: model.state(), n_samples: shard.len(), outcome }
        })
        .collect()
}

/// Shared `FedAlgorithm::train_cohort` body for algorithms whose update
/// payload is the plain post-training model state (FedAvg, FedProx,
/// FedDF): fan the cohort out exactly like the synchronous round's
/// local-update phase — same chunking, same seeds, same counters — but
/// return the results as [`PreparedUpdate`]s instead of folding them.
pub fn train_cohort_states(
    global: &GlobalModel,
    wave: usize,
    sampled: &[usize],
    ctx: &FlContext,
    local: &LocalCfg,
    hook_for: &(dyn Fn(usize) -> Option<BoxedGradHook> + Sync),
    scope: &mut RoundScope<'_>,
) -> Vec<PreparedUpdate> {
    if sampled.is_empty() {
        return Vec::new();
    }
    let chunk = ctx.cfg.cohort_chunk(sampled.len());
    let mut out = Vec::with_capacity(sampled.len());
    scope.phase(Phase::LocalUpdate, |c| {
        for batch in sampled.chunks(chunk) {
            let results =
                fan_out_clients(&global.state, global.spec, wave, batch, ctx, local, hook_for);
            c.clients += results.len();
            c.steps += results.iter().map(|r| r.outcome.steps as u64).sum::<u64>();
            c.batches = c.steps;
            for r in results {
                out.push(PreparedUpdate {
                    client: r.client,
                    n_samples: r.n_samples,
                    steps: r.outcome.steps,
                    loss: r.outcome.mean_loss,
                    payload: UpdatePayload::State(r.state),
                    commit: None,
                });
            }
        }
    });
    out
}

/// Shared `FedAlgorithm::fuse` body for the sample-count-weighted state
/// average (FedAvg, FedProx): fold the buffered updates at coefficient
/// `weight × n_samples`. With every staleness weight at `1.0` the
/// coefficients, their total, and the fold order all equal the
/// synchronous round's — the fused state is bit-identical.
pub fn fuse_state_average(
    algorithm: &str,
    global: &mut GlobalModel,
    updates: Vec<(PreparedUpdate, f32)>,
    scope: &mut RoundScope<'_>,
) -> Result<RoundOutcome, EngineError> {
    if updates.is_empty() {
        return Ok(RoundOutcome { train_loss: f32::NAN });
    }
    let total: f32 = updates.iter().map(|(u, w)| w * u.n_samples as f32).sum();
    let mut avg = StateAverage::new(&global.state, total);
    let mut loss_sum = 0.0f32;
    let reported = updates.len();
    for (u, w) in &updates {
        let UpdatePayload::State(state) = &u.payload else {
            return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                algorithm: algorithm.into(),
                reason: format!("client {}: expected a model-state update payload", u.client),
            }));
        };
        avg.add(state, w * u.n_samples as f32);
        loss_sum += u.loss;
    }
    scope.phase(Phase::Fusion, |c| {
        c.clients = reported;
        global.state = avg.finish();
    });
    Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
}

/// Mean local loss across client results.
pub fn mean_loss(results: &[ClientResult]) -> f32 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.outcome.mean_loss).sum::<f32>() / results.len() as f32
}

/// Streaming weighted average over [`Weights`] snapshots.
///
/// Bit-identical to [`Weights::weighted_average`] when fed the same
/// snapshots in the same order with the same coefficient total: the
/// accumulation is the identical `acc += (coeff / total) * value` inner
/// loop, just spread over `add` calls instead of one pass. This is what
/// lets the cohort stream through local update in bounded batches
/// without perturbing a single bit of the aggregate.
pub struct WeightsAverage {
    total: f32,
    acc: Weights,
}

impl WeightsAverage {
    /// Start an average with the layout of `layout` and a precomputed
    /// coefficient total (must be positive; callers compute it over the
    /// full cohort before streaming).
    pub fn new(layout: &Weights, total: f32) -> Self {
        assert!(total > 0.0, "coefficients must sum to a positive value");
        WeightsAverage { total, acc: layout.zeros_like() }
    }

    /// Fold one snapshot in with coefficient `coeff`.
    pub fn add(&mut self, snap: &Weights, coeff: f32) {
        assert_eq!(snap.values.len(), self.acc.values.len(), "layout mismatch");
        let w = coeff / self.total;
        for (o, &v) in self.acc.values.iter_mut().zip(snap.values.iter()) {
            *o += w * v;
        }
    }

    /// The accumulated average.
    pub fn finish(self) -> Weights {
        self.acc
    }
}

/// Streaming weighted average over full [`ModelState`]s (parameters and
/// buffers), matching [`ModelState::weighted_average`] bit-for-bit under
/// the same feeding order and coefficient total.
pub struct StateAverage {
    params: WeightsAverage,
    buffers: WeightsAverage,
}

impl StateAverage {
    /// Start an average with the layout of `layout` and a precomputed
    /// positive coefficient total.
    pub fn new(layout: &ModelState, total: f32) -> Self {
        StateAverage {
            params: WeightsAverage::new(&layout.params, total),
            buffers: WeightsAverage::new(&layout.buffers, total),
        }
    }

    /// Fold one client state in with coefficient `coeff`.
    pub fn add(&mut self, state: &ModelState, coeff: f32) {
        self.params.add(&state.params, coeff);
        self.buffers.add(&state.buffers, coeff);
    }

    /// The accumulated average.
    pub fn finish(self) -> ModelState {
        ModelState { params: self.params.finish(), buffers: self.buffers.finish() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_nn::models::Arch;

    #[test]
    fn streaming_average_is_bit_identical_to_batch_average() {
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 4, 3);
        let states: Vec<ModelState> =
            (0u64..5).map(|s| Model::new(ModelSpec { seed: s, ..spec }).state()).collect();
        let coeffs = [3.0f32, 1.0, 7.0, 2.0, 5.0];
        let batch = ModelState::weighted_average(&states, &coeffs);
        let total: f32 = coeffs.iter().sum();
        let mut stream = StateAverage::new(&states[0], total);
        for (s, &c) in states.iter().zip(coeffs.iter()) {
            stream.add(s, c);
        }
        let streamed = stream.finish();
        // Bit equality, not approximate: f32 addition order is identical.
        assert_eq!(
            streamed.params.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            batch.params.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(
            streamed.buffers.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            batch.buffers.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }
}
