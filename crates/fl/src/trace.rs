//! Round-lifecycle observability: phase-timed spans with pluggable sinks.
//!
//! The engine drives an [`EventSink`] through every phase of every
//! communication round — `sample → broadcast → local_update → fusion →
//! upload → eval`, closed by a whole-`round` span — emitting one [`Span`]
//! per phase with wall-clock timing plus counters: SGD steps, batch
//! visits, GEMM FLOPs (from the [`kemf_tensor::flops`] accounting hook),
//! per-phase bytes (reusing the lifecycle plan's honest
//! [`crate::lifecycle::RoundComm`] accounting), and quorum outcomes.
//!
//! Two sinks ship with the engine:
//!
//! * [`NoopSink`] — the default. Disabled sinks short-circuit every
//!   timing call ([`RoundScope::phase`] runs the closure and nothing
//!   else), so untraced runs pay one branch per phase and produce
//!   bit-identical [`crate::metrics::History`] output.
//! * [`TraceSink`] — records every span into a [`RunTrace`], which
//!   exports JSONL ([`RunTrace::to_jsonl`]) and a human-readable
//!   per-phase summary table ([`RunTrace::summary_table`]).
//!
//! **Determinism.** For a fixed seed the span *structure* — phases,
//! rounds, clients, steps, batches, bytes, quorum flags — is
//! bit-reproducible; [`RunTrace::canonical_jsonl`] serializes exactly
//! that subset (wall-clock and FLOP fields zeroed) for golden tests.
//! Wall times vary run to run by nature; FLOP deltas are exact for a
//! lone engine but, being read from a process-global counter, can be
//! inflated by concurrent engines in the same process (parallel tests),
//! so they are excluded from the canonical form too.
//!
//! **File ordering.** Spans are recorded in execution order: `sample`,
//! `broadcast`, then the algorithm's interior `local_update` and
//! `fusion` spans, then `upload`, `eval`, and the enclosing `round`
//! span. The `upload` span appears after `fusion` because its byte
//! accounting is derived from the round's pre-drawn lifecycle plan, not
//! from a simulated clock; semantically uploads complete before server
//! fusion begins.

use serde::{DeError, Deserialize, Serialize, Value};
use std::time::Instant;

/// A round-lifecycle phase. One span is emitted per phase per round
/// (quorum-aborted rounds skip `local_update`/`fusion`: the algorithm
/// never runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Client sampling + lifecycle fault-plan draw.
    Sample,
    /// Server → client broadcast of the transmitted state (simulated;
    /// carries the downlink byte accounting).
    Broadcast,
    /// The client-side local-update fan-out (DML for FedKEMF, local SGD
    /// for the weight baselines). Real compute: nonzero wall and FLOPs.
    LocalUpdate,
    /// Async-mode buffer drain: completed client updates are popped from
    /// the simulated event queue into the aggregation buffer, evicting
    /// updates staler than the cap. Carries the staleness counters.
    /// Never emitted by synchronous rounds.
    Buffer,
    /// Server-side fusion: ensemble distillation, weight averaging, or
    /// consensus aggregation. Real compute: nonzero wall and FLOPs.
    Fusion,
    /// Client → server reports (simulated; carries accepted + wasted
    /// uplink byte accounting).
    Upload,
    /// Global-model evaluation on the held-out test set.
    Eval,
    /// The enclosing whole-round span; its wall time bounds the sum of
    /// the phase spans, and it carries the round's quorum outcome.
    Round,
}

impl Phase {
    /// All phases of a full (quorum-met) round, in emission order
    /// (`buffer` appears only in async-mode rounds).
    pub const ALL: [Phase; 8] = [
        Phase::Sample,
        Phase::Broadcast,
        Phase::LocalUpdate,
        Phase::Buffer,
        Phase::Fusion,
        Phase::Upload,
        Phase::Eval,
        Phase::Round,
    ];

    /// The snake_case name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Sample => "sample",
            Phase::Broadcast => "broadcast",
            Phase::LocalUpdate => "local_update",
            Phase::Buffer => "buffer",
            Phase::Fusion => "fusion",
            Phase::Upload => "upload",
            Phase::Eval => "eval",
            Phase::Round => "round",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl Serialize for Phase {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for Phase {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Phase::from_name(s)
                .ok_or_else(|| DeError::custom(&format!("unknown phase `{s}`"))),
            _ => Err(DeError::custom("expected phase name string")),
        }
    }
}

/// Counters attached to a span. Units: `steps` are optimizer steps
/// (one synchronized DML step updates both networks and counts once),
/// `batches` are mini-batch visits, `flops` are GEMM multiply-add FLOPs
/// (2·m·n·k per product), byte fields follow the lifecycle accounting
/// (`down` = full broadcast set, `up` = accepted reports, `wasted_up` =
/// failed upload attempts).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Counters {
    /// Clients participating in the phase (sampled / broadcast-reached /
    /// trained / accepted, per phase).
    pub clients: usize,
    /// Optimizer steps taken in the phase.
    pub steps: u64,
    /// Mini-batch visits in the phase.
    pub batches: u64,
    /// GEMM FLOPs spent in the phase (filled automatically by
    /// [`RoundScope::phase`] from the [`kemf_tensor::flops`] counter).
    pub flops: u64,
    /// Downlink bytes charged in the phase.
    pub down_bytes: u64,
    /// Accepted uplink bytes charged in the phase.
    pub up_bytes: u64,
    /// Wasted uplink bytes (failed upload attempts) in the phase.
    pub wasted_up_bytes: u64,
    /// Async mode: updates folded this aggregation whose dispatch wave
    /// is older than the aggregating cycle (staleness > 0). Always zero
    /// in synchronous rounds.
    pub stale_updates: u64,
    /// Async mode: buffered updates evicted for exceeding the staleness
    /// cap (their uplink bytes count as wasted). Always zero in
    /// synchronous rounds.
    pub evicted_updates: u64,
    /// Whether the round met its reporting quorum (meaningful on the
    /// `round` span; `true` elsewhere).
    pub quorum_met: bool,
    /// What the byte counters price on the wire — `"weights"`,
    /// `"window"`, `"logits"`, or `"mixed"` (clients of this round got
    /// different view kinds). `None` on spans that carry no payload
    /// bytes and on traces recorded before per-client plans; the JSONL
    /// field is omitted rather than null so old traces stay
    /// byte-identical.
    pub payload_label: Option<&'static str>,
}

impl Counters {
    fn quorum_default() -> Self {
        Counters { quorum_met: true, ..Default::default() }
    }
}

/// One timed phase of one round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// Round index (0-based).
    pub round: usize,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Wall-clock duration in seconds.
    pub wall_s: f64,
    /// Phase counters (flattened into the JSONL object).
    pub counters: Counters,
}

impl Serialize for Span {
    fn to_value(&self) -> Value {
        // Counters are flattened into the span object so each JSONL line
        // is one flat record.
        let c = &self.counters;
        let mut entries = vec![
            ("round".to_string(), self.round.to_value()),
            ("phase".to_string(), self.phase.to_value()),
            ("wall_s".to_string(), self.wall_s.to_value()),
            ("clients".to_string(), c.clients.to_value()),
            ("steps".to_string(), c.steps.to_value()),
            ("batches".to_string(), c.batches.to_value()),
            ("flops".to_string(), c.flops.to_value()),
            ("down_bytes".to_string(), c.down_bytes.to_value()),
            ("up_bytes".to_string(), c.up_bytes.to_value()),
            ("wasted_up_bytes".to_string(), c.wasted_up_bytes.to_value()),
            ("stale_updates".to_string(), c.stale_updates.to_value()),
            ("evicted_updates".to_string(), c.evicted_updates.to_value()),
            ("quorum_met".to_string(), c.quorum_met.to_value()),
        ];
        if let Some(label) = c.payload_label {
            entries.push(("payload".to_string(), Value::Str(label.to_string())));
        }
        Value::Map(entries)
    }
}

impl Deserialize for Span {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::custom("expected map for Span"))?;
        let field = |key: &str| serde::get_field(m, key);
        // The staleness counters postdate the format: traces recorded
        // before async rounds existed simply omit them, so they default
        // to zero on read instead of failing the whole line.
        let opt_u64 = |key: &str| -> Result<u64, DeError> {
            match m.iter().find(|(k, _)| k == key) {
                Some((_, v)) => u64::from_value(v),
                None => Ok(0),
            }
        };
        // The payload label also postdates the format (absent → None).
        // It parses back to the same interned label the writer used, so
        // round-tripping a trace is still exact equality.
        let payload_label = match m.iter().find(|(k, _)| k == "payload") {
            None => None,
            Some((_, v)) => match String::from_value(v)?.as_str() {
                "weights" => Some("weights"),
                "window" => Some("window"),
                "logits" => Some("logits"),
                "mixed" => Some("mixed"),
                other => {
                    return Err(DeError::custom(&format!("unknown payload label `{other}`")))
                }
            },
        };
        Ok(Span {
            round: usize::from_value(field("round")?)?,
            phase: Phase::from_value(field("phase")?)?,
            wall_s: f64::from_value(field("wall_s")?)?,
            counters: Counters {
                clients: usize::from_value(field("clients")?)?,
                steps: u64::from_value(field("steps")?)?,
                batches: u64::from_value(field("batches")?)?,
                flops: u64::from_value(field("flops")?)?,
                down_bytes: u64::from_value(field("down_bytes")?)?,
                up_bytes: u64::from_value(field("up_bytes")?)?,
                wasted_up_bytes: u64::from_value(field("wasted_up_bytes")?)?,
                stale_updates: opt_u64("stale_updates")?,
                evicted_updates: opt_u64("evicted_updates")?,
                quorum_met: bool::from_value(field("quorum_met")?)?,
                payload_label,
            },
        })
    }
}

/// Receives spans as the engine emits them. Implementations must be
/// cheap to query: the engine checks [`EventSink::enabled`] once per
/// phase and skips all timing work when it returns `false`.
pub trait EventSink {
    /// Should the engine pay for timing and counter collection?
    fn enabled(&self) -> bool;

    /// Record one completed span.
    fn record(&mut self, span: Span);
}

/// The zero-cost default: records nothing, disables all timing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _span: Span) {}
}

/// Records every span into a [`RunTrace`].
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    trace: RunTrace,
}

impl TraceSink {
    /// Empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spans recorded so far.
    pub fn spans(&self) -> &[Span] {
        &self.trace.spans
    }

    /// Consume the sink, yielding the recorded trace.
    pub fn into_trace(self) -> RunTrace {
        self.trace
    }
}

impl EventSink for TraceSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, span: Span) {
        self.trace.spans.push(span);
    }
}

/// The engine's per-round handle into the active sink. Created by the
/// engine for each round and threaded through
/// [`crate::engine::FedAlgorithm::round`], so algorithms can time their
/// interior phases (the local fan-out, server fusion) without knowing
/// which sink — if any — is listening.
pub struct RoundScope<'a> {
    sink: &'a mut dyn EventSink,
    round: usize,
    enabled: bool,
}

impl<'a> RoundScope<'a> {
    /// Scope for one round over a sink.
    pub fn new(sink: &'a mut dyn EventSink, round: usize) -> Self {
        let enabled = sink.enabled();
        RoundScope { sink, round, enabled }
    }

    /// The round this scope instruments.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Is a recording sink attached? Lets callers skip counter
    /// bookkeeping that exists only to be recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Run `f` as one phase: times it, measures its GEMM FLOP delta, and
    /// records a span carrying whatever counters `f` filled in. With a
    /// disabled sink this is exactly `f(&mut scratch)` — no clock reads,
    /// no atomics, no allocation.
    pub fn phase<T>(&mut self, phase: Phase, f: impl FnOnce(&mut Counters) -> T) -> T {
        let mut counters = Counters::quorum_default();
        if !self.enabled {
            return f(&mut counters);
        }
        let flops_before = kemf_tensor::flops::total();
        let t0 = Instant::now();
        let out = f(&mut counters);
        let wall_s = t0.elapsed().as_secs_f64();
        counters.flops += kemf_tensor::flops::total() - flops_before;
        self.sink.record(Span { round: self.round, phase, wall_s, counters });
        out
    }

    /// Record a pre-timed span (the engine uses this for the enclosing
    /// `round` span, whose interval brackets nested `phase` calls).
    pub fn record_raw(&mut self, phase: Phase, wall_s: f64, counters: Counters) {
        if self.enabled {
            self.sink.record(Span { round: self.round, phase, wall_s, counters });
        }
    }
}

/// A full recorded run: every span of every round, in emission order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Recorded spans.
    pub spans: Vec<Span>,
}

impl RunTrace {
    /// Spans belonging to one round, in emission order.
    pub fn round_spans(&self, round: usize) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.round == round).collect()
    }

    /// Number of distinct rounds recorded.
    pub fn rounds(&self) -> usize {
        self.spans.iter().map(|s| s.round + 1).max().unwrap_or(0)
    }

    /// One JSON object per line, one line per span — the export format
    /// plotting pipelines and the CI smoke test consume.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&serde_json::to_string(span).expect("span serializes"));
            out.push('\n');
        }
        out
    }

    /// JSONL with the nondeterministic fields (`wall_s`, and `flops`,
    /// which a process-global counter can inflate across concurrent
    /// engines) zeroed. Two same-seed runs produce identical canonical
    /// JSONL — the golden-test form.
    pub fn canonical_jsonl(&self) -> String {
        let canon = RunTrace {
            spans: self
                .spans
                .iter()
                .map(|s| {
                    let mut c = *s;
                    c.wall_s = 0.0;
                    c.counters.flops = 0;
                    c
                })
                .collect(),
        };
        canon.to_jsonl()
    }

    /// Parse a trace back from [`RunTrace::to_jsonl`] output. Blank
    /// lines are ignored; any malformed line is an error.
    pub fn from_jsonl(s: &str) -> Result<RunTrace, serde_json::Error> {
        let mut spans = Vec::new();
        for line in s.lines() {
            if line.trim().is_empty() {
                continue;
            }
            spans.push(serde_json::from_str(line)?);
        }
        Ok(RunTrace { spans })
    }

    /// Aggregate the trace per phase (summed over rounds).
    pub fn phase_summary(&self) -> Vec<PhaseSummary> {
        Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let mut sum = PhaseSummary { phase, ..Default::default() };
                for s in self.spans.iter().filter(|s| s.phase == phase) {
                    sum.spans += 1;
                    sum.wall_s += s.wall_s;
                    sum.steps += s.counters.steps;
                    sum.batches += s.counters.batches;
                    sum.flops += s.counters.flops;
                    sum.bytes += s.counters.down_bytes
                        + s.counters.up_bytes
                        + s.counters.wasted_up_bytes;
                }
                (sum.spans > 0).then_some(sum)
            })
            .collect()
    }

    /// Human-readable per-phase summary table: where the run spent its
    /// wall clock, compute, and bytes. Shares in the `wall%` column are
    /// relative to the summed `round` spans.
    pub fn summary_table(&self) -> String {
        let summaries = self.phase_summary();
        let total_wall: f64 = summaries
            .iter()
            .find(|s| s.phase == Phase::Round)
            .map_or(0.0, |s| s.wall_s);
        let header = ["phase", "spans", "wall_s", "wall%", "steps", "batches", "gflops", "bytes"];
        let mut rows: Vec<[String; 8]> = Vec::with_capacity(summaries.len());
        for s in &summaries {
            let share = if total_wall > 0.0 && s.phase != Phase::Round {
                format!("{:.1}%", 100.0 * s.wall_s / total_wall)
            } else {
                "-".into()
            };
            rows.push([
                s.phase.name().to_string(),
                s.spans.to_string(),
                format!("{:.4}", s.wall_s),
                share,
                s.steps.to_string(),
                s.batches.to_string(),
                format!("{:.3}", s.flops as f64 / 1e9),
                s.bytes.to_string(),
            ]);
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
        let mut out = fmt(&head);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in rows {
            out.push_str(&fmt(&row));
            out.push('\n');
        }
        out
    }
}

/// Per-phase aggregate over a whole run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseSummary {
    /// Phase.
    pub phase: Phase,
    /// Spans recorded (≈ rounds the phase ran in).
    pub spans: usize,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Total optimizer steps.
    pub steps: u64,
    /// Total batch visits.
    pub batches: u64,
    /// Total GEMM FLOPs.
    pub flops: u64,
    /// Total bytes (down + accepted up + wasted up).
    pub bytes: u64,
}

impl Default for PhaseSummary {
    fn default() -> Self {
        PhaseSummary {
            phase: Phase::Round,
            spans: 0,
            wall_s: 0.0,
            steps: 0,
            batches: 0,
            flops: 0,
            bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(round: usize, phase: Phase, wall_s: f64, steps: u64) -> Span {
        Span {
            round,
            phase,
            wall_s,
            counters: Counters { steps, batches: steps, quorum_met: true, ..Default::default() },
        }
    }

    #[test]
    fn jsonl_roundtrip_preserves_spans() {
        let trace = RunTrace {
            spans: vec![span(0, Phase::Sample, 1e-6, 0), span(0, Phase::LocalUpdate, 0.5, 20)],
        };
        let parsed = RunTrace::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(parsed, trace);
        // Each line is one standalone JSON object with flattened counters.
        let first = trace.to_jsonl().lines().next().unwrap().to_string();
        assert!(first.starts_with('{') && first.ends_with('}'), "{first}");
        for needle in ["\"round\":0", "\"phase\":\"sample\"", "\"wall_s\":", "\"steps\":0"] {
            assert!(first.contains(needle), "missing {needle} in {first}");
        }
    }

    #[test]
    fn legacy_spans_without_staleness_counters_still_parse() {
        // A line recorded before async rounds existed: no
        // `stale_updates` / `evicted_updates` fields.
        let legacy = r#"{"round":2,"phase":"fusion","wall_s":0.5,"clients":3,"steps":9,"batches":9,"flops":0,"down_bytes":10,"up_bytes":20,"wasted_up_bytes":0,"quorum_met":true}"#;
        let trace = RunTrace::from_jsonl(legacy).unwrap();
        assert_eq!(trace.spans[0].counters.stale_updates, 0);
        assert_eq!(trace.spans[0].counters.evicted_updates, 0);
        assert_eq!(trace.spans[0].counters.steps, 9);
        // New spans round-trip the counters.
        let mut s = span(0, Phase::Buffer, 0.0, 0);
        s.counters.stale_updates = 4;
        s.counters.evicted_updates = 1;
        let t = RunTrace { spans: vec![s] };
        let parsed = RunTrace::from_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(Phase::from_name("buffer"), Some(Phase::Buffer));
    }

    #[test]
    fn payload_label_is_omitted_when_absent_and_roundtrips_when_set() {
        let unlabeled = RunTrace { spans: vec![span(0, Phase::Broadcast, 0.0, 0)] };
        assert!(!unlabeled.to_jsonl().contains("payload"), "{}", unlabeled.to_jsonl());
        let mut s = span(1, Phase::Broadcast, 0.0, 0);
        s.counters.payload_label = Some("window");
        let labeled = RunTrace { spans: vec![s] };
        let line = labeled.to_jsonl();
        assert!(line.contains("\"payload\":\"window\""), "{line}");
        let parsed = RunTrace::from_jsonl(&line).unwrap();
        assert_eq!(parsed, labeled);
        assert!(RunTrace::from_jsonl(&line.replace("window", "telepathy")).is_err());
    }

    #[test]
    fn canonical_form_zeroes_nondeterministic_fields() {
        let mut a = RunTrace { spans: vec![span(0, Phase::Fusion, 0.123, 5)] };
        a.spans[0].counters.flops = 999;
        let mut b = a.clone();
        b.spans[0].wall_s = 0.456;
        b.spans[0].counters.flops = 111;
        assert_ne!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.canonical_jsonl(), b.canonical_jsonl());
    }

    #[test]
    fn noop_sink_disables_scope_phases() {
        let mut sink = NoopSink;
        let mut scope = RoundScope::new(&mut sink, 3);
        assert!(!scope.enabled());
        let out = scope.phase(Phase::Eval, |c| {
            c.steps = 7;
            42
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn trace_sink_records_phases_with_counters() {
        let mut sink = TraceSink::new();
        {
            let mut scope = RoundScope::new(&mut sink, 1);
            assert!(scope.enabled());
            scope.phase(Phase::LocalUpdate, |c| {
                c.steps = 12;
                c.clients = 3;
            });
            scope.record_raw(Phase::Round, 1.0, Counters::quorum_default());
        }
        let trace = sink.into_trace();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].phase, Phase::LocalUpdate);
        assert_eq!(trace.spans[0].counters.steps, 12);
        assert_eq!(trace.spans[0].counters.clients, 3);
        assert!(trace.spans[0].wall_s >= 0.0);
        assert_eq!(trace.rounds(), 2);
        assert_eq!(trace.round_spans(1).len(), 2);
    }

    #[test]
    fn summary_aggregates_per_phase() {
        let trace = RunTrace {
            spans: vec![
                span(0, Phase::LocalUpdate, 0.25, 10),
                span(1, Phase::LocalUpdate, 0.25, 10),
                span(0, Phase::Round, 0.5, 0),
                span(1, Phase::Round, 0.5, 0),
            ],
        };
        let summary = trace.phase_summary();
        let local = summary.iter().find(|s| s.phase == Phase::LocalUpdate).unwrap();
        assert_eq!(local.spans, 2);
        assert_eq!(local.steps, 20);
        assert!((local.wall_s - 0.5).abs() < 1e-12);
        let table = trace.summary_table();
        assert!(table.contains("local_update"), "{table}");
        assert!(table.contains("50.0%"), "{table}");
    }
}
