//! Federated-learning run configuration.

use crate::lifecycle::FaultConfig;
use kemf_nn::optim::{LrSchedule, SgdConfig};
use serde::{Deserialize, Serialize};

/// Configuration of one federated training run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlConfig {
    /// Total number of clients `N`.
    pub n_clients: usize,
    /// Fraction of clients sampled each round (paper: 0.4–1.0).
    pub sample_ratio: f32,
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Local epochs `E` per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Base local learning rate.
    pub lr: f32,
    /// Local SGD momentum.
    pub momentum: f32,
    /// Local weight decay.
    pub weight_decay: f32,
    /// Learning-rate schedule over rounds.
    pub lr_schedule: LrSchedule,
    /// Dirichlet concentration α of the non-IID split.
    pub alpha: f64,
    /// Minimum samples per client the partitioner must guarantee.
    pub min_per_client: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Legacy single-knob failure injection: probability that a sampled
    /// client crashes after downloading the global state but before
    /// reporting. Folded into [`FaultConfig::drop_after_download`] by
    /// [`FlConfig::fault_plan`]; prefer setting `faults` directly.
    pub dropout_prob: f32,
    /// Lifecycle fault model (per-phase drops, stragglers, upload
    /// retries, quorum). Defaults to a fully reliable fleet.
    pub faults: FaultConfig,
    /// Master seed for sampling, partitioning, and initialization.
    pub seed: u64,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            n_clients: 10,
            sample_ratio: 0.4,
            rounds: 20,
            local_epochs: 1,
            batch_size: 32,
            lr: 0.08,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_schedule: LrSchedule::Constant,
            alpha: 0.1,
            min_per_client: 8,
            eval_batch: 64,
            dropout_prob: 0.0,
            faults: FaultConfig::default(),
            seed: 0,
        }
    }
}

impl FlConfig {
    /// Number of clients sampled per round (at least one).
    pub fn sampled_per_round(&self) -> usize {
        (((self.n_clients as f32) * self.sample_ratio).round() as usize)
            .clamp(1, self.n_clients)
    }

    /// SGD config at a given round (learning rate follows the schedule).
    pub fn sgd_at(&self, round: usize) -> SgdConfig {
        SgdConfig {
            lr: self.lr_schedule.lr_at(self.lr, round),
            momentum: self.momentum,
            weight_decay: self.weight_decay,
            nesterov: false,
        }
    }

    /// The effective lifecycle fault model: `faults`, with the legacy
    /// `dropout_prob` knob folded into the after-download crash
    /// probability (independent events, so probabilities combine as
    /// `1 − (1−a)(1−b)`).
    pub fn fault_plan(&self) -> FaultConfig {
        let mut faults = self.faults;
        if self.dropout_prob > 0.0 {
            faults.drop_after_download =
                1.0 - (1.0 - faults.drop_after_download) * (1.0 - self.dropout_prob);
        }
        faults
    }

    /// Panic if the configuration is inconsistent.
    pub fn validate(&self) {
        assert!(self.n_clients > 0, "need at least one client");
        assert!(
            self.sample_ratio > 0.0 && self.sample_ratio <= 1.0,
            "sample ratio must be in (0, 1]"
        );
        assert!(self.rounds > 0, "need at least one round");
        assert!(self.local_epochs > 0, "need at least one local epoch");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.lr > 0.0, "learning rate must be positive");
        assert!(self.alpha > 0.0, "alpha must be positive");
        assert!(
            (0.0..1.0).contains(&self.dropout_prob),
            "dropout probability must be in [0, 1)"
        );
        self.faults.validate();
        assert!(
            self.faults.min_quorum <= self.sampled_per_round(),
            "min_quorum {} can never be met with {} sampled clients per round",
            self.faults.min_quorum,
            self.sampled_per_round()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_per_round_rounds_and_clamps() {
        let mut cfg = FlConfig { n_clients: 30, sample_ratio: 0.4, ..Default::default() };
        assert_eq!(cfg.sampled_per_round(), 12);
        cfg.sample_ratio = 0.01;
        assert_eq!(cfg.sampled_per_round(), 1);
        cfg.sample_ratio = 1.0;
        assert_eq!(cfg.sampled_per_round(), 30);
    }

    #[test]
    fn sgd_follows_schedule() {
        let cfg = FlConfig {
            lr: 1.0,
            lr_schedule: LrSchedule::Step { every: 5, gamma: 0.1 },
            ..Default::default()
        };
        assert!((cfg.sgd_at(0).lr - 1.0).abs() < 1e-6);
        assert!((cfg.sgd_at(5).lr - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn validate_rejects_zero_clients() {
        FlConfig { n_clients: 0, ..Default::default() }.validate();
    }

    #[test]
    fn default_is_valid() {
        FlConfig::default().validate();
    }

    #[test]
    fn legacy_dropout_folds_into_fault_plan() {
        let cfg = FlConfig { dropout_prob: 0.5, ..Default::default() };
        assert!((cfg.fault_plan().drop_after_download - 0.5).abs() < 1e-6);
        // Combined with an explicit after-download probability the two
        // crash sources compose as independent events.
        let cfg = FlConfig {
            dropout_prob: 0.5,
            faults: FaultConfig { drop_after_download: 0.5, ..Default::default() },
            ..Default::default()
        };
        assert!((cfg.fault_plan().drop_after_download - 0.75).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn validate_rejects_unreachable_quorum() {
        FlConfig {
            n_clients: 10,
            sample_ratio: 0.4,
            faults: FaultConfig { min_quorum: 5, ..Default::default() },
            ..Default::default()
        }
        .validate();
    }
}
