//! Federated-learning run configuration.

use crate::lifecycle::FaultConfig;
use kemf_nn::optim::{LrSchedule, SgdConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a run configuration (or an algorithm's setup against it) is
/// inconsistent. Validation used to panic; every check now surfaces as a
/// typed error so embedding servers can reject a bad run without dying.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A count that must be at least one (clients, rounds, epochs, ...)
    /// is zero.
    ZeroCount {
        /// The offending field.
        field: &'static str,
    },
    /// A field that must lie in a half-open interval is outside it.
    OutOfRange {
        /// The offending field.
        field: &'static str,
        /// The value supplied.
        value: f64,
        /// Human-readable bound, e.g. `(0, 1]`.
        bounds: &'static str,
    },
    /// `min_quorum` exceeds the per-round sample size: no round could
    /// ever aggregate.
    UnreachableQuorum {
        /// Configured quorum.
        min_quorum: usize,
        /// Clients sampled per round.
        sampled_per_round: usize,
    },
    /// An algorithm's own setup is inconsistent with the run config
    /// (e.g. a per-client spec list whose length is not the client
    /// count).
    AlgorithmSetup {
        /// The algorithm reporting the problem.
        algorithm: String,
        /// What is wrong.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCount { field } => write!(f, "{field} must be at least 1"),
            ConfigError::OutOfRange { field, value, bounds } => {
                write!(f, "{field} must be in {bounds}, got {value}")
            }
            ConfigError::UnreachableQuorum { min_quorum, sampled_per_round } => write!(
                f,
                "min_quorum {min_quorum} can never be met with {sampled_per_round} sampled clients per round"
            ),
            ConfigError::AlgorithmSetup { algorithm, reason } => {
                write!(f, "{algorithm} setup: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of one federated training run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlConfig {
    /// Total number of clients `N`.
    pub n_clients: usize,
    /// Fraction of clients sampled each round (paper: 0.4–1.0).
    pub sample_ratio: f32,
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Local epochs `E` per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Base local learning rate.
    pub lr: f32,
    /// Local SGD momentum.
    pub momentum: f32,
    /// Local weight decay.
    pub weight_decay: f32,
    /// Learning-rate schedule over rounds.
    pub lr_schedule: LrSchedule,
    /// Dirichlet concentration α of the non-IID split.
    pub alpha: f64,
    /// Minimum samples per client the partitioner must guarantee.
    pub min_per_client: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Legacy single-knob failure injection: probability that a sampled
    /// client crashes after downloading the global state but before
    /// reporting. Folded into [`FaultConfig::drop_after_download`] by
    /// [`FlConfig::fault_plan`]; prefer setting `faults` directly.
    pub dropout_prob: f32,
    /// Lifecycle fault model (per-phase drops, stragglers, upload
    /// retries, quorum). Defaults to a fully reliable fleet.
    pub faults: FaultConfig,
    /// Stream each round's cohort through local update in batches of at
    /// most this many clients, bounding resident models by the batch
    /// instead of the cohort. `None` runs the whole cohort at once.
    /// Purely a memory knob: all per-result arithmetic is sequential in
    /// sampled order, so histories are bit-identical across batch sizes.
    pub cohort_batch: Option<usize>,
    /// Master seed for sampling, partitioning, and initialization.
    pub seed: u64,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            n_clients: 10,
            sample_ratio: 0.4,
            rounds: 20,
            local_epochs: 1,
            batch_size: 32,
            lr: 0.08,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_schedule: LrSchedule::Constant,
            alpha: 0.1,
            min_per_client: 8,
            eval_batch: 64,
            dropout_prob: 0.0,
            faults: FaultConfig::default(),
            cohort_batch: None,
            seed: 0,
        }
    }
}

impl FlConfig {
    /// Number of clients sampled per round (at least one).
    pub fn sampled_per_round(&self) -> usize {
        (((self.n_clients as f32) * self.sample_ratio).round() as usize)
            .clamp(1, self.n_clients)
    }

    /// How many of a `cohort`-client round to hold resident at once
    /// during local update: `cohort_batch` clamped to the cohort.
    pub fn cohort_chunk(&self, cohort: usize) -> usize {
        self.cohort_batch.unwrap_or(cohort).clamp(1, cohort.max(1))
    }

    /// SGD config at a given round (learning rate follows the schedule).
    pub fn sgd_at(&self, round: usize) -> SgdConfig {
        SgdConfig {
            lr: self.lr_schedule.lr_at(self.lr, round),
            momentum: self.momentum,
            weight_decay: self.weight_decay,
            nesterov: false,
        }
    }

    /// The effective lifecycle fault model: `faults`, with the legacy
    /// `dropout_prob` knob folded into the after-download crash
    /// probability (independent events, so probabilities combine as
    /// `1 − (1−a)(1−b)`).
    pub fn fault_plan(&self) -> FaultConfig {
        let mut faults = self.faults;
        if self.dropout_prob > 0.0 {
            faults.drop_after_download =
                1.0 - (1.0 - faults.drop_after_download) * (1.0 - self.dropout_prob);
        }
        faults
    }

    /// Check the configuration for inconsistencies. Construction sites
    /// that cannot recover ([`crate::context::FlContext::new`]) `expect`
    /// the result; the engine propagates it as a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_clients == 0 {
            return Err(ConfigError::ZeroCount { field: "n_clients" });
        }
        if !(self.sample_ratio > 0.0 && self.sample_ratio <= 1.0) {
            return Err(ConfigError::OutOfRange {
                field: "sample_ratio",
                value: self.sample_ratio as f64,
                bounds: "(0, 1]",
            });
        }
        if self.rounds == 0 {
            return Err(ConfigError::ZeroCount { field: "rounds" });
        }
        if self.local_epochs == 0 {
            return Err(ConfigError::ZeroCount { field: "local_epochs" });
        }
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroCount { field: "batch_size" });
        }
        if self.lr.is_nan() || self.lr <= 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "lr",
                value: self.lr as f64,
                bounds: "(0, inf)",
            });
        }
        // Optimizer hyperparameters feed the resume fingerprint and
        // every local step: non-finite or negative values would train
        // garbage and collide checkpoint identities.
        if !self.momentum.is_finite() || self.momentum < 0.0 || self.momentum >= 1.0 {
            return Err(ConfigError::OutOfRange {
                field: "momentum",
                value: self.momentum as f64,
                bounds: "[0, 1)",
            });
        }
        if !self.weight_decay.is_finite() || self.weight_decay < 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "weight_decay",
                value: self.weight_decay as f64,
                bounds: "[0, inf)",
            });
        }
        if self.alpha.is_nan() || self.alpha <= 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "alpha",
                value: self.alpha,
                bounds: "(0, inf)",
            });
        }
        if !(0.0..1.0).contains(&self.dropout_prob) {
            return Err(ConfigError::OutOfRange {
                field: "dropout_prob",
                value: self.dropout_prob as f64,
                bounds: "[0, 1)",
            });
        }
        if self.cohort_batch == Some(0) {
            return Err(ConfigError::ZeroCount { field: "cohort_batch" });
        }
        self.faults.validate()?;
        if self.faults.min_quorum > self.sampled_per_round() {
            return Err(ConfigError::UnreachableQuorum {
                min_quorum: self.faults.min_quorum,
                sampled_per_round: self.sampled_per_round(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_per_round_rounds_and_clamps() {
        let mut cfg = FlConfig { n_clients: 30, sample_ratio: 0.4, ..Default::default() };
        assert_eq!(cfg.sampled_per_round(), 12);
        cfg.sample_ratio = 0.01;
        assert_eq!(cfg.sampled_per_round(), 1);
        cfg.sample_ratio = 1.0;
        assert_eq!(cfg.sampled_per_round(), 30);
    }

    #[test]
    fn sgd_follows_schedule() {
        let cfg = FlConfig {
            lr: 1.0,
            lr_schedule: LrSchedule::Step { every: 5, gamma: 0.1 },
            ..Default::default()
        };
        assert!((cfg.sgd_at(0).lr - 1.0).abs() < 1e-6);
        assert!((cfg.sgd_at(5).lr - 0.1).abs() < 1e-6);
    }

    #[test]
    fn validate_rejects_zero_clients() {
        let err = FlConfig { n_clients: 0, ..Default::default() }.validate().unwrap_err();
        assert_eq!(err, ConfigError::ZeroCount { field: "n_clients" });
    }

    #[test]
    fn default_is_valid() {
        FlConfig::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_non_finite_optimizer_hyperparameters() {
        for cfg in [
            FlConfig { momentum: f32::NAN, ..Default::default() },
            FlConfig { momentum: -0.1, ..Default::default() },
            FlConfig { momentum: 1.0, ..Default::default() },
            FlConfig { weight_decay: f32::INFINITY, ..Default::default() },
            FlConfig { weight_decay: -1e-4, ..Default::default() },
        ] {
            let err = cfg.validate().unwrap_err();
            assert!(
                matches!(err, ConfigError::OutOfRange { field: "momentum" | "weight_decay", .. }),
                "got: {err:?}"
            );
        }
    }

    #[test]
    fn cohort_batch_rejects_zero_and_clamps_to_cohort() {
        let err = FlConfig { cohort_batch: Some(0), ..Default::default() }.validate().unwrap_err();
        assert_eq!(err, ConfigError::ZeroCount { field: "cohort_batch" });
        let cfg = FlConfig { cohort_batch: Some(64), ..Default::default() };
        cfg.validate().unwrap();
        assert_eq!(cfg.cohort_chunk(10), 10);
        assert_eq!(cfg.cohort_chunk(1000), 64);
        assert_eq!(FlConfig::default().cohort_chunk(1000), 1000);
    }

    #[test]
    fn legacy_dropout_folds_into_fault_plan() {
        let cfg = FlConfig { dropout_prob: 0.5, ..Default::default() };
        assert!((cfg.fault_plan().drop_after_download - 0.5).abs() < 1e-6);
        // Combined with an explicit after-download probability the two
        // crash sources compose as independent events.
        let cfg = FlConfig {
            dropout_prob: 0.5,
            faults: FaultConfig { drop_after_download: 0.5, ..Default::default() },
            ..Default::default()
        };
        assert!((cfg.fault_plan().drop_after_download - 0.75).abs() < 1e-6);
    }

    #[test]
    fn validate_rejects_unreachable_quorum() {
        let err = FlConfig {
            n_clients: 10,
            sample_ratio: 0.4,
            faults: FaultConfig { min_quorum: 5, ..Default::default() },
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::UnreachableQuorum { min_quorum: 5, sampled_per_round: 4 });
        // The error renders both numbers, so a log line alone explains it.
        let msg = err.to_string();
        assert!(msg.contains('5') && msg.contains('4'), "bad message: {msg}");
    }
}
