//! Discrete-event asynchronous round scheduler (FedBuff-style).
//!
//! The synchronous engine trains a cohort and fuses it in the same
//! round. Real federations do not work that way: clients finish at
//! wildly different times, and a server that waits for the slowest
//! straggler burns wall-clock for nothing. The buffered-asynchronous
//! design (Nguyen et al., FedBuff) lets the server aggregate as soon
//! as a *buffer* of updates has arrived, weighting each update down by
//! its staleness — the number of aggregation cycles that elapsed since
//! the contributing client last saw the global model.
//!
//! This module is the simulation core of that design:
//!
//! * **Events, not threads.** Each client completion becomes a
//!   [`PendingEvent`] stamped with a simulated arrival time, reusing
//!   the lifecycle draws ([`ClientOutcome::Completed`]'s straggler
//!   delay and upload attempts) and an optional [`NetworkModel`] for
//!   transfer times. A binary-exact virtual clock (`f64` bits) orders
//!   the queue deterministically.
//! * **Buffered aggregation.** [`AsyncScheduler::drain`] pops events in
//!   arrival order until [`AsyncConfig::buffer_size`] updates have been
//!   *accepted*; events whose staleness exceeds
//!   [`AsyncConfig::max_staleness`] are evicted and do not count
//!   toward the buffer.
//! * **Staleness-weighted fusion.** Each accepted update carries the
//!   weight `staleness_decay^staleness`. A fresh update (staleness 0)
//!   gets weight exactly `1.0`, which is what makes the synchronous
//!   history reproducible bit-for-bit: with `buffer_size == cohort`
//!   and no injected delay every update folds fresh, `x * 1.0` is `x`
//!   in IEEE-754, and the fold order equals the sampled order.
//!
//! The scheduler owns no model state. Algorithms hand it opaque
//! [`PreparedUpdate`]s (built by `FedAlgorithm::train_cohort`) and get
//! them back, weighted, from the engine's drain for
//! `FedAlgorithm::fuse`. Deferred side effects — client-store commits
//! that the synchronous path applies at aggregation time — ride along
//! in [`PreparedUpdate::commit`] so that an update evicted for
//! staleness (or discarded by a quorum abort) leaves no trace, exactly
//! like a synchronous round that never aggregated.

use crate::client_store::ClientBlob;
use crate::config::ConfigError;
use crate::lifecycle::{ClientOutcome, ClientPlan, RoundPlan};
use crate::network::{NetworkModel, NetworkProfiles};
use crate::state::TensorBlob;
use kemf_nn::serialize::ModelState;

/// How [`crate::engine::Engine::run`] advances rounds.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum RoundMode {
    /// Classic synchronous rounds: sample, train, fuse, repeat. The
    /// default, and byte-identical to every run recorded before this
    /// mode existed.
    #[default]
    Sync,
    /// Buffered-asynchronous rounds: client completions arrive at
    /// simulated timestamps and the server fuses a staleness-weighted
    /// buffer per cycle.
    Async(AsyncConfig),
}

/// Knobs of the buffered-asynchronous mode.
#[derive(Clone, Debug, PartialEq)]
pub struct AsyncConfig {
    /// Updates the server accepts before fusing (the FedBuff `K`).
    /// Must be in `1..=sampled_per_round`; at the upper bound with no
    /// injected delay, async reproduces sync bit-for-bit.
    pub buffer_size: usize,
    /// Oldest staleness (in aggregation cycles) the server still
    /// accepts; anything older is evicted unfused. `0` accepts only
    /// same-cycle updates.
    pub max_staleness: usize,
    /// Per-cycle decay of an update's fusion weight:
    /// `weight = staleness_decay^staleness`. Must be in `(0, 1]`;
    /// `1.0` disables down-weighting.
    pub staleness_decay: f32,
    /// Optional link model for transfer times. `None` prices transfers
    /// at zero seconds — arrival order is then driven purely by the
    /// lifecycle's injected straggler delays.
    pub network: Option<NetworkModel>,
    /// Optional per-client heterogeneous links, assigned round-robin by
    /// client index. Takes precedence over [`AsyncConfig::network`] when
    /// set; a uniform single-entry profile reproduces the fleet-wide
    /// model bit-for-bit.
    pub profiles: Option<NetworkProfiles>,
    /// Arrival-rate trigger: fuse after this many simulated seconds
    /// have passed since the drain began, even if fewer than
    /// [`AsyncConfig::buffer_size`] updates arrived by then. At least
    /// one update always folds (the server never fuses nothing), and
    /// zero-delay arrivals land inside any positive window — so the
    /// synchronous-equivalence anchor is untouched. `None` (the
    /// default) waits for a full buffer, exactly as before.
    pub aggregate_after_s: Option<f64>,
}

impl AsyncConfig {
    /// A conservative default: half-cohort buffer, staleness capped at
    /// 4 cycles with a gentle 0.6 decay, no network model.
    pub fn new(buffer_size: usize) -> Self {
        AsyncConfig {
            buffer_size,
            max_staleness: 4,
            staleness_decay: 0.6,
            network: None,
            profiles: None,
            aggregate_after_s: None,
        }
    }

    /// Fluent setter for [`AsyncConfig::max_staleness`].
    pub fn max_staleness(mut self, cycles: usize) -> Self {
        self.max_staleness = cycles;
        self
    }

    /// Fluent setter for [`AsyncConfig::staleness_decay`].
    pub fn staleness_decay(mut self, decay: f32) -> Self {
        self.staleness_decay = decay;
        self
    }

    /// Fluent setter for [`AsyncConfig::network`].
    pub fn network(mut self, net: NetworkModel) -> Self {
        self.network = Some(net);
        self
    }

    /// Fluent setter for [`AsyncConfig::profiles`].
    pub fn profiles(mut self, profiles: NetworkProfiles) -> Self {
        self.profiles = Some(profiles);
        self
    }

    /// Fluent setter for [`AsyncConfig::aggregate_after_s`].
    pub fn aggregate_after(mut self, secs: f64) -> Self {
        self.aggregate_after_s = Some(secs);
        self
    }

    /// Validate against the run's cohort size.
    pub fn validate(&self, sampled_per_round: usize) -> Result<(), ConfigError> {
        if self.buffer_size == 0 {
            return Err(ConfigError::ZeroCount { field: "async.buffer_size" });
        }
        if self.buffer_size > sampled_per_round {
            return Err(ConfigError::OutOfRange {
                field: "async.buffer_size",
                value: self.buffer_size as f64,
                bounds: "1 ..= sampled_per_round (one wave cannot overfill the buffer)",
            });
        }
        if !(self.staleness_decay > 0.0 && self.staleness_decay <= 1.0) {
            return Err(ConfigError::OutOfRange {
                field: "async.staleness_decay",
                value: self.staleness_decay as f64,
                bounds: "(0, 1]",
            });
        }
        if let Some(net) = &self.network {
            if !(net.bandwidth_bps.is_finite() && net.bandwidth_bps > 0.0) {
                return Err(ConfigError::OutOfRange {
                    field: "async.network.bandwidth_bps",
                    value: net.bandwidth_bps,
                    bounds: "(0, inf)",
                });
            }
            if !(net.latency_s.is_finite() && net.latency_s >= 0.0) {
                return Err(ConfigError::OutOfRange {
                    field: "async.network.latency_s",
                    value: net.latency_s,
                    bounds: "[0, inf)",
                });
            }
        }
        if let Some(p) = &self.profiles {
            p.validate()?;
        }
        if let Some(t) = self.aggregate_after_s {
            if !(t.is_finite() && t > 0.0) {
                return Err(ConfigError::OutOfRange {
                    field: "async.aggregate_after_s",
                    value: t,
                    bounds: "(0, inf)",
                });
            }
        }
        Ok(())
    }

    /// Fusion weight of an update `staleness` cycles old. `powi(0)` is
    /// exactly `1.0`, so fresh updates fold at full weight bit-for-bit.
    pub fn staleness_weight(&self, staleness: usize) -> f32 {
        self.staleness_decay.powi(staleness.min(i32::MAX as usize) as i32)
    }

    /// Fold the async knobs into a run fingerprint so a checkpoint
    /// written in one mode (or with different async knobs) refuses to
    /// resume in another. Synchronous fingerprints are untouched — the
    /// tag below guarantees async never collides with sync.
    pub(crate) fn mix_fingerprint(&self, base: u64) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = base ^ 0x4153_594e_4321_7575; // "ASYN C!uu" domain tag
        let eat = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&mut h, &(self.buffer_size as u64).to_le_bytes());
        eat(&mut h, &(self.max_staleness as u64).to_le_bytes());
        eat(&mut h, &self.staleness_decay.to_bits().to_le_bytes());
        match &self.network {
            None => eat(&mut h, &[0]),
            Some(net) => {
                eat(&mut h, &[1]);
                eat(&mut h, &net.bandwidth_bps.to_bits().to_le_bytes());
                eat(&mut h, &net.latency_s.to_bits().to_le_bytes());
            }
        }
        // Later knobs append tagged bytes only when set, so fingerprints
        // of runs that never use them are unchanged from earlier builds
        // (their checkpoints stay resumable).
        if let Some(p) = &self.profiles {
            eat(&mut h, &[2]);
            eat(&mut h, &(p.models.len() as u64).to_le_bytes());
            for m in &p.models {
                eat(&mut h, &m.bandwidth_bps.to_bits().to_le_bytes());
                eat(&mut h, &m.latency_s.to_bits().to_le_bytes());
            }
        }
        if let Some(t) = self.aggregate_after_s {
            eat(&mut h, &[3]);
            eat(&mut h, &t.to_bits().to_le_bytes());
        }
        h
    }
}

/// The model-bearing part of one client's update, algorithm-defined.
///
/// Each algorithm picks the variant that matches what its synchronous
/// fold consumes: weight-averaging algorithms ship a [`ModelState`]
/// (FedNova ships its *delta* plus raw buffers in the same shape),
/// SCAFFOLD adds its control-variate delta as a flat aux vector, and
/// FedMD ships public-set logits.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdatePayload {
    /// No tensor payload (test probes, byte-accounting-only runs).
    Empty,
    /// A full model state (or, for FedNova, the normalized delta in
    /// `params` next to the raw client `buffers`).
    State(ModelState),
    /// A model state plus a flat auxiliary vector (SCAFFOLD's
    /// control-variate delta).
    StateAux {
        /// The trained client model.
        state: ModelState,
        /// Flat auxiliary values, algorithm-defined.
        aux: Vec<f32>,
    },
    /// Dimension-tagged logits over a public pool (FedMD, FedGEMS).
    Logits(TensorBlob),
    /// A rolling sub-model window (FedRolex): the trained window state
    /// tagged with the window offset it was extracted at, so the fuse
    /// step can scatter it back into the right server slice however
    /// stale it folds.
    Window {
        /// Window offset within the rolling cycle at dispatch time.
        offset: usize,
        /// The trained sub-model state.
        state: ModelState,
    },
}

/// One client's finished local work, frozen at dispatch time and fused
/// later — possibly cycles later — at a staleness-dependent weight.
#[derive(Clone, Debug, PartialEq)]
pub struct PreparedUpdate {
    /// Population index of the contributing client.
    pub client: usize,
    /// Local sample count (the FedAvg-family fold coefficient).
    pub n_samples: usize,
    /// Local optimizer steps taken (FedNova's `tau`).
    pub steps: usize,
    /// Mean local training loss (reported, not fused).
    pub loss: f32,
    /// The tensors the server fuses.
    pub payload: UpdatePayload,
    /// Deferred per-client store commit, applied by `fuse` only if this
    /// update actually folds in. An evicted or quorum-discarded update
    /// must leave no store trace, exactly like a synchronous round that
    /// never aggregated.
    pub commit: Option<ClientBlob>,
}

/// A dispatched update waiting in the arrival queue.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingEvent {
    /// Arrival time in seconds, stored as raw `f64` bits so ordering,
    /// checkpointing, and resume are binary-exact. Arrival times are
    /// non-negative, so bit order equals numeric order.
    pub time_bits: u64,
    /// Aggregation cycle whose global model this client trained
    /// against; `cycle - wave` is the update's staleness at fold time.
    pub wave: usize,
    /// Position within the wave's sampled order — the tie-breaker that
    /// pins the fold order to the sampled order when arrival times are
    /// equal (the synchronous-equivalence case).
    pub idx: usize,
    /// Uplink bytes this client's completed upload cost, frozen from its
    /// [`ClientPlan`] at dispatch time; billed in the cycle whose drain
    /// consumes (or evicts) the event.
    pub up_bytes: u64,
    /// The frozen update itself.
    pub update: PreparedUpdate,
}

impl PendingEvent {
    /// Arrival time in seconds.
    pub fn arrival_s(&self) -> f64 {
        f64::from_bits(self.time_bits)
    }
}

/// What one [`AsyncScheduler::drain`] produced.
#[derive(Clone, Debug, PartialEq)]
pub struct DrainOutcome {
    /// Accepted updates in fold order, each with its staleness weight.
    pub folded: Vec<(PreparedUpdate, f32)>,
    /// How many accepted updates were stale (staleness ≥ 1).
    pub stale: u64,
    /// How many updates were evicted for exceeding `max_staleness`.
    pub evicted: u64,
    /// Uplink bytes of the accepted updates, summed per event in `u128`
    /// so heterogeneous payloads bill exactly and the sum cannot wrap.
    pub folded_up_bytes: u128,
    /// Uplink bytes of the evicted updates (wasted traffic).
    pub evicted_up_bytes: u128,
}

/// Serializable scheduler snapshot for checkpoint/resume. The fusion
/// buffer is transient within a cycle — only the virtual clock and the
/// in-flight queue survive a crash.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulerState {
    /// Virtual clock, raw `f64` bits.
    pub now_bits: u64,
    /// In-flight events in queue order.
    pub events: Vec<PendingEvent>,
}

/// The discrete-event queue driving buffered-asynchronous rounds.
#[derive(Clone, Debug)]
pub struct AsyncScheduler {
    cfg: AsyncConfig,
    /// Virtual clock in seconds; advances to each popped event's
    /// arrival time, never backwards.
    now: f64,
    /// Pending events, kept sorted by `(time_bits, wave, idx)`.
    queue: Vec<PendingEvent>,
}

impl AsyncScheduler {
    /// A fresh scheduler at virtual time zero.
    pub fn new(cfg: AsyncConfig) -> Self {
        AsyncScheduler { cfg, now: 0.0, queue: Vec::new() }
    }

    /// The async knobs this scheduler runs under.
    pub fn config(&self) -> &AsyncConfig {
        &self.cfg
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of in-flight events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue one wave's completions. `plans` aligns one-to-one with
    /// `plan.clients` (the per-client payloads of the wave), and
    /// `updates` holds the prepared updates of the plan's *reporters*,
    /// in sampled order — exactly what `FedAlgorithm::train_cohort`
    /// returns for `plan.reporters()`. Each completion arrives at
    ///
    /// ```text
    /// now + t_down + delay_s + attempts * t_up
    /// ```
    ///
    /// with transfer times priced at that client's own payload,
    /// mirroring [`NetworkModel::lifecycle_round_time`]'s `Completed`
    /// arm; with no network model both transfer times are zero and
    /// arrival order is driven by the injected straggler delays alone.
    pub fn dispatch(
        &mut self,
        wave: usize,
        plan: &RoundPlan,
        plans: &[ClientPlan],
        updates: Vec<PreparedUpdate>,
    ) {
        debug_assert_eq!(plans.len(), plan.clients.len(), "plans must align with the wave");
        let mut it = updates.into_iter();
        let mut idx = 0usize;
        for (c, cp) in plan.clients.iter().zip(plans) {
            if let ClientOutcome::Completed { attempts, delay_s } = c.outcome {
                let Some(update) = it.next() else { break };
                debug_assert_eq!(update.client, c.client, "updates must follow sampled order");
                let payload = cp.payload;
                // Per-client links take precedence; a uniform profile
                // runs the identical computation on the identical model,
                // so its arrival times are bit-equal to the fleet-wide
                // path.
                let (t_down, t_up) = match &self.cfg.profiles {
                    Some(p) => {
                        let m = p.model_for(c.client);
                        (m.transfer_time(payload.down_bytes), m.transfer_time(payload.up_bytes))
                    }
                    None => match &self.cfg.network {
                        Some(net) => (
                            net.transfer_time(payload.down_bytes),
                            net.transfer_time(payload.up_bytes),
                        ),
                        None => (0.0, 0.0),
                    },
                };
                let arrive = self.now + t_down + delay_s + attempts as f64 * t_up;
                self.queue.push(PendingEvent {
                    time_bits: arrive.to_bits(),
                    wave,
                    idx,
                    up_bytes: payload.up_bytes,
                    update,
                });
                idx += 1;
            }
        }
        debug_assert!(it.next().is_none(), "more updates than completed reporters");
        // Stable sort on the full key keeps dispatch idempotent and the
        // pop order independent of insertion history.
        self.queue.sort_by_key(|e| (e.time_bits, e.wave, e.idx));
    }

    /// Pop events in arrival order until `buffer_size` updates are
    /// accepted or the queue runs dry. The virtual clock advances to
    /// each popped event's arrival time (monotonically — a same-time
    /// tie cannot move it backwards). Events whose staleness at this
    /// cycle exceeds `max_staleness` are evicted and do *not* count
    /// toward the buffer; accepted updates carry
    /// `staleness_decay^staleness` as their fusion weight.
    /// The arrival-rate trigger ([`AsyncConfig::aggregate_after_s`])
    /// additionally closes the buffer early: once at least one update
    /// has been accepted, the drain stops when the next arrival lands
    /// past `drain start + aggregate_after_s`. Eviction-only pops keep
    /// the buffer empty and never trip the trigger (the server never
    /// fuses nothing), and zero-delay arrivals never exceed a positive
    /// window — the synchronous-equivalence anchor is preserved.
    pub fn drain(&mut self, cycle: usize) -> DrainOutcome {
        let mut out = DrainOutcome {
            folded: Vec::new(),
            stale: 0,
            evicted: 0,
            folded_up_bytes: 0,
            evicted_up_bytes: 0,
        };
        let deadline = self.cfg.aggregate_after_s.map(|t| self.now + t);
        while out.folded.len() < self.cfg.buffer_size && !self.queue.is_empty() {
            if let Some(dl) = deadline {
                if !out.folded.is_empty() && self.queue[0].arrival_s() > dl {
                    break;
                }
            }
            let ev = self.queue.remove(0);
            let t = ev.arrival_s();
            if t > self.now {
                self.now = t;
            }
            debug_assert!(ev.wave <= cycle, "an event cannot arrive before its wave");
            let staleness = cycle.saturating_sub(ev.wave);
            // u128 accumulation of u64 addends cannot wrap within any
            // drainable queue; the engine converts back to u64 with a
            // typed error.
            if staleness > self.cfg.max_staleness {
                out.evicted += 1;
                out.evicted_up_bytes += ev.up_bytes as u128;
                continue;
            }
            if staleness > 0 {
                out.stale += 1;
            }
            out.folded_up_bytes += ev.up_bytes as u128;
            out.folded.push((ev.update, self.cfg.staleness_weight(staleness)));
        }
        out
    }

    /// Snapshot for checkpointing; binary-exact round trip with
    /// [`AsyncScheduler::restore`].
    pub fn state(&self) -> SchedulerState {
        SchedulerState { now_bits: self.now.to_bits(), events: self.queue.clone() }
    }

    /// Restore a snapshot taken by [`AsyncScheduler::state`].
    pub fn restore(&mut self, state: SchedulerState) {
        self.now = f64::from_bits(state.now_bits);
        self.queue = state.events;
        self.queue.sort_by_key(|e| (e.time_bits, e.wave, e.idx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{ClientRound, ModelView, WirePayload};

    fn uniform(plan: &RoundPlan, payload: WirePayload) -> Vec<ClientPlan> {
        let ids: Vec<usize> = plan.clients.iter().map(|c| c.client).collect();
        ClientPlan::uniform(&ids, ModelView::Full, payload)
    }

    fn probe_update(client: usize) -> PreparedUpdate {
        PreparedUpdate {
            client,
            n_samples: 10,
            steps: 5,
            loss: 1.0,
            payload: UpdatePayload::Empty,
            commit: None,
        }
    }

    fn completed(client: usize, delay_s: f64) -> ClientRound {
        ClientRound { client, outcome: ClientOutcome::Completed { attempts: 1, delay_s } }
    }

    fn plan_of(clients: Vec<ClientRound>) -> RoundPlan {
        RoundPlan { clients, min_quorum: 1 }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(matches!(
            AsyncConfig::new(0).validate(4),
            Err(ConfigError::ZeroCount { field: "async.buffer_size" })
        ));
        assert!(matches!(
            AsyncConfig::new(5).validate(4),
            Err(ConfigError::OutOfRange { field: "async.buffer_size", .. })
        ));
        assert!(matches!(
            AsyncConfig::new(2).staleness_decay(0.0).validate(4),
            Err(ConfigError::OutOfRange { field: "async.staleness_decay", .. })
        ));
        assert!(matches!(
            AsyncConfig::new(2).staleness_decay(1.5).validate(4),
            Err(ConfigError::OutOfRange { field: "async.staleness_decay", .. })
        ));
        let bad_net = NetworkModel { bandwidth_bps: 0.0, latency_s: 0.0 };
        assert!(AsyncConfig::new(2).network(bad_net).validate(4).is_err());
        assert!(AsyncConfig::new(4).network(NetworkModel::broadband()).validate(4).is_ok());
    }

    #[test]
    fn fresh_updates_fold_at_weight_exactly_one() {
        let cfg = AsyncConfig::new(2).staleness_decay(0.37);
        assert_eq!(cfg.staleness_weight(0).to_bits(), 1.0f32.to_bits());
        assert!(cfg.staleness_weight(1) < cfg.staleness_weight(0));
        assert!(cfg.staleness_weight(2) < cfg.staleness_weight(1));
    }

    #[test]
    fn drain_pops_in_arrival_order_with_sampled_order_ties() {
        let mut s = AsyncScheduler::new(AsyncConfig::new(4).max_staleness(8));
        // Client 2 is slow; clients 0 and 1 tie at zero delay and must
        // fold in sampled order.
        let plan = plan_of(vec![completed(0, 0.0), completed(1, 0.0), completed(2, 7.5)]);
        s.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(100)),vec![
            probe_update(0),
            probe_update(1),
            probe_update(2),
        ]);
        let d = s.drain(0);
        let order: Vec<usize> = d.folded.iter().map(|(u, _)| u.client).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(d.stale, 0);
        assert_eq!(d.evicted, 0);
        assert!((s.now() - 7.5).abs() < 1e-12, "clock follows the slowest pop");
    }

    #[test]
    fn network_model_spreads_arrivals_by_transfer_time() {
        let net = NetworkModel { bandwidth_bps: 100.0, latency_s: 0.0 };
        let mut s = AsyncScheduler::new(AsyncConfig::new(1).max_staleness(8).network(net));
        // 100-byte payload each way → 1 s down + 1 s per upload attempt.
        let plan = plan_of(vec![
            ClientRound { client: 0, outcome: ClientOutcome::Completed { attempts: 2, delay_s: 0.5 } },
        ]);
        s.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(100)),vec![probe_update(0)]);
        assert_eq!(s.pending(), 1);
        let d = s.drain(0);
        assert_eq!(d.folded.len(), 1);
        // 1 s down + 0.5 s delay + 2 × 1 s upload = 3.5 s.
        assert!((s.now() - 3.5).abs() < 1e-12, "got {}", s.now());
    }

    #[test]
    fn buffer_size_caps_accepted_updates_per_drain() {
        let mut s = AsyncScheduler::new(AsyncConfig::new(2).max_staleness(8));
        let plan = plan_of(vec![completed(0, 0.0), completed(1, 1.0), completed(2, 2.0)]);
        s.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(10)),vec![
            probe_update(0),
            probe_update(1),
            probe_update(2),
        ]);
        let first = s.drain(0);
        assert_eq!(first.folded.len(), 2);
        assert_eq!(s.pending(), 1);
        let second = s.drain(1);
        assert_eq!(second.folded.len(), 1);
        assert_eq!(second.stale, 1, "the leftover update folds one cycle stale");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn updates_beyond_max_staleness_are_evicted_without_filling_the_buffer() {
        let mut s = AsyncScheduler::new(AsyncConfig::new(2).max_staleness(0));
        let plan = plan_of(vec![completed(0, 0.0), completed(1, 0.0)]);
        s.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(10)),vec![probe_update(0), probe_update(1)]);
        // Drain two cycles later: both events are staleness 2 > 0.
        let d = s.drain(2);
        assert!(d.folded.is_empty());
        assert_eq!(d.evicted, 2);
        assert_eq!(s.pending(), 0, "evicted events leave the queue");
    }

    #[test]
    fn stale_updates_fold_at_decayed_weight() {
        let cfg = AsyncConfig::new(1).max_staleness(4).staleness_decay(0.5);
        let mut s = AsyncScheduler::new(cfg.clone());
        let plan = plan_of(vec![completed(3, 0.0)]);
        s.dispatch(1, &plan, &uniform(&plan, WirePayload::symmetric(10)),vec![probe_update(3)]);
        let d = s.drain(3);
        assert_eq!(d.folded.len(), 1);
        let (_, w) = &d.folded[0];
        assert_eq!(w.to_bits(), cfg.staleness_weight(2).to_bits());
        assert_eq!(w.to_bits(), 0.25f32.to_bits());
    }

    #[test]
    fn drain_sums_each_event_at_its_own_uplink_bytes() {
        // Three clients with different window payloads: accepted and
        // evicted events bill their own bytes, not payload × n.
        let mut s = AsyncScheduler::new(AsyncConfig::new(3).max_staleness(0));
        let plan = plan_of(vec![completed(0, 0.0), completed(1, 0.0), completed(2, 0.0)]);
        let plans: Vec<ClientPlan> = [(0usize, 100u64), (1, 70), (2, 30)]
            .iter()
            .map(|&(client, b)| ClientPlan {
                client,
                view: ModelView::Window { offset: client, cycle: 3 },
                payload: WirePayload::symmetric(b),
            })
            .collect();
        s.dispatch(0, &plan, &plans, vec![probe_update(0), probe_update(1), probe_update(2)]);
        let d = s.drain(0);
        assert_eq!(d.folded.len(), 3);
        assert_eq!(d.folded_up_bytes, 200);
        assert_eq!(d.evicted_up_bytes, 0);
        // Same dispatch drained one cycle late: everything evicts at its
        // own bytes (max_staleness 0).
        let mut late = AsyncScheduler::new(AsyncConfig::new(3).max_staleness(0));
        late.dispatch(0, &plan, &plans, vec![probe_update(0), probe_update(1), probe_update(2)]);
        let d = late.drain(1);
        assert!(d.folded.is_empty());
        assert_eq!(d.evicted_up_bytes, 200);
        assert_eq!(d.folded_up_bytes, 0);
    }

    #[test]
    fn state_restore_round_trips_binary_exact() {
        let mut s = AsyncScheduler::new(AsyncConfig::new(1).max_staleness(8));
        let plan = plan_of(vec![completed(0, 0.125), completed(1, 3.875)]);
        s.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(10)),vec![probe_update(0), probe_update(1)]);
        let _ = s.drain(0); // advance the clock, leave one event in flight
        let snap = s.state();
        let mut r = AsyncScheduler::new(AsyncConfig::new(1).max_staleness(8));
        r.restore(snap.clone());
        assert_eq!(r.state(), snap);
        assert_eq!(r.now().to_bits(), s.now().to_bits());
        // The survivor drains identically from both schedulers.
        assert_eq!(r.drain(1), s.drain(1));
    }

    #[test]
    fn fingerprint_mixing_separates_modes_and_knobs() {
        let base = 0x1234_5678_9abc_def0u64;
        let a = AsyncConfig::new(2);
        assert_ne!(a.mix_fingerprint(base), base, "async must not collide with sync");
        assert_ne!(a.mix_fingerprint(base), AsyncConfig::new(3).mix_fingerprint(base));
        assert_ne!(
            a.mix_fingerprint(base),
            AsyncConfig::new(2).max_staleness(9).mix_fingerprint(base)
        );
        assert_ne!(
            a.mix_fingerprint(base),
            AsyncConfig::new(2).network(NetworkModel::iot()).mix_fingerprint(base)
        );
        assert_ne!(
            a.mix_fingerprint(base),
            AsyncConfig::new(2).profiles(NetworkProfiles::wifi_4g_3g()).mix_fingerprint(base),
            "per-client profiles are resume identity"
        );
        assert_ne!(
            a.mix_fingerprint(base),
            AsyncConfig::new(2).aggregate_after(5.0).mix_fingerprint(base),
            "the arrival-rate trigger is resume identity"
        );
        assert_ne!(
            AsyncConfig::new(2).aggregate_after(5.0).mix_fingerprint(base),
            AsyncConfig::new(2).aggregate_after(6.0).mix_fingerprint(base),
        );
    }

    #[test]
    fn validate_rejects_bad_trigger_and_profiles() {
        assert!(matches!(
            AsyncConfig::new(2).aggregate_after(0.0).validate(4),
            Err(ConfigError::OutOfRange { field: "async.aggregate_after_s", .. })
        ));
        assert!(AsyncConfig::new(2).aggregate_after(f64::NAN).validate(4).is_err());
        assert!(AsyncConfig::new(2).aggregate_after(-1.0).validate(4).is_err());
        assert!(AsyncConfig::new(2).aggregate_after(3.5).validate(4).is_ok());
        assert!(AsyncConfig::new(2)
            .profiles(NetworkProfiles::cycle(vec![]))
            .validate(4)
            .is_err());
        assert!(AsyncConfig::new(2).profiles(NetworkProfiles::wifi_4g_3g()).validate(4).is_ok());
    }

    #[test]
    fn uniform_profiles_dispatch_bit_identically_to_the_fleet_model() {
        let net = NetworkModel { bandwidth_bps: 100.0, latency_s: 0.03 };
        let plan = plan_of(vec![completed(0, 0.5), completed(3, 1.5), completed(7, 0.0)]);
        let updates = || vec![probe_update(0), probe_update(3), probe_update(7)];
        let mut fleet = AsyncScheduler::new(AsyncConfig::new(3).max_staleness(8).network(net));
        fleet.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(100)),updates());
        let mut prof = AsyncScheduler::new(
            AsyncConfig::new(3).max_staleness(8).profiles(NetworkProfiles::uniform(net)),
        );
        prof.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(100)),updates());
        assert_eq!(fleet.state(), prof.state(), "uniform profiles must be bit-identical");
    }

    #[test]
    fn heterogeneous_profiles_reorder_arrivals_by_link_speed() {
        // Client 2 lands on the 3G link of the wifi/4g/3g cycle: despite
        // equal injected delays it arrives last.
        let profiles = NetworkProfiles::wifi_4g_3g();
        let mut s = AsyncScheduler::new(AsyncConfig::new(3).max_staleness(8).profiles(profiles));
        let plan = plan_of(vec![completed(2, 0.0), completed(0, 0.0), completed(1, 0.0)]);
        s.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(512 * 1024)),vec![
            probe_update(2),
            probe_update(0),
            probe_update(1),
        ]);
        let d = s.drain(0);
        let order: Vec<usize> = d.folded.iter().map(|(u, _)| u.client).collect();
        assert_eq!(order, vec![0, 1, 2], "broadband < 4g < 3g arrival order");
    }

    #[test]
    fn arrival_rate_trigger_closes_a_short_buffer() {
        // Buffer wants 3, but the second arrival is 10 s out and the
        // window is 2 s: the drain folds the first update alone.
        let mut s = AsyncScheduler::new(AsyncConfig::new(3).max_staleness(8).aggregate_after(2.0));
        let plan = plan_of(vec![completed(0, 0.5), completed(1, 10.0), completed(2, 11.0)]);
        s.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(10)),vec![
            probe_update(0),
            probe_update(1),
            probe_update(2),
        ]);
        let d = s.drain(0);
        assert_eq!(d.folded.len(), 1, "the window closed after the first arrival");
        assert_eq!(s.pending(), 2);
        // Next cycle: the window re-anchors at the advanced clock
        // (0.5 s → deadline 2.5 s). The 10 s arrival folds because at
        // least one update always does; the 11 s one is past the window.
        let d2 = s.drain(1);
        assert_eq!(d2.folded.len(), 1);
        assert_eq!(d2.stale, 1);
        // Third cycle: clock at 10 s, window to 12 s covers the 11 s
        // arrival.
        let d3 = s.drain(2);
        assert_eq!(d3.folded.len(), 1);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn arrival_rate_trigger_never_fuses_an_empty_buffer() {
        // The first arrival is far beyond the window; the trigger must
        // not close the buffer before at least one update folds.
        let mut s = AsyncScheduler::new(AsyncConfig::new(2).max_staleness(8).aggregate_after(1.0));
        let plan = plan_of(vec![completed(0, 50.0), completed(1, 60.0)]);
        s.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(10)),vec![probe_update(0), probe_update(1)]);
        let d = s.drain(0);
        assert_eq!(d.folded.len(), 1, "the first update always folds");
        assert_eq!(d.folded[0].0.client, 0);
    }

    #[test]
    fn zero_delay_arrivals_fill_the_buffer_despite_a_tiny_window() {
        // The sync-equivalence anchor: everything arrives at t=0, inside
        // any positive window, so the trigger never fires and the drain
        // is identical to the un-triggered one.
        let plan = plan_of(vec![completed(0, 0.0), completed(1, 0.0), completed(2, 0.0)]);
        let updates = || vec![probe_update(0), probe_update(1), probe_update(2)];
        let mut plain = AsyncScheduler::new(AsyncConfig::new(3).max_staleness(8));
        plain.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(10)),updates());
        let mut trig =
            AsyncScheduler::new(AsyncConfig::new(3).max_staleness(8).aggregate_after(1e-9));
        trig.dispatch(0, &plan, &uniform(&plan, WirePayload::symmetric(10)),updates());
        assert_eq!(plain.drain(0), trig.drain(0));
    }
}
