//! Payload compression for federated communication: uniform int8
//! quantization of weight snapshots (cf. HeteroSAg's heterogeneous
//! quantization, which the paper cites among communication-efficiency
//! work). Orthogonal to FedKEMF's knowledge-network idea — the harness
//! can stack the two and measure combined savings.
//!
//! A [`QuantizedWeights`] is wire data: it may arrive truncated or
//! corrupted from an unreliable client, so decoding validates the
//! structure and returns a [`CompressError`] instead of indexing out of
//! bounds.
//!
//! Int8 is also a *compute* format here, not just a wire format: the
//! serializable [`ComputePrecision`] switch maps onto
//! [`kemf_nn::layer::Precision`] and routes a model's GEMM-backed layers
//! through the symmetric int8 engine (`kemf_tensor::quant`) — the
//! server's quantized ensemble-logit pass. The property tests at the
//! bottom pin the quantize → int8-forward round trip to its analytic
//! error bound.

use kemf_nn::layer::Precision;
use kemf_nn::serialize::Weights;
use serde::{Deserialize, Serialize};

/// Serializable compute-format switch for inference passes (the config
/// counterpart of [`kemf_nn::layer::Precision`], which stays
/// serde-free). Default is exact f32; `Int8` is an inference-only
/// approximation for ensemble-logit computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ComputePrecision {
    /// Exact f32 forward (default; required for training).
    #[default]
    F32,
    /// Symmetric per-row/per-column int8 quantized forward.
    Int8,
}

impl ComputePrecision {
    /// The layer-level precision this switch selects.
    pub fn to_layer(self) -> Precision {
        match self {
            ComputePrecision::F32 => Precision::F32,
            ComputePrecision::Int8 => Precision::Int8,
        }
    }
}

/// A uniformly-quantized weight snapshot: int8 codes plus a per-chunk
/// affine dequantization `(scale, zero_point)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizedWeights {
    /// Int8 codes, one per scalar.
    pub codes: Vec<i8>,
    /// Per-chunk scale factors.
    pub scales: Vec<f32>,
    /// Per-chunk minimum values (affine offset).
    pub offsets: Vec<f32>,
    /// Chunk length used at quantization time.
    pub chunk: usize,
    /// Original per-parameter lengths (restored on dequantize).
    pub lens: Vec<usize>,
}

/// Why a quantized payload could not be encoded or decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// Chunk length of zero — no block structure to decode.
    ZeroChunk,
    /// The number of per-chunk headers does not match the code count.
    ChunkMismatch {
        /// Chunks implied by `codes.len()` and `chunk`.
        expected: usize,
        /// `scales.len()` actually present.
        scales: usize,
        /// `offsets.len()` actually present.
        offsets: usize,
    },
    /// `lens` does not partition the decoded values.
    LenMismatch {
        /// Sum of the declared per-parameter lengths.
        lens_total: usize,
        /// Number of codes actually present.
        codes: usize,
    },
    /// A scale or offset is NaN/infinite, or input weights were.
    NonFinite,
    /// A wire-encoded payload ended before its declared contents.
    Truncated {
        /// Bytes the declared structure needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::ZeroChunk => write!(f, "chunk length must be positive"),
            CompressError::ChunkMismatch { expected, scales, offsets } => write!(
                f,
                "expected {expected} chunk headers, got {scales} scales / {offsets} offsets"
            ),
            CompressError::LenMismatch { lens_total, codes } => {
                write!(f, "lens sum to {lens_total} but payload has {codes} codes")
            }
            CompressError::NonFinite => write!(f, "non-finite value in payload"),
            CompressError::Truncated { needed, got } => {
                write!(f, "wire payload truncated: needs {needed} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Quantization chunk size: per-chunk ranges adapt to local weight
/// magnitudes (layers differ by orders of magnitude).
pub const DEFAULT_CHUNK: usize = 256;

/// Quantize a snapshot to int8 with per-chunk affine ranges. Rejects a
/// zero chunk length and non-finite weights (a NaN would poison the
/// chunk's range and decode as garbage on every peer).
pub fn quantize(w: &Weights, chunk: usize) -> Result<QuantizedWeights, CompressError> {
    if chunk == 0 {
        return Err(CompressError::ZeroChunk);
    }
    if w.values.iter().any(|v| !v.is_finite()) {
        return Err(CompressError::NonFinite);
    }
    let mut codes = Vec::with_capacity(w.values.len());
    let mut scales = Vec::new();
    let mut offsets = Vec::new();
    for block in w.values.chunks(chunk) {
        let lo = block.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = block.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let range = (hi - lo).max(1e-12);
        let scale = range / 255.0;
        scales.push(scale);
        offsets.push(lo);
        for &v in block {
            let code = ((v - lo) / scale).round().clamp(0.0, 255.0) as i32 - 128;
            codes.push(code as i8);
        }
    }
    Ok(QuantizedWeights { codes, scales, offsets, chunk, lens: w.lens.clone() })
}

/// Reconstruct an approximate snapshot. Validates the payload first —
/// a truncated or corrupted [`QuantizedWeights`] returns an error
/// instead of panicking out of bounds in the server loop.
pub fn dequantize(q: &QuantizedWeights) -> Result<Weights, CompressError> {
    q.validate()?;
    let mut values = Vec::with_capacity(q.codes.len());
    for (bi, block) in q.codes.chunks(q.chunk).enumerate() {
        let scale = q.scales[bi];
        let lo = q.offsets[bi];
        for &c in block {
            values.push(lo + ((c as i32 + 128) as f32) * scale);
        }
    }
    Ok(Weights { values, lens: q.lens.clone() })
}

impl QuantizedWeights {
    /// Check structural integrity: chunk length positive, exactly one
    /// `(scale, offset)` header per chunk of codes, finite headers, and
    /// `lens` partitioning the codes.
    pub fn validate(&self) -> Result<(), CompressError> {
        if self.chunk == 0 {
            return Err(CompressError::ZeroChunk);
        }
        let expected = self.codes.len().div_ceil(self.chunk);
        if self.scales.len() != expected || self.offsets.len() != expected {
            return Err(CompressError::ChunkMismatch {
                expected,
                scales: self.scales.len(),
                offsets: self.offsets.len(),
            });
        }
        if self.scales.iter().chain(self.offsets.iter()).any(|v| !v.is_finite()) {
            return Err(CompressError::NonFinite);
        }
        let lens_total: usize = self.lens.iter().sum();
        if lens_total != self.codes.len() {
            return Err(CompressError::LenMismatch { lens_total, codes: self.codes.len() });
        }
        Ok(())
    }

    /// Wire size in bytes: one byte per scalar plus the per-chunk header.
    pub fn bytes(&self) -> usize {
        self.codes.len() + 8 * self.scales.len()
    }

    /// Compression ratio versus fp32.
    pub fn ratio(&self) -> f64 {
        (self.codes.len() * 4) as f64 / self.bytes() as f64
    }

    /// Encode to the transport wire format: length-prefixed sections in
    /// a fixed order, little-endian throughout. The inverse of
    /// [`QuantizedWeights::from_wire`].
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 * 4 + self.codes.len() + 4 * (self.scales.len() + self.offsets.len())
                + 8 * self.lens.len(),
        );
        out.extend_from_slice(&(self.codes.len() as u64).to_le_bytes());
        out.extend(self.codes.iter().map(|&c| c as u8));
        out.extend_from_slice(&(self.scales.len() as u64).to_le_bytes());
        for s in &self.scales {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&(self.offsets.len() as u64).to_le_bytes());
        for o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&(self.chunk as u64).to_le_bytes());
        out.extend_from_slice(&(self.lens.len() as u64).to_le_bytes());
        for l in &self.lens {
            out.extend_from_slice(&(*l as u64).to_le_bytes());
        }
        out
    }

    /// Decode the transport wire format written by
    /// [`QuantizedWeights::to_wire`]. Every section length is checked
    /// against the remaining bytes before allocation, so truncated or
    /// corrupted inputs surface as [`CompressError::Truncated`] — never
    /// a panic or an unbounded allocation.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, CompressError> {
        fn take<'a>(
            bytes: &'a [u8],
            at: &mut usize,
            n: usize,
        ) -> Result<&'a [u8], CompressError> {
            let end = at
                .checked_add(n)
                .ok_or(CompressError::Truncated { needed: usize::MAX, got: bytes.len() })?;
            let s = bytes
                .get(*at..end)
                .ok_or(CompressError::Truncated { needed: end, got: bytes.len() })?;
            *at = end;
            Ok(s)
        }
        // A section length no input of this size could hold is
        // corruption, not a request to allocate petabytes.
        fn read_len(bytes: &[u8], at: &mut usize, cap: usize) -> Result<usize, CompressError> {
            let raw = u64::from_le_bytes(take(bytes, at, 8)?.try_into().expect("8-byte slice"));
            if raw > cap as u64 {
                return Err(CompressError::Truncated { needed: raw as usize, got: cap });
            }
            Ok(raw as usize)
        }
        let mut at = 0usize;
        let n_codes = read_len(bytes, &mut at, bytes.len())?;
        let codes: Vec<i8> = take(bytes, &mut at, n_codes)?.iter().map(|&b| b as i8).collect();
        let n_scales = read_len(bytes, &mut at, bytes.len() / 4 + 1)?;
        let mut scales = Vec::with_capacity(n_scales);
        for c in take(bytes, &mut at, n_scales * 4)?.chunks_exact(4) {
            scales.push(f32::from_le_bytes(c.try_into().expect("4-byte slice")));
        }
        let n_offsets = read_len(bytes, &mut at, bytes.len() / 4 + 1)?;
        let mut offsets = Vec::with_capacity(n_offsets);
        for c in take(bytes, &mut at, n_offsets * 4)?.chunks_exact(4) {
            offsets.push(f32::from_le_bytes(c.try_into().expect("4-byte slice")));
        }
        let chunk = read_len(bytes, &mut at, usize::MAX - 1)?;
        let n_lens = read_len(bytes, &mut at, bytes.len() / 8 + 1)?;
        let mut lens = Vec::with_capacity(n_lens);
        for l in take(bytes, &mut at, n_lens * 8)?.chunks_exact(8) {
            lens.push(u64::from_le_bytes(l.try_into().expect("8-byte slice")) as usize);
        }
        if at != bytes.len() {
            return Err(CompressError::Truncated { needed: at, got: bytes.len() });
        }
        Ok(QuantizedWeights { codes, scales, offsets, chunk, lens })
    }
}

/// Worst-case absolute reconstruction error of a quantize→dequantize
/// round trip (measured, not theoretical).
pub fn max_abs_error(original: &Weights, restored: &Weights) -> f32 {
    original
        .values
        .iter()
        .zip(restored.values.iter())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_nn::model::Model;
    use kemf_nn::models::{Arch, ModelSpec};

    fn snapshot() -> Weights {
        Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1)).weights()
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let w = snapshot();
        let q = quantize(&w, DEFAULT_CHUNK).unwrap();
        let restored = dequantize(&q).unwrap();
        assert_eq!(restored.values.len(), w.values.len());
        assert_eq!(restored.lens, w.lens);
        let max_scale = q.scales.iter().copied().fold(0.0f32, f32::max);
        let err = max_abs_error(&w, &restored);
        assert!(err <= max_scale * 0.5 + 1e-6, "error {err} vs half-step {}", max_scale * 0.5);
    }

    #[test]
    fn wire_codec_round_trips_exactly() {
        let w = snapshot();
        let q = quantize(&w, DEFAULT_CHUNK).unwrap();
        let wire = q.to_wire();
        let back = QuantizedWeights::from_wire(&wire).unwrap();
        assert_eq!(back, q, "wire round trip must be lossless");
        back.validate().unwrap();
    }

    #[test]
    fn wire_codec_rejects_truncation_at_every_cut() {
        let w = Weights { values: (0..80).map(|i| i as f32 * 0.1).collect(), lens: vec![50, 30] };
        let q = quantize(&w, 32).unwrap();
        let wire = q.to_wire();
        // Any strict prefix must fail loudly, never panic or mis-decode.
        for cut in 0..wire.len() {
            let err = QuantizedWeights::from_wire(&wire[..cut]);
            assert!(err.is_err(), "prefix of {cut}/{} bytes decoded", wire.len());
        }
        // Trailing garbage is corruption too.
        let mut long = wire.clone();
        long.push(0);
        assert!(QuantizedWeights::from_wire(&long).is_err());
    }

    #[test]
    fn wire_codec_rejects_hostile_section_lengths() {
        // A header declaring more codes than the buffer could ever hold
        // must be refused before any allocation happens.
        let mut hostile = vec![0u8; 16];
        hostile[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            QuantizedWeights::from_wire(&hostile),
            Err(CompressError::Truncated { .. })
        ));
    }

    #[test]
    fn achieves_near_4x_compression() {
        let w = snapshot();
        let q = quantize(&w, DEFAULT_CHUNK).unwrap();
        assert!(q.ratio() > 3.5, "ratio {}", q.ratio());
        assert!(q.bytes() < w.bytes() / 3);
    }

    #[test]
    fn quantized_model_predictions_stay_close() {
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 2);
        let mut m = Model::new(spec);
        let mut rng = kemf_tensor::rng::seeded_rng(5);
        let x = kemf_tensor::Tensor::randn(&[8, 1, 12, 12], 1.0, &mut rng);
        let before = m.predict(&x);
        let q = quantize(&m.weights(), DEFAULT_CHUNK).unwrap();
        m.set_weights(&dequantize(&q).unwrap());
        let after = m.predict(&x);
        // Top-1 decisions should rarely flip on an untrained net's margins;
        // logits must stay numerically close.
        let diff: f32 = before
            .data()
            .iter()
            .zip(after.data().iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 0.2, "max logit drift {diff}");
    }

    #[test]
    fn constant_block_quantizes_exactly() {
        let w = Weights { values: vec![0.25; 100], lens: vec![100] };
        let restored = dequantize(&quantize(&w, 32).unwrap()).unwrap();
        kemf_tensor::assert_close(&restored.values, &w.values, 1e-6);
    }

    #[test]
    fn ragged_tail_chunk_handled() {
        let w = Weights { values: (0..77).map(|i| i as f32 / 10.0).collect(), lens: vec![77] };
        let q = quantize(&w, 32).unwrap();
        assert_eq!(q.scales.len(), 3);
        let restored = dequantize(&q).unwrap();
        assert!(max_abs_error(&w, &restored) < 0.05);
    }

    #[test]
    fn quantize_rejects_bad_input() {
        let w = Weights { values: vec![1.0, f32::NAN], lens: vec![2] };
        assert_eq!(quantize(&w, 32).unwrap_err(), CompressError::NonFinite);
        let w = Weights { values: vec![1.0, f32::INFINITY], lens: vec![2] };
        assert_eq!(quantize(&w, 32).unwrap_err(), CompressError::NonFinite);
        let ok = Weights { values: vec![1.0, 2.0], lens: vec![2] };
        assert_eq!(quantize(&ok, 0).unwrap_err(), CompressError::ZeroChunk);
    }

    #[test]
    fn dequantize_rejects_corrupt_payloads() {
        let w = Weights { values: (0..64).map(|i| i as f32).collect(), lens: vec![64] };
        let good = quantize(&w, 16).unwrap();

        // Truncated header vector: used to index out of bounds.
        let mut q = good.clone();
        q.scales.pop();
        assert!(matches!(dequantize(&q), Err(CompressError::ChunkMismatch { .. })));

        // Zero chunk: used to panic inside `chunks(0)`.
        let mut q = good.clone();
        q.chunk = 0;
        assert_eq!(dequantize(&q).unwrap_err(), CompressError::ZeroChunk);

        // Lens that no longer partition the payload.
        let mut q = good.clone();
        q.lens = vec![63];
        assert!(matches!(dequantize(&q), Err(CompressError::LenMismatch { .. })));

        // A NaN header smuggled past quantization.
        let mut q = good.clone();
        q.offsets[0] = f32::NAN;
        assert_eq!(dequantize(&q).unwrap_err(), CompressError::NonFinite);

        // The untouched payload still decodes.
        assert!(dequantize(&good).is_ok());
    }

    #[test]
    fn compute_precision_maps_to_layer_precision() {
        use kemf_nn::layer::Precision;
        assert_eq!(ComputePrecision::default(), ComputePrecision::F32);
        assert_eq!(ComputePrecision::F32.to_layer(), Precision::F32);
        assert_eq!(ComputePrecision::Int8.to_layer(), Precision::Int8);
        // Round-trips through serde for config files.
        let json = serde_json::to_string(&ComputePrecision::Int8).unwrap();
        assert_eq!(serde_json::from_str::<ComputePrecision>(&json).unwrap(), ComputePrecision::Int8);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use kemf_tensor::gemm::{gemm_naive, Store};
    use kemf_tensor::quant;
    use kemf_tensor::rng::seeded_rng;
    use proptest::prelude::*;
    use rand::Rng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Wire round trip: every element lands within half a
        /// quantization step of its chunk.
        #[test]
        fn wire_roundtrip_within_half_step(
            pool in prop::collection::vec(-8.0f32..8.0, 300),
            len in 1usize..300,
            chunk in 1usize..64,
        ) {
            let values = pool[..len].to_vec();
            let w = Weights { values: values.clone(), lens: vec![values.len()] };
            let q = quantize(&w, chunk).unwrap();
            let r = dequantize(&q).unwrap();
            for (bi, block) in values.chunks(chunk).enumerate() {
                let tol = q.scales[bi] * 0.5 + 1e-5;
                for (a, b) in block.iter().zip(&r.values[bi * chunk..]) {
                    prop_assert!((a - b).abs() <= tol, "{a} vs {b} (half-step {tol})");
                }
            }
        }

        /// Full round trip of the server's quantized inference: weights
        /// cross the wire (affine int8), then the forward pass itself
        /// runs in the symmetric int8 compute format. The end-to-end
        /// error stays within the sum of the compute-format bound
        /// (actual scales) and the wire error propagated through the
        /// product (k · max|x| · half-step).
        #[test]
        fn quantize_then_int8_forward_within_combined_bound(
            m in 1usize..6,
            k in 1usize..48,
            n in 1usize..16,
            seed in 0u64..1_000_000,
        ) {
            let mut rng = seeded_rng(seed);
            let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let wmat: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

            // Wire leg: weights travel as affine int8 chunks.
            let w = Weights { values: wmat.clone(), lens: vec![wmat.len()] };
            let q = quantize(&w, DEFAULT_CHUNK).unwrap();
            let restored = dequantize(&q).unwrap().values;
            let wire_half_step = q.scales.iter().copied().fold(0.0f32, f32::max) * 0.5;

            // Compute leg: symmetric int8 GEMM over the restored weights
            // ([n, k] is exactly the Linear weight layout).
            let mut qa = vec![0i8; quant::a_codes_len(m, k)];
            let mut sa = vec![0.0f32; m];
            quant::quantize_a_rows(&x, m, k, &mut qa, &mut sa);
            let mut bp = vec![0i8; quant::b_pack_len(k, n)];
            let mut sb = vec![0.0f32; n];
            quant::pack_b_transposed(&restored, n, k, &mut bp, &mut sb);
            let mut got = vec![0.0f32; m * n];
            quant::gemm_i8(m, k, n, &qa, &sa, &bp, &sb, &mut Store { c: &mut got, ldc: n });

            let exact = gemm_naive(m, k, n, |i, kk| x[i * k + kk], |kk, j| wmat[j * k + kk]);
            for i in 0..m {
                let max_a = x[i * k..(i + 1) * k].iter().fold(0.0f32, |mx, &v| mx.max(v.abs()));
                for j in 0..n {
                    let max_b = restored[j * k..(j + 1) * k]
                        .iter()
                        .fold(0.0f32, |mx, &v| mx.max(v.abs()));
                    let bound = quant::error_bound(k, max_a, sa[i], max_b, sb[j])
                        + k as f32 * max_a * wire_half_step;
                    let err = (got[i * n + j] - exact[i * n + j]).abs();
                    prop_assert!(
                        err <= bound * 1.05 + 1e-4,
                        "({i},{j}): err {err} > bound {bound}"
                    );
                }
            }
        }
    }
}
