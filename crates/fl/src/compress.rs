//! Payload compression for federated communication: uniform int8
//! quantization of weight snapshots (cf. HeteroSAg's heterogeneous
//! quantization, which the paper cites among communication-efficiency
//! work). Orthogonal to FedKEMF's knowledge-network idea — the harness
//! can stack the two and measure combined savings.

use kemf_nn::serialize::Weights;
use serde::{Deserialize, Serialize};

/// A uniformly-quantized weight snapshot: int8 codes plus a per-chunk
/// affine dequantization `(scale, zero_point)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuantizedWeights {
    /// Int8 codes, one per scalar.
    pub codes: Vec<i8>,
    /// Per-chunk scale factors.
    pub scales: Vec<f32>,
    /// Per-chunk minimum values (affine offset).
    pub offsets: Vec<f32>,
    /// Chunk length used at quantization time.
    pub chunk: usize,
    /// Original per-parameter lengths (restored on dequantize).
    pub lens: Vec<usize>,
}

/// Quantization chunk size: per-chunk ranges adapt to local weight
/// magnitudes (layers differ by orders of magnitude).
pub const DEFAULT_CHUNK: usize = 256;

/// Quantize a snapshot to int8 with per-chunk affine ranges.
pub fn quantize(w: &Weights, chunk: usize) -> QuantizedWeights {
    assert!(chunk > 0, "chunk must be positive");
    let mut codes = Vec::with_capacity(w.values.len());
    let mut scales = Vec::new();
    let mut offsets = Vec::new();
    for block in w.values.chunks(chunk) {
        let lo = block.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = block.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let range = (hi - lo).max(1e-12);
        let scale = range / 255.0;
        scales.push(scale);
        offsets.push(lo);
        for &v in block {
            let code = ((v - lo) / scale).round().clamp(0.0, 255.0) as i32 - 128;
            codes.push(code as i8);
        }
    }
    QuantizedWeights { codes, scales, offsets, chunk, lens: w.lens.clone() }
}

/// Reconstruct an approximate snapshot.
pub fn dequantize(q: &QuantizedWeights) -> Weights {
    let mut values = Vec::with_capacity(q.codes.len());
    for (bi, block) in q.codes.chunks(q.chunk).enumerate() {
        let scale = q.scales[bi];
        let lo = q.offsets[bi];
        for &c in block {
            values.push(lo + ((c as i32 + 128) as f32) * scale);
        }
    }
    Weights { values, lens: q.lens.clone() }
}

impl QuantizedWeights {
    /// Wire size in bytes: one byte per scalar plus the per-chunk header.
    pub fn bytes(&self) -> usize {
        self.codes.len() + 8 * self.scales.len()
    }

    /// Compression ratio versus fp32.
    pub fn ratio(&self) -> f64 {
        (self.codes.len() * 4) as f64 / self.bytes() as f64
    }
}

/// Worst-case absolute reconstruction error of a quantize→dequantize
/// round trip (measured, not theoretical).
pub fn max_abs_error(original: &Weights, restored: &Weights) -> f32 {
    original
        .values
        .iter()
        .zip(restored.values.iter())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_nn::model::Model;
    use kemf_nn::models::{Arch, ModelSpec};

    fn snapshot() -> Weights {
        Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1)).weights()
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let w = snapshot();
        let q = quantize(&w, DEFAULT_CHUNK);
        let restored = dequantize(&q);
        assert_eq!(restored.values.len(), w.values.len());
        assert_eq!(restored.lens, w.lens);
        let max_scale = q.scales.iter().copied().fold(0.0f32, f32::max);
        let err = max_abs_error(&w, &restored);
        assert!(err <= max_scale * 0.5 + 1e-6, "error {err} vs half-step {}", max_scale * 0.5);
    }

    #[test]
    fn achieves_near_4x_compression() {
        let w = snapshot();
        let q = quantize(&w, DEFAULT_CHUNK);
        assert!(q.ratio() > 3.5, "ratio {}", q.ratio());
        assert!(q.bytes() < w.bytes() / 3);
    }

    #[test]
    fn quantized_model_predictions_stay_close() {
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 2);
        let mut m = Model::new(spec);
        let mut rng = kemf_tensor::rng::seeded_rng(5);
        let x = kemf_tensor::Tensor::randn(&[8, 1, 12, 12], 1.0, &mut rng);
        let before = m.predict(&x);
        let q = quantize(&m.weights(), DEFAULT_CHUNK);
        m.set_weights(&dequantize(&q));
        let after = m.predict(&x);
        // Top-1 decisions should rarely flip on an untrained net's margins;
        // logits must stay numerically close.
        let diff: f32 = before
            .data()
            .iter()
            .zip(after.data().iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 0.2, "max logit drift {diff}");
    }

    #[test]
    fn constant_block_quantizes_exactly() {
        let w = Weights { values: vec![0.25; 100], lens: vec![100] };
        let restored = dequantize(&quantize(&w, 32));
        kemf_tensor::assert_close(&restored.values, &w.values, 1e-6);
    }

    #[test]
    fn ragged_tail_chunk_handled() {
        let w = Weights { values: (0..77).map(|i| i as f32 / 10.0).collect(), lens: vec![77] };
        let q = quantize(&w, 32);
        assert_eq!(q.scales.len(), 3);
        let restored = dequantize(&q);
        assert!(max_abs_error(&w, &restored) < 0.05);
    }
}
