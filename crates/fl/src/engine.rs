//! The federated round loop: client sampling, fault-aware per-round
//! lifecycle execution, evaluation, and history recording — generic over
//! [`FedAlgorithm`].

use crate::comm::CommTracker;
use crate::context::FlContext;
use crate::lifecycle::{plan_round, FaultConfig, RoundPlan, WirePayload};
use crate::metrics::{History, RoundRecord};
use crate::trace::{Counters, EventSink, NoopSink, Phase, RoundScope, TraceSink};
use kemf_tensor::rng::{child_seed, seeded_rng};
use rand::seq::SliceRandom;
use rand::rngs::StdRng;
use std::time::Instant;

/// What one communication round reports back to the engine. Byte
/// accounting no longer lives here: the engine derives it from the
/// round's lifecycle plan and [`FedAlgorithm::payload_per_client`], so
/// algorithms cannot under-count clients that failed mid-round.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundOutcome {
    /// Mean local training loss across reporting clients.
    pub train_loss: f32,
}

/// A federated-learning algorithm the engine can drive.
pub trait FedAlgorithm: Send {
    /// Display name used in histories and tables.
    fn name(&self) -> String;

    /// One-time setup before round 0 (allocate per-client state, ...).
    fn init(&mut self, ctx: &FlContext);

    /// Bytes a single client transfers this round, per direction. The
    /// engine multiplies downlink by the broadcast set and uplink by the
    /// completed-upload set, so per-phase failures are charged honestly.
    fn payload_per_client(&self) -> WirePayload;

    /// Execute one communication round over the client indices whose
    /// full lifecycle (download → train → upload) succeeded. `scope` is
    /// the round's observability handle: implementations wrap their
    /// client fan-out in [`Phase::LocalUpdate`] and their server-side
    /// aggregation/distillation in [`Phase::Fusion`] via
    /// [`RoundScope::phase`] (a no-op branch when tracing is off).
    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> RoundOutcome;

    /// Evaluate the current global model on the held-out test set.
    fn evaluate(&mut self, ctx: &FlContext) -> f32;

    /// The current global model, when the algorithm has one it deploys to
    /// clients: its spec and transmitted state. Used by the multi-model
    /// harness (Table 3) to measure per-client local accuracy of the
    /// deployed model. Default: none.
    fn global_model(&self) -> Option<(kemf_nn::models::ModelSpec, kemf_nn::serialize::ModelState)> {
        None
    }
}

/// Draw the round's client subset: a seeded shuffle of all clients,
/// truncated to the configured ratio (sorted for determinism of any
/// order-dependent aggregation). An empty population yields an empty
/// sample — `clamp(1, 0)` used to panic here; configs reject
/// `n_clients == 0` up front in [`crate::config::FlConfig::validate`].
pub fn sample_clients(n_clients: usize, count: usize, rng: &mut StdRng) -> Vec<usize> {
    if n_clients == 0 {
        return Vec::new();
    }
    let mut ids: Vec<usize> = (0..n_clients).collect();
    ids.shuffle(rng);
    ids.truncate(count.clamp(1, n_clients));
    ids.sort_unstable();
    ids
}

/// Legacy single-knob failure injection: drop each sampled client with
/// probability `dropout_prob`, keeping at least one survivor. Superseded
/// by the lifecycle executor ([`FaultConfig`] models *where* in the round
/// a client fails); kept for callers that only need a thinned set.
pub fn apply_dropout(sampled: &[usize], dropout_prob: f32, rng: &mut StdRng) -> Vec<usize> {
    if dropout_prob <= 0.0 {
        return sampled.to_vec();
    }
    use rand::Rng;
    let mut survivors: Vec<usize> =
        sampled.iter().copied().filter(|_| rng.gen::<f32>() >= dropout_prob).collect();
    if survivors.is_empty() {
        let keep = sampled[rng.gen_range(0..sampled.len())];
        survivors.push(keep);
    }
    survivors
}

/// Install the process-wide compute thread pool exactly once, sized by the
/// `KEMF_THREADS` environment variable (unset or `0` = one worker per
/// available core). Every parallel region in the workspace — the packed
/// GEMM's row blocks, per-client round execution — draws from this single
/// pool, so oversubscription can't happen no matter how the layers nest.
/// Safe to call from multiple entry points; only the first call configures.
pub fn init_thread_pool() -> usize {
    use std::sync::OnceLock;
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        let requested = std::env::var("KEMF_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        // A failure means a pool already exists (e.g. a test harness built
        // one); inherit it rather than abort.
        let _ = rayon::ThreadPoolBuilder::new().num_threads(requested).build_global();
        rayon::current_num_threads()
    })
}

/// Run a full federated training session and return its history. Fault
/// injection comes from the context's config ([`crate::config::FlConfig::fault_plan`]).
pub fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
    let faults = ctx.cfg.fault_plan();
    run_with_faults(algo, ctx, &faults)
}

/// Run a session under an explicit fault model.
pub fn run_with_faults(
    algo: &mut dyn FedAlgorithm,
    ctx: &FlContext,
    faults: &FaultConfig,
) -> History {
    run_traced(algo, ctx, faults).0
}

/// Run a session and also return each round's lifecycle plan, for
/// wall-clock simulation ([`crate::network::NetworkModel::lifecycle_round_time`])
/// and fault post-mortems.
pub fn run_traced(
    algo: &mut dyn FedAlgorithm,
    ctx: &FlContext,
    faults: &FaultConfig,
) -> (History, Vec<RoundPlan>) {
    run_with_sink(algo, ctx, faults, &mut NoopSink)
}

/// Run a session with a [`TraceSink`] recording every round-lifecycle
/// span; the resulting trace is attached to the history
/// ([`History::trace`]). Tracing reads clocks and counters but draws no
/// randomness, so the per-round records are bit-identical to an
/// untraced run at the same seed.
pub fn run_recorded(
    algo: &mut dyn FedAlgorithm,
    ctx: &FlContext,
    faults: &FaultConfig,
) -> (History, Vec<RoundPlan>) {
    let mut sink = TraceSink::new();
    let (mut history, plans) = run_with_sink(algo, ctx, faults, &mut sink);
    history.trace = Some(sink.into_trace());
    (history, plans)
}

/// The round loop, generic over the observability sink. With a disabled
/// sink ([`NoopSink`]) every tracing site reduces to one branch and the
/// behavior is exactly the pre-observability engine.
pub fn run_with_sink(
    algo: &mut dyn FedAlgorithm,
    ctx: &FlContext,
    faults: &FaultConfig,
    sink: &mut dyn EventSink,
) -> (History, Vec<RoundPlan>) {
    init_thread_pool();
    ctx.cfg.validate();
    faults.validate();
    algo.init(ctx);
    let mut history = History::new(algo.name());
    let mut comm = CommTracker::new();
    let mut plans = Vec::with_capacity(ctx.cfg.rounds);
    let mut rng = seeded_rng(child_seed(ctx.cfg.seed, 0x5A4D_504C)); // "SMPL"
    let mut fault_rng = seeded_rng(child_seed(ctx.cfg.seed, 0xD209));
    let per_round = ctx.cfg.sampled_per_round();
    for round in 0..ctx.cfg.rounds {
        let mut scope = RoundScope::new(&mut *sink, round);
        let round_t0 = scope.enabled().then(Instant::now);
        let (sampled, plan) = scope.phase(Phase::Sample, |c| {
            let sampled = sample_clients(ctx.cfg.n_clients, per_round, &mut rng);
            let plan = plan_round(&sampled, faults, &mut fault_rng);
            c.clients = sampled.len();
            (sampled, plan)
        });
        let round_comm = scope.phase(Phase::Broadcast, |c| {
            let round_comm = plan.comm(algo.payload_per_client());
            c.clients = round_comm.down_clients;
            c.down_bytes = round_comm.down_bytes;
            round_comm
        });
        let reporters = plan.reporters();
        let quorum_met = plan.quorum_met();
        // Quorum failure: the broadcast (and any stray uploads) already
        // cost bytes, but the server discards the round — the algorithm
        // never runs and the previous global state carries over. No
        // clients report, so there is no training loss to record: NaN,
        // not 0.0 (which every loss series would read as *perfect*).
        let train_loss = if quorum_met {
            algo.round(round, &reporters, ctx, &mut scope).train_loss
        } else {
            f32::NAN
        };
        scope.phase(Phase::Upload, |c| {
            c.clients = round_comm.up_clients;
            c.up_bytes = round_comm.up_bytes;
            c.wasted_up_bytes = round_comm.wasted_up_bytes;
        });
        comm.record_round(round_comm);
        let acc = scope.phase(Phase::Eval, |_c| algo.evaluate(ctx));
        history.push(RoundRecord {
            round,
            test_acc: acc,
            train_loss,
            cum_bytes: comm.total(),
            down_bytes: round_comm.down_bytes,
            up_bytes: round_comm.up_bytes,
            wasted_up_bytes: round_comm.wasted_up_bytes,
            down_clients: round_comm.down_clients,
            up_clients: round_comm.up_clients,
            quorum_met,
        });
        if let Some(t0) = round_t0 {
            scope.record_raw(
                Phase::Round,
                t0.elapsed().as_secs_f64(),
                Counters {
                    clients: sampled.len(),
                    down_bytes: round_comm.down_bytes,
                    up_bytes: round_comm.up_bytes,
                    wasted_up_bytes: round_comm.wasted_up_bytes,
                    quorum_met,
                    ..Default::default()
                },
            );
        }
        plans.push(plan);
    }
    (history, plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use kemf_data::synth::{SynthConfig, SynthTask};

    struct Dummy {
        evals: usize,
        rounds_seen: Vec<Vec<usize>>,
    }

    impl FedAlgorithm for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }
        fn init(&mut self, _ctx: &FlContext) {}
        fn payload_per_client(&self) -> WirePayload {
            WirePayload { down_bytes: 10, up_bytes: 5 }
        }
        fn round(
            &mut self,
            _round: usize,
            sampled: &[usize],
            _ctx: &FlContext,
            _scope: &mut RoundScope<'_>,
        ) -> RoundOutcome {
            self.rounds_seen.push(sampled.to_vec());
            RoundOutcome { train_loss: 1.0 }
        }
        fn evaluate(&mut self, _ctx: &FlContext) -> f32 {
            self.evals += 1;
            0.5
        }
    }

    fn tiny_ctx() -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(0));
        let train = task.generate(120, 0);
        let test = task.generate(40, 1);
        let cfg = FlConfig {
            n_clients: 6,
            sample_ratio: 0.5,
            rounds: 4,
            min_per_client: 2,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    #[test]
    fn engine_runs_all_rounds_and_tracks_bytes() {
        let ctx = tiny_ctx();
        let mut algo = Dummy { evals: 0, rounds_seen: Vec::new() };
        let h = run(&mut algo, &ctx);
        assert_eq!(h.rounds(), 4);
        assert_eq!(algo.evals, 4);
        // 3 clients per round, each charged 10 down + 5 up.
        assert_eq!(h.total_bytes(), 4 * 3 * 15);
        // 6 clients × 0.5 = 3 sampled per round, unique and in range.
        for s in &algo.rounds_seen {
            assert_eq!(s.len(), 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&k| k < 6));
        }
        // Per-round records carry the per-phase split.
        for r in &h.records {
            assert_eq!(r.down_bytes, 30);
            assert_eq!(r.up_bytes, 15);
            assert_eq!(r.wasted_up_bytes, 0);
            assert_eq!((r.down_clients, r.up_clients), (3, 3));
            assert!(r.quorum_met);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(1);
        for _ in 0..5 {
            assert_eq!(sample_clients(20, 8, &mut a), sample_clients(20, 8, &mut b));
        }
    }

    #[test]
    fn sampling_empty_population_yields_empty_round() {
        // Regression: `count.clamp(1, 0)` panicked (min > max). The
        // config layer rejects n_clients == 0, but the sampler itself
        // must stay total.
        let mut rng = seeded_rng(5);
        assert!(sample_clients(0, 3, &mut rng).is_empty());
        assert!(sample_clients(0, 0, &mut rng).is_empty());
    }

    #[test]
    fn sampling_varies_across_rounds() {
        let mut rng = seeded_rng(2);
        let r1 = sample_clients(30, 12, &mut rng);
        let r2 = sample_clients(30, 12, &mut rng);
        assert_ne!(r1, r2);
    }

    #[test]
    fn dropout_thins_rounds_but_never_empties_them() {
        let mut rng = seeded_rng(9);
        let sampled: Vec<usize> = (0..10).collect();
        let mut total = 0usize;
        for _ in 0..200 {
            let s = apply_dropout(&sampled, 0.5, &mut rng);
            assert!(!s.is_empty());
            assert!(s.iter().all(|k| sampled.contains(k)));
            total += s.len();
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 5.0).abs() < 0.5, "mean survivors {mean}");
        // Zero probability is the identity.
        assert_eq!(apply_dropout(&sampled, 0.0, &mut rng), sampled);
    }

    #[test]
    fn dropout_charges_full_broadcast_but_thinned_uplink() {
        let mut ctx = tiny_ctx();
        ctx.cfg.dropout_prob = 0.5;
        let mut algo = Dummy { evals: 0, rounds_seen: Vec::new() };
        let h = run(&mut algo, &ctx);
        assert_eq!(h.rounds(), 4);
        let mut dropped_any = false;
        for (r, s) in h.records.iter().zip(&algo.rounds_seen) {
            // The crash happens after download: downlink covers the full
            // broadcast set regardless of who survives.
            assert_eq!(r.down_clients, 3);
            assert_eq!(r.down_bytes, 3 * 10);
            // Uplink covers exactly the survivors the algorithm saw.
            assert_eq!(r.up_clients, s.len());
            assert_eq!(r.up_bytes, s.len() as u64 * 5);
            dropped_any |= s.len() < 3;
        }
        assert!(dropped_any, "seeded 50% dropout should thin at least one round");
    }

    #[test]
    fn engine_runs_with_heavy_dropout() {
        let mut ctx = tiny_ctx();
        ctx.cfg.dropout_prob = 0.8;
        let mut algo = Dummy { evals: 0, rounds_seen: Vec::new() };
        let h = run(&mut algo, &ctx);
        assert_eq!(h.rounds(), 4);
        // Rounds where everyone crashed abort on quorum and never reach
        // the algorithm; the rest see only survivors.
        let aborted = h.records.iter().filter(|r| !r.quorum_met).count();
        assert_eq!(algo.rounds_seen.len() + aborted, 4);
        for s in &algo.rounds_seen {
            assert!(!s.is_empty());
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn quorum_failure_skips_algorithm_but_charges_broadcast() {
        let ctx = tiny_ctx();
        let faults = FaultConfig {
            drop_after_download: 0.95,
            min_quorum: 3,
            ..Default::default()
        };
        let mut algo = Dummy { evals: 0, rounds_seen: Vec::new() };
        let h = run_with_faults(&mut algo, &ctx, &faults);
        assert_eq!(h.rounds(), 4);
        assert_eq!(algo.evals, 4, "evaluation still happens every round");
        let aborted: Vec<_> = h.records.iter().filter(|r| !r.quorum_met).collect();
        assert!(!aborted.is_empty(), "95% dropout cannot sustain a 3-client quorum");
        for r in &aborted {
            assert_eq!(r.down_bytes, 30, "broadcast bytes charged even when aborted");
            assert!(r.up_clients < 3);
            assert!(
                r.train_loss.is_nan(),
                "no client reported, so there is no loss — NaN, never a perfect-looking 0.0"
            );
        }
        assert_eq!(
            algo.rounds_seen.len(),
            h.records.iter().filter(|r| r.quorum_met).count()
        );
    }

    #[test]
    fn traced_run_exposes_lifecycle_plans() {
        let ctx = tiny_ctx();
        let faults = FaultConfig { drop_after_download: 0.4, ..Default::default() };
        let mut algo = Dummy { evals: 0, rounds_seen: Vec::new() };
        let (h, plans) = run_traced(&mut algo, &ctx, &faults);
        assert_eq!(plans.len(), 4);
        for (r, plan) in h.records.iter().zip(&plans) {
            assert_eq!(r.down_clients, plan.broadcast_count());
            assert_eq!(r.up_clients, plan.reporters().len());
        }
    }

    #[test]
    fn faultless_run_is_identical_to_legacy_engine() {
        // The no-fault path must not consume fault randomness or alter
        // sampling: run() with default faults and run_with_faults(reliable)
        // agree exactly, including per-round byte records.
        let ctx = tiny_ctx();
        let mut a = Dummy { evals: 0, rounds_seen: Vec::new() };
        let ha = run(&mut a, &ctx);
        let mut b = Dummy { evals: 0, rounds_seen: Vec::new() };
        let hb = run_with_faults(&mut b, &ctx, &FaultConfig::reliable());
        assert_eq!(a.rounds_seen, b.rounds_seen);
        assert_eq!(ha.to_json(), hb.to_json());
    }

    #[test]
    fn thread_pool_init_is_idempotent() {
        let a = init_thread_pool();
        let b = init_thread_pool();
        assert_eq!(a, b);
        assert!(a >= 1);
        assert_eq!(a, rayon::current_num_threads());
    }

    #[test]
    fn context_exposes_partition_stats() {
        let ctx = tiny_ctx();
        assert_eq!(ctx.client_data.len(), 6);
        assert_eq!(ctx.total_train_samples(), 120);
        assert!(ctx.heterogeneity > 0.0);
        assert_eq!(ctx.classes(), 10);
    }
}
