//! The federated round loop: client sampling, per-round execution,
//! evaluation, and history recording — generic over [`FedAlgorithm`].

use crate::comm::CommTracker;
use crate::context::FlContext;
use crate::metrics::{History, RoundRecord};
use kemf_tensor::rng::{child_seed, seeded_rng};
use rand::seq::SliceRandom;
use rand::rngs::StdRng;

/// What one communication round reports back to the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundOutcome {
    /// Bytes the server sent to sampled clients this round.
    pub down_bytes: u64,
    /// Bytes sampled clients sent to the server this round.
    pub up_bytes: u64,
    /// Mean local training loss across sampled clients.
    pub train_loss: f32,
}

/// A federated-learning algorithm the engine can drive.
pub trait FedAlgorithm: Send {
    /// Display name used in histories and tables.
    fn name(&self) -> String;

    /// One-time setup before round 0 (allocate per-client state, ...).
    fn init(&mut self, ctx: &FlContext);

    /// Execute one communication round over the sampled client indices.
    fn round(&mut self, round: usize, sampled: &[usize], ctx: &FlContext) -> RoundOutcome;

    /// Evaluate the current global model on the held-out test set.
    fn evaluate(&mut self, ctx: &FlContext) -> f32;

    /// The current global model, when the algorithm has one it deploys to
    /// clients: its spec and transmitted state. Used by the multi-model
    /// harness (Table 3) to measure per-client local accuracy of the
    /// deployed model. Default: none.
    fn global_model(&self) -> Option<(kemf_nn::models::ModelSpec, kemf_nn::serialize::ModelState)> {
        None
    }
}

/// Draw the round's client subset: a seeded shuffle of all clients,
/// truncated to the configured ratio (sorted for determinism of any
/// order-dependent aggregation).
pub fn sample_clients(n_clients: usize, count: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..n_clients).collect();
    ids.shuffle(rng);
    ids.truncate(count.clamp(1, n_clients));
    ids.sort_unstable();
    ids
}

/// Failure injection: drop each sampled client with probability
/// `dropout_prob`, keeping at least one survivor (a round with zero
/// reporting clients would stall every aggregation rule).
pub fn apply_dropout(sampled: &[usize], dropout_prob: f32, rng: &mut StdRng) -> Vec<usize> {
    if dropout_prob <= 0.0 {
        return sampled.to_vec();
    }
    use rand::Rng;
    let mut survivors: Vec<usize> =
        sampled.iter().copied().filter(|_| rng.gen::<f32>() >= dropout_prob).collect();
    if survivors.is_empty() {
        let keep = sampled[rng.gen_range(0..sampled.len())];
        survivors.push(keep);
    }
    survivors
}

/// Install the process-wide compute thread pool exactly once, sized by the
/// `KEMF_THREADS` environment variable (unset or `0` = one worker per
/// available core). Every parallel region in the workspace — the packed
/// GEMM's row blocks, per-client round execution — draws from this single
/// pool, so oversubscription can't happen no matter how the layers nest.
/// Safe to call from multiple entry points; only the first call configures.
pub fn init_thread_pool() -> usize {
    use std::sync::OnceLock;
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        let requested = std::env::var("KEMF_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        // A failure means a pool already exists (e.g. a test harness built
        // one); inherit it rather than abort.
        let _ = rayon::ThreadPoolBuilder::new().num_threads(requested).build_global();
        rayon::current_num_threads()
    })
}

/// Run a full federated training session and return its history.
pub fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
    init_thread_pool();
    algo.init(ctx);
    let mut history = History::new(algo.name());
    let mut comm = CommTracker::new();
    let mut rng = seeded_rng(child_seed(ctx.cfg.seed, 0x5A4D_504C)); // "SMPL"
    let mut drop_rng = seeded_rng(child_seed(ctx.cfg.seed, 0xD209));
    let per_round = ctx.cfg.sampled_per_round();
    for round in 0..ctx.cfg.rounds {
        let sampled = sample_clients(ctx.cfg.n_clients, per_round, &mut rng);
        let sampled = apply_dropout(&sampled, ctx.cfg.dropout_prob, &mut drop_rng);
        let out = algo.round(round, &sampled, ctx);
        comm.record(out.down_bytes, out.up_bytes);
        let acc = algo.evaluate(ctx);
        history.push(RoundRecord {
            round,
            test_acc: acc,
            train_loss: out.train_loss,
            cum_bytes: comm.total(),
        });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use kemf_data::synth::{SynthConfig, SynthTask};

    struct Dummy {
        evals: usize,
        rounds_seen: Vec<Vec<usize>>,
    }

    impl FedAlgorithm for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }
        fn init(&mut self, _ctx: &FlContext) {}
        fn round(&mut self, _round: usize, sampled: &[usize], _ctx: &FlContext) -> RoundOutcome {
            self.rounds_seen.push(sampled.to_vec());
            RoundOutcome { down_bytes: 10, up_bytes: 5, train_loss: 1.0 }
        }
        fn evaluate(&mut self, _ctx: &FlContext) -> f32 {
            self.evals += 1;
            0.5
        }
    }

    fn tiny_ctx() -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(0));
        let train = task.generate(120, 0);
        let test = task.generate(40, 1);
        let cfg = FlConfig {
            n_clients: 6,
            sample_ratio: 0.5,
            rounds: 4,
            min_per_client: 2,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    #[test]
    fn engine_runs_all_rounds_and_tracks_bytes() {
        let ctx = tiny_ctx();
        let mut algo = Dummy { evals: 0, rounds_seen: Vec::new() };
        let h = run(&mut algo, &ctx);
        assert_eq!(h.rounds(), 4);
        assert_eq!(algo.evals, 4);
        assert_eq!(h.total_bytes(), 4 * 15);
        // 6 clients × 0.5 = 3 sampled per round, unique and in range.
        for s in &algo.rounds_seen {
            assert_eq!(s.len(), 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&k| k < 6));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(1);
        for _ in 0..5 {
            assert_eq!(sample_clients(20, 8, &mut a), sample_clients(20, 8, &mut b));
        }
    }

    #[test]
    fn sampling_varies_across_rounds() {
        let mut rng = seeded_rng(2);
        let r1 = sample_clients(30, 12, &mut rng);
        let r2 = sample_clients(30, 12, &mut rng);
        assert_ne!(r1, r2);
    }

    #[test]
    fn dropout_thins_rounds_but_never_empties_them() {
        let mut rng = seeded_rng(9);
        let sampled: Vec<usize> = (0..10).collect();
        let mut total = 0usize;
        for _ in 0..200 {
            let s = apply_dropout(&sampled, 0.5, &mut rng);
            assert!(!s.is_empty());
            assert!(s.iter().all(|k| sampled.contains(k)));
            total += s.len();
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 5.0).abs() < 0.5, "mean survivors {mean}");
        // Zero probability is the identity.
        assert_eq!(apply_dropout(&sampled, 0.0, &mut rng), sampled);
    }

    #[test]
    fn engine_runs_with_heavy_dropout() {
        let mut ctx = tiny_ctx();
        ctx.cfg.dropout_prob = 0.8;
        let mut algo = Dummy { evals: 0, rounds_seen: Vec::new() };
        let h = run(&mut algo, &ctx);
        assert_eq!(h.rounds(), 4);
        for s in &algo.rounds_seen {
            assert!(!s.is_empty(), "every round keeps at least one client");
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn thread_pool_init_is_idempotent() {
        let a = init_thread_pool();
        let b = init_thread_pool();
        assert_eq!(a, b);
        assert!(a >= 1);
        assert_eq!(a, rayon::current_num_threads());
    }

    #[test]
    fn context_exposes_partition_stats() {
        let ctx = tiny_ctx();
        assert_eq!(ctx.client_data.len(), 6);
        assert_eq!(ctx.total_train_samples(), 120);
        assert!(ctx.heterogeneity > 0.0);
        assert_eq!(ctx.classes(), 10);
    }
}
