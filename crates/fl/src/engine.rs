//! The federated round loop: client sampling, fault-aware per-round
//! lifecycle execution, evaluation, history recording, and
//! crash-consistent checkpoint/resume — generic over [`FedAlgorithm`].
//!
//! The single entry point is [`Engine::run`] with a [`RunOptions`]
//! bundle (faults, observability sink, checkpoint policy, resume
//! source, seed override).
//!
//! **Resume is bit-exact.** All engine randomness flows through two
//! seeded streams (client sampling and fault injection). A checkpoint
//! stores the completed rounds' records and the algorithm's full
//! [`AlgorithmState`]; on resume the engine *replays* both RNG streams
//! over the completed rounds — re-deriving each round's sample and
//! lifecycle plan — and verifies one probe draw per stream against the
//! checkpoint before continuing. A resumed run's final [`History`]
//! therefore serializes byte-identically to an uninterrupted run at the
//! same seed (enforced by `tests/resume.rs` and the CI smoke).

use crate::checkpoint::{self, CheckpointError, CheckpointPolicy, LoadError, RunCheckpoint};
use crate::client_store::StoreError;
use crate::comm::{CommTracker, CostError};
use crate::config::ConfigError;
use crate::context::FlContext;
use crate::lifecycle::{plan_round, ClientPlan, FaultConfig, RoundComm, RoundPlan};
use crate::metrics::{History, RoundRecord};
use crate::scheduler::{AsyncScheduler, PreparedUpdate, RoundMode};
use crate::state::{AlgorithmState, RestoreError};
use crate::transport::{SocketConfig, SocketTransport, TransportError, TransportMode, TransportStats};
use crate::trace::{Counters, EventSink, NoopSink, Phase, RoundScope, TraceSink};
use kemf_tensor::rng::{child_seed, seeded_rng};
use rand::rngs::StdRng;
use rand::RngCore;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// What one communication round reports back to the engine. Byte
/// accounting no longer lives here: the engine derives it from the
/// round's lifecycle plan and [`FedAlgorithm::client_plans`], so
/// algorithms cannot under-count clients that failed mid-round.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundOutcome {
    /// Mean local training loss across reporting clients.
    pub train_loss: f32,
}

/// A federated-learning algorithm the engine can drive.
pub trait FedAlgorithm: Send {
    /// Display name used in histories and tables.
    fn name(&self) -> String;

    /// One-time setup before round 0 (allocate per-client state, ...).
    /// Inconsistent setup (e.g. a per-client spec list whose length is
    /// not the client count) is a typed error the engine surfaces
    /// instead of aborting the process.
    fn init(&mut self, ctx: &FlContext) -> Result<(), ConfigError> {
        let _ = ctx;
        Ok(())
    }

    /// One [`ClientPlan`] per entry of `sampled`, in order: what view of
    /// the server model each sampled client receives this round
    /// (full weights, a rolling sub-model window, or logits) and the
    /// bytes it moves per direction. The engine bills downlink for the
    /// broadcast set and uplink for the completed-upload set *per
    /// client*, so per-phase failures and heterogeneous payloads are
    /// both charged honestly. Algorithms with one uniform payload build
    /// their plans with [`ClientPlan::uniform`], which reproduces the
    /// pre-redesign `payload × n` accounting bit for bit.
    fn client_plans(&self, round: usize, sampled: &[usize]) -> Vec<ClientPlan>;

    /// Execute one communication round over the client indices whose
    /// full lifecycle (download → train → upload) succeeded. `scope` is
    /// the round's observability handle: implementations wrap their
    /// client fan-out in [`Phase::LocalUpdate`] and their server-side
    /// aggregation/distillation in [`Phase::Fusion`] via
    /// [`RoundScope::phase`] (a no-op branch when tracing is off).
    ///
    /// A round that cannot complete — a corrupt client-state slot, a
    /// failed spill read — returns a typed [`EngineError`] (usually
    /// [`EngineError::State`]) and the engine surfaces it to the
    /// caller; it must not panic the process.
    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError>;

    /// Train the sampled cohort against the *current* global model
    /// without fusing: one [`PreparedUpdate`] per entry of `sampled`,
    /// in order. The buffered-asynchronous scheduler banks these and
    /// fuses them — possibly cycles later, staleness-weighted — via
    /// [`fuse`](Self::fuse). Every side effect the synchronous
    /// [`round`](Self::round) applies at aggregation time must be
    /// deferred: per-client store commits ride in
    /// [`PreparedUpdate::commit`] and are applied by `fuse` only for
    /// updates that actually fold in. The default rejects asynchronous
    /// rounds with a typed error, so synchronous-only algorithms fail
    /// fast instead of silently diverging.
    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        let _ = (wave, sampled, ctx, scope);
        Err(EngineError::Config(ConfigError::AlgorithmSetup {
            algorithm: self.name(),
            reason: "buffered-asynchronous rounds are not supported by this algorithm".into(),
        }))
    }

    /// Fuse a buffer of prepared updates into the global model, each at
    /// its staleness weight (`1.0` means fresh; the fold must be
    /// bit-identical to the synchronous fold when every weight is
    /// `1.0`). Consumes the buffer — deferred store commits of folded
    /// updates are applied here, and an empty buffer reports NaN loss
    /// without touching state (mirroring a synchronous empty round).
    fn fuse(
        &mut self,
        round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        let _ = (round, updates, ctx, scope);
        Err(EngineError::Config(ConfigError::AlgorithmSetup {
            algorithm: self.name(),
            reason: "buffered-asynchronous rounds are not supported by this algorithm".into(),
        }))
    }

    /// Evaluate the current global model on the held-out test set.
    fn evaluate(&mut self, ctx: &FlContext) -> f32;

    /// Export *everything* the algorithm owns — every model, per-client
    /// tensor, and scalar — as a versioned [`AlgorithmState`] bundle.
    /// The contract: feeding the bundle back through [`restore`](Self::restore)
    /// on a freshly initialized instance must continue the run as if it
    /// never stopped (any state forgotten here shows up as a history
    /// diff in the resume tests). A store-backed algorithm whose export
    /// hits an unreadable or corrupt client slot returns a typed error
    /// instead of panicking. The default is the empty bundle, for
    /// stateless probes.
    fn state(&self) -> Result<AlgorithmState, EngineError> {
        Ok(AlgorithmState::new(self.name(), 0))
    }

    /// Re-absorb a bundle produced by [`state`](Self::state) into an
    /// initialized instance. Implementations must validate the header
    /// and every entry's shape, returning a typed [`RestoreError`]
    /// rather than panicking.
    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 0)
    }

    /// The current global model, when the algorithm has one it deploys to
    /// clients: its spec and transmitted state. Used by the multi-model
    /// harness (Table 3) to measure per-client local accuracy of the
    /// deployed model. Default: none.
    fn global_model(&self) -> Option<(kemf_nn::models::ModelSpec, kemf_nn::serialize::ModelState)> {
        None
    }
}

/// Everything that parameterizes one engine run besides the algorithm
/// and context. Build it fluently:
///
/// ```no_run
/// # use kemf_fl::engine::RunOptions;
/// # use kemf_fl::checkpoint::CheckpointPolicy;
/// # use kemf_fl::lifecycle::FaultConfig;
/// let opts = RunOptions::new()
///     .faults(FaultConfig { drop_after_download: 0.1, ..Default::default() })
///     .checkpoint(CheckpointPolicy::new("/tmp/ckpts", 5))
///     .record_trace();
/// ```
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Explicit fault model; `None` uses the context's
    /// [`crate::config::FlConfig::fault_plan`].
    pub faults: Option<FaultConfig>,
    /// External observability sink; `None` with `record_trace` unset
    /// means no tracing at all.
    pub sink: Option<&'a mut dyn EventSink>,
    /// Record the run through an internal [`TraceSink`] and attach the
    /// trace to the history. Ignored when an external `sink` is given
    /// (the caller owns that sink's trace).
    pub record_trace: bool,
    /// Write crash-consistent checkpoints under this policy.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume from this checkpoint file — or checkpoint *directory*, in
    /// which case the newest loadable checkpoint wins.
    pub resume_from: Option<PathBuf>,
    /// Override the engine seed (sampler and fault streams, checkpoint
    /// fingerprint). `None` uses `cfg.seed`. Algorithm-internal
    /// randomness still derives from `cfg.seed`.
    pub seed: Option<u64>,
    /// How rounds advance: classic synchronous rounds (the default) or
    /// buffered-asynchronous cycles with staleness-weighted fusion.
    pub round_mode: RoundMode,
    /// How traffic travels: simulated in-process (the default,
    /// bit-identical to every earlier release) or real framed bytes over
    /// localhost sockets to a worker pool (see [`crate::transport`]).
    pub transport: TransportMode,
}

impl<'a> RunOptions<'a> {
    /// Default options: the context's fault plan, no tracing, no
    /// checkpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run under an explicit fault model.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Send round-lifecycle events to an external sink.
    pub fn sink(mut self, sink: &'a mut dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Record the run and attach the trace to the returned history.
    pub fn record_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Checkpoint every `policy.every` completed rounds into
    /// `policy.dir`.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Resume from a checkpoint file or directory.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Override the engine seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Select how rounds advance (see [`RoundMode`]).
    pub fn round_mode(mut self, mode: RoundMode) -> Self {
        self.round_mode = mode;
        self
    }

    /// Shorthand for [`RoundMode::Async`].
    pub fn async_rounds(mut self, cfg: crate::scheduler::AsyncConfig) -> Self {
        self.round_mode = RoundMode::Async(cfg);
        self
    }

    /// Select how traffic travels (see [`TransportMode`]).
    pub fn transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Shorthand for [`TransportMode::Socket`]: run every round's
    /// traffic as real framed bytes over localhost sockets.
    pub fn socket_transport(mut self, cfg: SocketConfig) -> Self {
        self.transport = TransportMode::Socket(cfg);
        self
    }
}

/// What a finished run hands back.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-round history (with trace attached when recorded).
    pub history: History,
    /// Each round's lifecycle plan — including replayed plans for rounds
    /// completed before a resume, so the report always covers the full
    /// horizon.
    pub plans: Vec<RoundPlan>,
    /// `Some(k)` when the run resumed after `k` completed rounds.
    pub resumed_from: Option<usize>,
    /// Checkpoint files written by this run, oldest first (pruned files
    /// excluded).
    pub checkpoints: Vec<PathBuf>,
    /// Final virtual clock of the asynchronous scheduler in simulated
    /// seconds — the time the server finished its last fused buffer.
    /// `None` for synchronous runs (wall-clock there is priced after
    /// the fact by [`crate::network::NetworkModel`]).
    pub sim_time_s: Option<f64>,
    /// Wire-level counters when the run traveled over the socket
    /// transport: frames, payload bytes by direction, and framing
    /// overhead. `None` for in-process runs.
    pub transport: Option<TransportStats>,
}

/// Why a run could not start or continue.
#[derive(Debug)]
pub enum EngineError {
    /// The run configuration (or effective fault model) is inconsistent.
    Config(ConfigError),
    /// The algorithm's own setup rejected the context.
    Init(ConfigError),
    /// Writing a checkpoint failed.
    Checkpoint(std::io::Error),
    /// Resuming from a checkpoint failed.
    Resume(ResumeError),
    /// A per-client state-store operation failed mid-round (unknown
    /// client slot, corrupt or unreadable spill file).
    State(StoreError),
    /// Byte accounting overflowed u64 (cumulative totals or a buffered
    /// cycle's uplink sum).
    Cost(CostError),
    /// The socket transport failed (worker spawn, socket i/o, protocol
    /// violation, or plan/wire desync).
    Transport(TransportError),
    /// The run's identity could not be fingerprinted (non-finite config
    /// floats would collide checkpoint identities).
    Fingerprint(CheckpointError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid configuration: {e}"),
            EngineError::Init(e) => write!(f, "algorithm init failed: {e}"),
            EngineError::Checkpoint(e) => write!(f, "checkpoint write failed: {e}"),
            EngineError::Resume(e) => write!(f, "resume failed: {e}"),
            EngineError::State(e) => write!(f, "client state store: {e}"),
            EngineError::Cost(e) => write!(f, "byte accounting: {e}"),
            EngineError::Transport(e) => write!(f, "socket transport: {e}"),
            EngineError::Fingerprint(e) => write!(f, "run identity: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::State(e)
    }
}

impl From<CostError> for EngineError {
    fn from(e: CostError) -> Self {
        EngineError::Cost(e)
    }
}

impl From<TransportError> for EngineError {
    fn from(e: TransportError) -> Self {
        EngineError::Transport(e)
    }
}

/// Why a checkpoint refused to resume the current run.
#[derive(Debug)]
pub enum ResumeError {
    /// Reading the checkpoint failed (missing, truncated, wrong format —
    /// the message names the file).
    Io(std::io::Error),
    /// The checkpoint directory exists but was never checkpointed into.
    NoCheckpoints {
        /// The directory scanned.
        dir: PathBuf,
    },
    /// Checkpoints exist but every candidate failed to load.
    AllCorrupt {
        /// The directory scanned.
        dir: PathBuf,
        /// Candidates tried, newest first.
        tried: usize,
        /// The last candidate's load error.
        last: std::io::Error,
    },
    /// The checkpoint was written by a run with a different identity
    /// (config, fault model, algorithm, or seed).
    FingerprintMismatch {
        /// Fingerprint of the current run.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// The checkpoint belongs to a different algorithm.
    AlgorithmMismatch {
        /// The algorithm being resumed.
        expected: String,
        /// The algorithm in the checkpoint.
        found: String,
    },
    /// The algorithm rejected the checkpointed state.
    Restore(RestoreError),
    /// Replaying an RNG stream over the completed rounds did not land on
    /// the probe stored at save time — the run would silently fork, so
    /// it refuses instead.
    StreamDiverged {
        /// `"sampler"` or `"fault"`.
        stream: &'static str,
    },
    /// The checkpoint claims more completed rounds than it has records
    /// for (corruption the format checks cannot see).
    Inconsistent {
        /// What was inconsistent.
        detail: String,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "{e}"),
            ResumeError::NoCheckpoints { dir } => {
                write!(f, "no round_*.ckpt checkpoints in {}", dir.display())
            }
            ResumeError::AllCorrupt { dir, tried, last } => write!(
                f,
                "all {tried} checkpoint(s) in {} failed to load; last error: {last}",
                dir.display()
            ),
            ResumeError::FingerprintMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch: run is {expected:#018x}, checkpoint is {found:#018x} \
                 (different config, fault model, algorithm, or seed)"
            ),
            ResumeError::AlgorithmMismatch { expected, found } => {
                write!(f, "checkpoint belongs to {found}, not {expected}")
            }
            ResumeError::Restore(e) => write!(f, "state restore: {e}"),
            ResumeError::StreamDiverged { stream } => write!(
                f,
                "{stream} RNG replay diverged from the checkpoint probe; refusing to fork the run"
            ),
            ResumeError::Inconsistent { detail } => write!(f, "inconsistent checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<LoadError> for ResumeError {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::Io(e) => ResumeError::Io(e),
            LoadError::NoCheckpoints { dir } => ResumeError::NoCheckpoints { dir },
            LoadError::AllCorrupt { dir, tried, last } => {
                ResumeError::AllCorrupt { dir, tried, last }
            }
        }
    }
}

/// Draw the round's client subset: a uniform `count`-element sample of
/// `0..n_clients` without replacement, sorted (for determinism of any
/// order-dependent aggregation). Implemented as a partial Fisher–Yates
/// shuffle over a sparse swap table, so time and memory are O(count) —
/// a 1%-sampled million-client round allocates ten thousand entries,
/// not a million-element shuffle. An empty population yields an empty
/// sample — `clamp(1, 0)` used to panic here; configs reject
/// `n_clients == 0` up front in [`crate::config::FlConfig::validate`].
pub fn sample_clients(n_clients: usize, count: usize, rng: &mut StdRng) -> Vec<usize> {
    use rand::Rng;
    if n_clients == 0 {
        return Vec::new();
    }
    let count = count.clamp(1, n_clients);
    if count == n_clients {
        return (0..n_clients).collect();
    }
    // Virtual array a[i] = i; `swaps` records only displaced entries.
    let mut swaps: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::with_capacity(count * 2);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let j = rng.gen_range(i..n_clients);
        let vj = swaps.get(&j).copied().unwrap_or(j);
        let vi = swaps.get(&i).copied().unwrap_or(i);
        out.push(vj);
        swaps.insert(j, vi);
    }
    out.sort_unstable();
    out
}

/// Legacy single-knob failure injection: drop each sampled client with
/// probability `dropout_prob`, keeping at least one survivor. Superseded
/// by the lifecycle executor ([`FaultConfig`] models *where* in the round
/// a client fails); kept for callers that only need a thinned set.
pub fn apply_dropout(sampled: &[usize], dropout_prob: f32, rng: &mut StdRng) -> Vec<usize> {
    if dropout_prob <= 0.0 {
        return sampled.to_vec();
    }
    use rand::Rng;
    let mut survivors: Vec<usize> =
        sampled.iter().copied().filter(|_| rng.gen::<f32>() >= dropout_prob).collect();
    if survivors.is_empty() {
        let keep = sampled[rng.gen_range(0..sampled.len())];
        survivors.push(keep);
    }
    survivors
}

/// Install the process-wide compute thread pool exactly once, sized by the
/// `KEMF_THREADS` environment variable (unset or `0` = one worker per
/// available core). Every parallel region in the workspace — the packed
/// GEMM's row blocks, per-client round execution — draws from this single
/// pool, so oversubscription can't happen no matter how the layers nest.
/// Safe to call from multiple entry points; only the first call configures.
pub fn init_thread_pool() -> usize {
    use std::sync::OnceLock;
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        let env_threads = std::env::var("KEMF_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let requested = env_threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
        // A build failure means a pool already exists (e.g. a test harness
        // built one); inherit it rather than abort — but if the user asked
        // for a specific width via KEMF_THREADS and lost, say so once
        // instead of silently running at the wrong parallelism.
        let already_built =
            rayon::ThreadPoolBuilder::new().num_threads(requested).build_global().is_err();
        let actual = rayon::current_num_threads();
        if already_built && env_threads.is_some() && actual != requested {
            eprintln!(
                "warning: KEMF_THREADS={requested} requested, but the global compute pool \
                 was already built with {actual} thread(s); inheriting the existing pool"
            );
        }
        actual
    })
}

/// One probe draw from a clone of the stream — reads the stream's
/// position without advancing it. Stored in checkpoints and compared
/// after replay.
fn probe(rng: &StdRng) -> u64 {
    rng.clone().next_u64()
}

/// The engine: a namespace for the canonical run/resume entry points.
pub struct Engine;

impl Engine {
    /// Run a federated training session under `opts`. This is the single
    /// canonical entry point; every legacy free function forwards here.
    pub fn run(
        algo: &mut dyn FedAlgorithm,
        ctx: &FlContext,
        mut opts: RunOptions<'_>,
    ) -> Result<RunReport, EngineError> {
        init_thread_pool();
        let record = opts.record_trace;
        match opts.sink.take() {
            Some(sink) => run_core(algo, ctx, &opts, sink),
            None if record => {
                let mut sink = TraceSink::new();
                let mut report = run_core(algo, ctx, &opts, &mut sink)?;
                report.history.trace = Some(sink.into_trace());
                Ok(report)
            }
            None => run_core(algo, ctx, &opts, &mut NoopSink),
        }
    }

    /// Resume a run from a checkpoint file or directory, with default
    /// options otherwise. Continue checkpointing by adding a policy:
    /// `Engine::run(algo, ctx, RunOptions::new().resume_from(dir).checkpoint(policy))`.
    pub fn resume(
        algo: &mut dyn FedAlgorithm,
        ctx: &FlContext,
        path: impl Into<PathBuf>,
    ) -> Result<RunReport, EngineError> {
        Self::run(algo, ctx, RunOptions::new().resume_from(path))
    }
}

/// The round loop, generic over the observability sink (`opts.sink` has
/// been taken by [`Engine::run`]). With a [`NoopSink`] every tracing
/// site reduces to one branch and behavior is exactly the
/// pre-observability engine.
fn run_core(
    algo: &mut dyn FedAlgorithm,
    ctx: &FlContext,
    opts: &RunOptions<'_>,
    sink: &mut dyn EventSink,
) -> Result<RunReport, EngineError> {
    ctx.cfg.validate().map_err(EngineError::Config)?;
    let faults = opts.faults.unwrap_or_else(|| ctx.cfg.fault_plan());
    faults.validate().map_err(EngineError::Config)?;
    let per_round = ctx.cfg.sampled_per_round();
    if faults.min_quorum > per_round {
        return Err(EngineError::Config(ConfigError::UnreachableQuorum {
            min_quorum: faults.min_quorum,
            sampled_per_round: per_round,
        }));
    }
    let async_cfg = match &opts.round_mode {
        RoundMode::Sync => None,
        RoundMode::Async(a) => {
            a.validate(per_round).map_err(EngineError::Config)?;
            Some(a.clone())
        }
    };
    algo.init(ctx).map_err(EngineError::Init)?;

    // The transport moves bytes for an already-drawn plan; it never
    // touches the RNG streams, so it stays out of the run fingerprint
    // and a checkpoint written over sockets resumes in-process (and
    // vice versa). Async cycles interleave arrivals across waves, which
    // the strictly round-scoped wire protocol cannot express.
    let socket_cfg = match &opts.transport {
        TransportMode::InProc => None,
        TransportMode::Socket(s) => {
            s.validate()?;
            if async_cfg.is_some() {
                return Err(EngineError::Transport(TransportError::Config {
                    reason: "buffered-asynchronous rounds are not supported over the socket \
                             transport; use RoundMode::Sync or TransportMode::InProc"
                        .into(),
                }));
            }
            Some(s)
        }
    };

    let algo_name = algo.name();
    let engine_seed = opts.seed.unwrap_or(ctx.cfg.seed);
    let fingerprint = checkpoint::run_fingerprint(&ctx.cfg, &faults, &algo_name, engine_seed)
        .map_err(EngineError::Fingerprint)?;
    // Async knobs change the trajectory, so they join the run identity;
    // synchronous fingerprints are exactly what they always were, and a
    // checkpoint can never resume across modes.
    let fingerprint = match &async_cfg {
        Some(a) => a.mix_fingerprint(fingerprint),
        None => fingerprint,
    };
    let mut scheduler = async_cfg.map(AsyncScheduler::new);
    let mut history = History::new(algo_name.clone());
    let mut comm = CommTracker::new();
    let mut plans = Vec::with_capacity(ctx.cfg.rounds);
    let mut rng = seeded_rng(child_seed(engine_seed, 0x5A4D_504C)); // "SMPL"
    let mut fault_rng = seeded_rng(child_seed(engine_seed, 0xD209));

    // Resume: restore algorithm state, then replay the engine's two RNG
    // streams over the completed rounds (cheap — draws only, no
    // training) and verify each against the checkpoint's probe.
    let mut start_round = 0usize;
    let mut resumed_from = None;
    if let Some(path) = &opts.resume_from {
        let ckpt = checkpoint::load_run(path)
            .map_err(|e| EngineError::Resume(ResumeError::from(e)))?;
        if ckpt.algorithm != algo_name {
            return Err(EngineError::Resume(ResumeError::AlgorithmMismatch {
                expected: algo_name,
                found: ckpt.algorithm,
            }));
        }
        if ckpt.fingerprint != fingerprint {
            return Err(EngineError::Resume(ResumeError::FingerprintMismatch {
                expected: fingerprint,
                found: ckpt.fingerprint,
            }));
        }
        if ckpt.records.len() != ckpt.next_round {
            return Err(EngineError::Resume(ResumeError::Inconsistent {
                detail: format!(
                    "{} records for {} completed rounds",
                    ckpt.records.len(),
                    ckpt.next_round
                ),
            }));
        }
        algo.restore(&ckpt.state)
            .map_err(|e| EngineError::Resume(ResumeError::Restore(e)))?;
        for _ in 0..ckpt.next_round {
            let sampled = sample_clients(ctx.cfg.n_clients, per_round, &mut rng);
            plans.push(plan_round(&sampled, &faults, &mut fault_rng));
        }
        if probe(&rng) != ckpt.sampler_check {
            return Err(EngineError::Resume(ResumeError::StreamDiverged { stream: "sampler" }));
        }
        if probe(&fault_rng) != ckpt.fault_check {
            return Err(EngineError::Resume(ResumeError::StreamDiverged { stream: "fault" }));
        }
        for r in &ckpt.records {
            comm.record_round(RoundComm {
                down_bytes: r.down_bytes,
                up_bytes: r.up_bytes,
                wasted_up_bytes: r.wasted_up_bytes,
                down_clients: r.down_clients,
                up_clients: r.up_clients,
            });
        }
        // The virtual clock and in-flight event queue are part of an
        // async run's trajectory; a checkpoint without them (or with
        // them, for a sync run) is from the other mode — unreachable
        // past the fingerprint check, but checked for defense in depth.
        match (scheduler.as_mut(), ckpt.scheduler) {
            (Some(s), Some(st)) => s.restore(st),
            (None, None) => {}
            (Some(_), None) => {
                return Err(EngineError::Resume(ResumeError::Inconsistent {
                    detail: "async resume needs scheduler state, checkpoint has none".into(),
                }));
            }
            (None, Some(_)) => {
                return Err(EngineError::Resume(ResumeError::Inconsistent {
                    detail: "checkpoint carries async scheduler state but the run is synchronous"
                        .into(),
                }));
            }
        }
        history.records = ckpt.records;
        start_round = ckpt.next_round;
        resumed_from = Some(start_round);
    }

    // Spin the worker pool up only once the run is actually going to
    // execute rounds — config/resume failures above never spawn sockets.
    let mut transport = match socket_cfg {
        Some(s) => Some(SocketTransport::start(s, faults.round_deadline_s)?),
        None => None,
    };

    let mut checkpoints = Vec::new();
    for round in start_round..ctx.cfg.rounds {
        let mut scope = RoundScope::new(&mut *sink, round);
        let round_t0 = scope.enabled().then(Instant::now);
        let (sampled, plan) = scope.phase(Phase::Sample, |c| {
            let sampled = sample_clients(ctx.cfg.n_clients, per_round, &mut rng);
            let plan = plan_round(&sampled, &faults, &mut fault_rng);
            c.clients = sampled.len();
            (sampled, plan)
        });
        let client_plans = algo.client_plans(round, &sampled);
        if client_plans.len() != sampled.len()
            || client_plans.iter().zip(&sampled).any(|(p, &k)| p.client != k)
        {
            return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                algorithm: algo.name(),
                reason: format!(
                    "client_plans returned {} plan(s) for {} sampled client(s), or the plans' \
                     client indices do not match the sample",
                    client_plans.len(),
                    sampled.len()
                ),
            }));
        }
        let payload_label = round_payload_label(&client_plans);
        // In-process, the round's traffic is priced by the closed-form
        // per-client plan arithmetic; over sockets, the same plans are
        // *enacted* as framed bytes and the measurement comes back from
        // the wire.
        let wave_comm = scope.phase(Phase::Broadcast, |c| {
            let round_comm = match transport.as_mut() {
                Some(t) => t
                    .run_round(round, &plan, &client_plans, algo.global_model())
                    .map_err(EngineError::Transport)?,
                None => plan.comm(&client_plans).map_err(EngineError::Cost)?,
            };
            c.clients = round_comm.down_clients;
            c.down_bytes = round_comm.down_bytes;
            c.payload_label = payload_label;
            Ok::<RoundComm, EngineError>(round_comm)
        })?;
        let (round_comm, quorum_met, train_loss) = if let Some(sched) = scheduler.as_mut() {
            run_async_cycle(
                algo,
                ctx,
                &faults,
                sched,
                round,
                &plan,
                &client_plans,
                wave_comm,
                &mut scope,
            )?
        } else {
            let reporters = plan.reporters();
            let quorum_met = plan.quorum_met();
            // Quorum failure: the broadcast (and any stray uploads) already
            // cost bytes, but the server discards the round — the algorithm
            // never runs and the previous global state carries over. No
            // clients report, so there is no training loss to record: NaN,
            // not 0.0 (which every loss series would read as *perfect*).
            let train_loss = if quorum_met {
                algo.round(round, &reporters, ctx, &mut scope)?.train_loss
            } else {
                f32::NAN
            };
            scope.phase(Phase::Upload, |c| {
                c.clients = wave_comm.up_clients;
                c.up_bytes = wave_comm.up_bytes;
                c.wasted_up_bytes = wave_comm.wasted_up_bytes;
            });
            (wave_comm, quorum_met, train_loss)
        };
        comm.record_round(round_comm);
        if let Some(label) = payload_label {
            history.payload_kind = label.to_string();
        }
        let acc = scope.phase(Phase::Eval, |_c| algo.evaluate(ctx));
        history.push(RoundRecord {
            round,
            test_acc: acc,
            train_loss,
            cum_bytes: comm.total()?,
            down_bytes: round_comm.down_bytes,
            up_bytes: round_comm.up_bytes,
            wasted_up_bytes: round_comm.wasted_up_bytes,
            down_clients: round_comm.down_clients,
            up_clients: round_comm.up_clients,
            quorum_met,
        });
        if let Some(t0) = round_t0 {
            scope.record_raw(
                Phase::Round,
                t0.elapsed().as_secs_f64(),
                Counters {
                    clients: sampled.len(),
                    down_bytes: round_comm.down_bytes,
                    up_bytes: round_comm.up_bytes,
                    wasted_up_bytes: round_comm.wasted_up_bytes,
                    quorum_met,
                    payload_label,
                    ..Default::default()
                },
            );
        }
        plans.push(plan);

        if let Some(policy) = &opts.checkpoint {
            let completed = round + 1;
            if completed % policy.every == 0 || completed == ctx.cfg.rounds {
                let ckpt = RunCheckpoint {
                    fingerprint,
                    next_round: completed,
                    algorithm: algo_name.clone(),
                    sampler_check: probe(&rng),
                    fault_check: probe(&fault_rng),
                    records: history.records.clone(),
                    state: algo.state()?,
                    scheduler: scheduler.as_ref().map(|s| s.state()),
                };
                let path =
                    checkpoint::save_run(&ckpt, &policy.dir).map_err(EngineError::Checkpoint)?;
                checkpoints.push(path);
                checkpoint::prune_checkpoints(&policy.dir, policy.keep)
                    .map_err(EngineError::Checkpoint)?;
            }
        }
    }
    let sim_time_s = scheduler.as_ref().map(|s| s.now());
    let transport = match transport.take() {
        Some(t) => Some(t.finish()?),
        None => None,
    };
    Ok(RunReport { history, plans, resumed_from, checkpoints, sim_time_s, transport })
}

/// One buffered-asynchronous aggregation cycle: train the wave's
/// reporters against the current global model, dispatch their
/// completions at simulated arrival times, drain the buffer, and fuse
/// the accepted updates at their staleness weights.
///
/// Byte accounting differs from the synchronous path only in *when*
/// uplink is charged: downlink (and in-flight upload retries) bill with
/// the wave that caused them, while each successful upload bills in the
/// cycle whose fused buffer consumed it, and an eviction bills its
/// payload as wasted. Updates still in flight when the run ends are
/// never charged — the server never received them.
#[allow(clippy::too_many_arguments)]
fn run_async_cycle(
    algo: &mut dyn FedAlgorithm,
    ctx: &FlContext,
    faults: &FaultConfig,
    sched: &mut AsyncScheduler,
    cycle: usize,
    plan: &RoundPlan,
    client_plans: &[ClientPlan],
    wave_comm: RoundComm,
    scope: &mut RoundScope<'_>,
) -> Result<(RoundComm, bool, f32), EngineError> {
    let reporters = plan.reporters();
    // Eager training at dispatch: the clients that will complete this
    // wave all saw the global model of cycle `cycle`, which is what
    // makes `cycle - wave` the honest staleness at fold time.
    let updates = if reporters.is_empty() {
        Vec::new()
    } else {
        algo.train_cohort(cycle, &reporters, ctx, scope)?
    };
    if updates.len() != reporters.len() {
        return Err(EngineError::Config(ConfigError::AlgorithmSetup {
            algorithm: algo.name(),
            reason: format!(
                "train_cohort returned {} update(s) for {} reporter(s)",
                updates.len(),
                reporters.len()
            ),
        }));
    }
    sched.dispatch(cycle, plan, client_plans, updates);
    let drained = scope.phase(Phase::Buffer, |c| {
        let d = sched.drain(cycle);
        c.clients = d.folded.len();
        c.stale_updates = d.stale;
        c.evicted_updates = d.evicted;
        d
    });
    let folded_n = drained.folded.len();
    // Same quorum rule as the synchronous `RoundPlan::quorum_met`, but
    // over the updates that actually reached the fused buffer.
    let quorum_met = folded_n >= faults.min_quorum.max(1);
    let train_loss = if quorum_met {
        algo.fuse(cycle, drained.folded, ctx, scope)?.train_loss
    } else {
        // Quorum abort discards the buffer wholesale — deferred store
        // commits never apply, exactly like a synchronous abort where
        // the algorithm never ran.
        f32::NAN
    };
    // Each event carries its own uplink bytes (summed in u128 by the
    // scheduler), so heterogeneous per-client payloads bill exactly.
    let to_u64 = |total: u128| {
        u64::try_from(total)
            .map_err(|_| EngineError::Cost(CostError::BufferedUplinkOverflow { total }))
    };
    let fused_up = to_u64(drained.folded_up_bytes)?;
    let evicted_up = to_u64(drained.evicted_up_bytes)?;
    let wasted_up_bytes = wave_comm.wasted_up_bytes.checked_add(evicted_up).ok_or(
        EngineError::Cost(CostError::ByteTotalOverflow {
            acc: wave_comm.wasted_up_bytes,
            add: evicted_up,
        }),
    )?;
    let round_comm = RoundComm {
        down_bytes: wave_comm.down_bytes,
        up_bytes: fused_up,
        wasted_up_bytes,
        down_clients: wave_comm.down_clients,
        up_clients: folded_n,
    };
    scope.phase(Phase::Upload, |c| {
        c.clients = round_comm.up_clients;
        c.up_bytes = round_comm.up_bytes;
        c.wasted_up_bytes = round_comm.wasted_up_bytes;
    });
    Ok((round_comm, quorum_met, train_loss))
}

/// The label naming what this round's payloads carry: the uniform view
/// label when every sampled client sees the same kind of payload,
/// `"mixed"` otherwise, `None` for an empty cohort.
fn round_payload_label(plans: &[ClientPlan]) -> Option<&'static str> {
    let first = plans.first()?.view.label();
    if plans.iter().all(|p| p.view.label() == first) {
        Some(first)
    } else {
        Some("mixed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::lifecycle::{ModelView, WirePayload};
    use crate::scheduler::{AsyncConfig, UpdatePayload};
    use kemf_data::synth::{SynthConfig, SynthTask};

    struct Dummy {
        evals: usize,
        rounds_seen: Vec<Vec<usize>>,
    }

    impl Dummy {
        fn new() -> Self {
            Dummy { evals: 0, rounds_seen: Vec::new() }
        }
    }

    impl FedAlgorithm for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }
        fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
            ClientPlan::uniform(
                sampled,
                ModelView::Full,
                WirePayload { down_bytes: 10, up_bytes: 5 },
            )
        }
        fn round(
            &mut self,
            _round: usize,
            sampled: &[usize],
            _ctx: &FlContext,
            _scope: &mut RoundScope<'_>,
        ) -> Result<RoundOutcome, EngineError> {
            self.rounds_seen.push(sampled.to_vec());
            Ok(RoundOutcome { train_loss: 1.0 })
        }
        fn train_cohort(
            &mut self,
            _wave: usize,
            sampled: &[usize],
            _ctx: &FlContext,
            _scope: &mut RoundScope<'_>,
        ) -> Result<Vec<PreparedUpdate>, EngineError> {
            self.rounds_seen.push(sampled.to_vec());
            Ok(sampled
                .iter()
                .map(|&client| PreparedUpdate {
                    client,
                    n_samples: 10,
                    steps: 5,
                    loss: 1.0,
                    payload: UpdatePayload::Empty,
                    commit: None,
                })
                .collect())
        }
        fn fuse(
            &mut self,
            _round: usize,
            updates: Vec<(PreparedUpdate, f32)>,
            _ctx: &FlContext,
            _scope: &mut RoundScope<'_>,
        ) -> Result<RoundOutcome, EngineError> {
            if updates.is_empty() {
                return Ok(RoundOutcome { train_loss: f32::NAN });
            }
            let loss: f32 = updates.iter().map(|(u, w)| w * u.loss).sum();
            Ok(RoundOutcome { train_loss: loss / updates.len() as f32 })
        }
        fn evaluate(&mut self, _ctx: &FlContext) -> f32 {
            self.evals += 1;
            0.5
        }
    }

    fn tiny_ctx() -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(0));
        let train = task.generate(120, 0);
        let test = task.generate(40, 1);
        let cfg = FlConfig {
            n_clients: 6,
            sample_ratio: 0.5,
            rounds: 4,
            min_per_client: 2,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    fn run_default(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    #[test]
    fn engine_runs_all_rounds_and_tracks_bytes() {
        let ctx = tiny_ctx();
        let mut algo = Dummy::new();
        let h = run_default(&mut algo, &ctx);
        assert_eq!(h.rounds(), 4);
        assert_eq!(algo.evals, 4);
        // 3 clients per round, each charged 10 down + 5 up.
        assert_eq!(h.total_bytes(), 4 * 3 * 15);
        // 6 clients × 0.5 = 3 sampled per round, unique and in range.
        for s in &algo.rounds_seen {
            assert_eq!(s.len(), 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&k| k < 6));
        }
        // Per-round records carry the per-phase split.
        for r in &h.records {
            assert_eq!(r.down_bytes, 30);
            assert_eq!(r.up_bytes, 15);
            assert_eq!(r.wasted_up_bytes, 0);
            assert_eq!((r.down_clients, r.up_clients), (3, 3));
            assert!(r.quorum_met);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(1);
        for _ in 0..5 {
            assert_eq!(sample_clients(20, 8, &mut a), sample_clients(20, 8, &mut b));
        }
    }

    #[test]
    fn sampling_empty_population_yields_empty_round() {
        // Regression: `count.clamp(1, 0)` panicked (min > max). The
        // config layer rejects n_clients == 0, but the sampler itself
        // must stay total.
        let mut rng = seeded_rng(5);
        assert!(sample_clients(0, 3, &mut rng).is_empty());
        assert!(sample_clients(0, 0, &mut rng).is_empty());
    }

    #[test]
    fn sampling_varies_across_rounds() {
        let mut rng = seeded_rng(2);
        let r1 = sample_clients(30, 12, &mut rng);
        let r2 = sample_clients(30, 12, &mut rng);
        assert_ne!(r1, r2);
    }

    #[test]
    fn sampling_is_uniform_sorted_and_cheap_at_population_scale() {
        let mut rng = seeded_rng(11);
        // A 1%-sampled million-client draw: O(count) partial
        // Fisher–Yates, no million-element shuffle.
        let s = sample_clients(1_000_000, 10_000, &mut rng);
        assert_eq!(s.len(), 10_000);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
        assert!(s.iter().all(|&k| k < 1_000_000));
        // Full-population sampling is the identity permutation.
        assert_eq!(sample_clients(5, 5, &mut rng), vec![0, 1, 2, 3, 4]);
        assert_eq!(sample_clients(5, 99, &mut rng), vec![0, 1, 2, 3, 4]);
        // Rough uniformity: the sample's mean index sits near the middle.
        let mean = s.iter().sum::<usize>() as f64 / s.len() as f64;
        assert!((mean - 500_000.0).abs() < 25_000.0, "mean index {mean}");
    }

    #[test]
    fn dropout_thins_rounds_but_never_empties_them() {
        let mut rng = seeded_rng(9);
        let sampled: Vec<usize> = (0..10).collect();
        let mut total = 0usize;
        for _ in 0..200 {
            let s = apply_dropout(&sampled, 0.5, &mut rng);
            assert!(!s.is_empty());
            assert!(s.iter().all(|k| sampled.contains(k)));
            total += s.len();
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 5.0).abs() < 0.5, "mean survivors {mean}");
        // Zero probability is the identity.
        assert_eq!(apply_dropout(&sampled, 0.0, &mut rng), sampled);
    }

    #[test]
    fn dropout_charges_full_broadcast_but_thinned_uplink() {
        let mut ctx = tiny_ctx();
        ctx.cfg.dropout_prob = 0.5;
        let mut algo = Dummy::new();
        let h = run_default(&mut algo, &ctx);
        assert_eq!(h.rounds(), 4);
        let mut dropped_any = false;
        for (r, s) in h.records.iter().zip(&algo.rounds_seen) {
            // The crash happens after download: downlink covers the full
            // broadcast set regardless of who survives.
            assert_eq!(r.down_clients, 3);
            assert_eq!(r.down_bytes, 3 * 10);
            // Uplink covers exactly the survivors the algorithm saw.
            assert_eq!(r.up_clients, s.len());
            assert_eq!(r.up_bytes, s.len() as u64 * 5);
            dropped_any |= s.len() < 3;
        }
        assert!(dropped_any, "seeded 50% dropout should thin at least one round");
    }

    #[test]
    fn engine_runs_with_heavy_dropout() {
        let mut ctx = tiny_ctx();
        ctx.cfg.dropout_prob = 0.8;
        let mut algo = Dummy::new();
        let h = run_default(&mut algo, &ctx);
        assert_eq!(h.rounds(), 4);
        // Rounds where everyone crashed abort on quorum and never reach
        // the algorithm; the rest see only survivors.
        let aborted = h.records.iter().filter(|r| !r.quorum_met).count();
        assert_eq!(algo.rounds_seen.len() + aborted, 4);
        for s in &algo.rounds_seen {
            assert!(!s.is_empty());
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn quorum_failure_skips_algorithm_but_charges_broadcast() {
        let ctx = tiny_ctx();
        let faults = FaultConfig {
            drop_after_download: 0.95,
            min_quorum: 3,
            ..Default::default()
        };
        let mut algo = Dummy::new();
        let h = Engine::run(&mut algo, &ctx, RunOptions::new().faults(faults))
            .unwrap()
            .history;
        assert_eq!(h.rounds(), 4);
        assert_eq!(algo.evals, 4, "evaluation still happens every round");
        let aborted: Vec<_> = h.records.iter().filter(|r| !r.quorum_met).collect();
        assert!(!aborted.is_empty(), "95% dropout cannot sustain a 3-client quorum");
        for r in &aborted {
            assert_eq!(r.down_bytes, 30, "broadcast bytes charged even when aborted");
            assert!(r.up_clients < 3);
            assert!(
                r.train_loss.is_nan(),
                "no client reported, so there is no loss — NaN, never a perfect-looking 0.0"
            );
        }
        assert_eq!(
            algo.rounds_seen.len(),
            h.records.iter().filter(|r| r.quorum_met).count()
        );
    }

    #[test]
    fn run_report_exposes_lifecycle_plans() {
        let ctx = tiny_ctx();
        let faults = FaultConfig { drop_after_download: 0.4, ..Default::default() };
        let mut algo = Dummy::new();
        let report = Engine::run(&mut algo, &ctx, RunOptions::new().faults(faults)).unwrap();
        assert_eq!(report.plans.len(), 4);
        assert!(report.resumed_from.is_none());
        assert!(report.checkpoints.is_empty());
        for (r, plan) in report.history.records.iter().zip(&report.plans) {
            assert_eq!(r.down_clients, plan.broadcast_count());
            assert_eq!(r.up_clients, plan.reporters().len());
        }
    }

    #[test]
    fn faultless_run_is_identical_to_legacy_engine() {
        // The no-fault path must not consume fault randomness or alter
        // sampling: default options and explicit reliable faults agree
        // exactly, including per-round byte records.
        let ctx = tiny_ctx();
        let mut a = Dummy::new();
        let ha = run_default(&mut a, &ctx);
        let mut b = Dummy::new();
        let hb = Engine::run(&mut b, &ctx, RunOptions::new().faults(FaultConfig::reliable()))
            .unwrap()
            .history;
        assert_eq!(a.rounds_seen, b.rounds_seen);
        assert_eq!(ha.to_json(), hb.to_json());
    }

    /// A probe whose plans deliberately misalign with the sample.
    struct Misaligned;

    impl FedAlgorithm for Misaligned {
        fn name(&self) -> String {
            "misaligned".into()
        }
        fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
            // Wrong client indices: every plan claims client 0.
            sampled
                .iter()
                .map(|_| ClientPlan {
                    client: 0,
                    view: ModelView::Full,
                    payload: WirePayload::symmetric(1),
                })
                .collect()
        }
        fn round(
            &mut self,
            _round: usize,
            _sampled: &[usize],
            _ctx: &FlContext,
            _scope: &mut RoundScope<'_>,
        ) -> Result<RoundOutcome, EngineError> {
            Ok(RoundOutcome { train_loss: 0.0 })
        }
        fn evaluate(&mut self, _ctx: &FlContext) -> f32 {
            0.0
        }
    }

    #[test]
    fn engine_rejects_misaligned_client_plans() {
        let ctx = tiny_ctx();
        let mut algo = Misaligned;
        match Engine::run(&mut algo, &ctx, RunOptions::new()) {
            Err(EngineError::Config(ConfigError::AlgorithmSetup { reason, .. })) => {
                assert!(reason.contains("client_plans"), "unhelpful rejection: {reason}");
            }
            other => panic!("expected a plan-alignment rejection, got {:?}", other.err()),
        }
    }

    #[test]
    fn engine_surfaces_config_errors_instead_of_panicking() {
        let mut ctx = tiny_ctx();
        ctx.cfg.rounds = 0; // mutated after construction: only the engine can catch it
        let mut algo = Dummy::new();
        match Engine::run(&mut algo, &ctx, RunOptions::new()) {
            Err(EngineError::Config(ConfigError::ZeroCount { field: "rounds" })) => {}
            other => panic!("expected config error, got {other:?}"),
        }
        // An unreachable quorum in explicit faults is caught too.
        let ctx = tiny_ctx();
        let faults = FaultConfig { min_quorum: 100, ..Default::default() };
        match Engine::run(&mut algo, &ctx, RunOptions::new().faults(faults)) {
            Err(EngineError::Config(ConfigError::UnreachableQuorum { .. })) => {}
            other => panic!("expected quorum error, got {other:?}"),
        }
    }

    #[test]
    fn checkpointed_dummy_run_resumes_bit_identically() {
        // The Dummy algorithm is stateless, so the trait's default
        // state()/restore() suffice — resume correctness here isolates
        // the engine's own replay machinery.
        let mut dir = std::env::temp_dir();
        dir.push(format!("kemf_engine_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let ctx = tiny_ctx();
        let mut straight = Dummy::new();
        let h_straight = run_default(&mut straight, &ctx);

        // Run only 2 of the 4 rounds, checkpointing every round.
        let mut short_ctx = tiny_ctx();
        short_ctx.cfg.rounds = 2;
        let mut first = Dummy::new();
        let report = Engine::run(
            &mut first,
            &short_ctx,
            RunOptions::new().checkpoint(CheckpointPolicy::new(&dir, 1)),
        )
        .unwrap();
        assert_eq!(report.checkpoints.len(), 2);

        // Resume to the full horizon.
        let mut resumed = Dummy::new();
        let report = Engine::run(&mut resumed, &ctx, RunOptions::new().resume_from(&dir)).unwrap();
        assert_eq!(report.resumed_from, Some(2));
        assert_eq!(report.plans.len(), 4, "replay reconstructs completed rounds' plans");
        assert_eq!(
            report.history.to_json(),
            h_straight.to_json(),
            "resumed history must be byte-identical"
        );
        // The resumed algorithm only saw the remaining rounds.
        assert_eq!(resumed.rounds_seen, straight.rounds_seen[2..].to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_mismatched_seed() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("kemf_engine_fpr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = tiny_ctx();
        let mut algo = Dummy::new();
        Engine::run(&mut algo, &ctx, RunOptions::new().checkpoint(CheckpointPolicy::new(&dir, 2)))
            .unwrap();
        // Same context, different engine seed → different fingerprint.
        let mut other = Dummy::new();
        match Engine::run(&mut other, &ctx, RunOptions::new().seed(999).resume_from(&dir)) {
            Err(EngineError::Resume(ResumeError::FingerprintMismatch { .. })) => {}
            other => panic!("expected fingerprint mismatch, got {:?}", other.err()),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_full_buffer_no_delay_matches_sync_bit_for_bit() {
        // The correctness anchor: buffer == cohort and zero injected
        // delay means every update folds fresh at weight exactly 1.0,
        // in sampled order — the async history must serialize
        // byte-identically to the sync one.
        let ctx = tiny_ctx();
        let mut sync = Dummy::new();
        let h_sync = run_default(&mut sync, &ctx);
        let mut asy = Dummy::new();
        let report = Engine::run(
            &mut asy,
            &ctx,
            RunOptions::new().async_rounds(AsyncConfig::new(3)),
        )
        .unwrap();
        assert_eq!(report.history.to_json(), h_sync.to_json());
        assert_eq!(asy.rounds_seen, sync.rounds_seen);
        // No network model and no delays: the virtual clock never moves.
        assert_eq!(report.sim_time_s, Some(0.0));
    }

    #[test]
    fn async_small_buffer_spreads_uplink_across_cycles() {
        let ctx = tiny_ctx();
        let mut algo = Dummy::new();
        let report = Engine::run(
            &mut algo,
            &ctx,
            RunOptions::new().async_rounds(AsyncConfig::new(1).max_staleness(8)),
        )
        .unwrap();
        // Every wave trains its full 3-client cohort, but each cycle
        // fuses exactly one buffered update.
        for r in &report.history.records {
            assert_eq!(r.down_clients, 3);
            assert_eq!(r.up_clients, 1, "buffer_size caps fused uploads");
            assert_eq!(r.up_bytes, 5);
        }
        // 4 waves × 3 updates, 4 fused: the other 8 are still in flight
        // at run end and were never charged uplink.
        assert_eq!(report.history.records.iter().map(|r| r.up_bytes).sum::<u64>(), 4 * 5);
    }

    #[test]
    fn async_mode_rejects_overfull_buffer() {
        let ctx = tiny_ctx();
        let mut algo = Dummy::new();
        match Engine::run(&mut algo, &ctx, RunOptions::new().async_rounds(AsyncConfig::new(4))) {
            Err(EngineError::Config(ConfigError::OutOfRange {
                field: "async.buffer_size", ..
            })) => {}
            other => panic!("expected buffer-size rejection, got {:?}", other.err()),
        }
    }

    #[test]
    fn async_checkpoints_refuse_cross_mode_resume() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("kemf_engine_xmode_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = tiny_ctx();
        let mut algo = Dummy::new();
        Engine::run(
            &mut algo,
            &ctx,
            RunOptions::new().checkpoint(CheckpointPolicy::new(&dir, 2)),
        )
        .unwrap();
        // A sync checkpoint must not seed an async run: the async knobs
        // are folded into the fingerprint.
        let mut other = Dummy::new();
        match Engine::run(
            &mut other,
            &ctx,
            RunOptions::new().async_rounds(AsyncConfig::new(3)).resume_from(&dir),
        ) {
            Err(EngineError::Resume(ResumeError::FingerprintMismatch { .. })) => {}
            other => panic!("expected fingerprint mismatch, got {:?}", other.err()),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_run_with_network_reports_virtual_time() {
        let ctx = tiny_ctx();
        let mut algo = Dummy::new();
        let net = crate::network::NetworkModel { bandwidth_bps: 10.0, latency_s: 1.0 };
        let report = Engine::run(
            &mut algo,
            &ctx,
            RunOptions::new().async_rounds(AsyncConfig::new(3).network(net)),
        )
        .unwrap();
        // Each completion arrives at t_down + t_up after dispatch:
        // (1 + 10/10) + (1 + 5/10) = 3.5 s; four cycles each wait for
        // their own wave's last arrival, so the clock walks forward.
        let t = report.sim_time_s.unwrap();
        assert!(t > 0.0, "network transfers must advance the virtual clock, got {t}");
    }

    #[test]
    fn thread_pool_init_is_idempotent() {
        let a = init_thread_pool();
        let b = init_thread_pool();
        assert_eq!(a, b);
        assert!(a >= 1);
        assert_eq!(a, rayon::current_num_threads());
    }

    #[test]
    fn context_exposes_partition_stats() {
        let ctx = tiny_ctx();
        assert_eq!(ctx.n_shards(), 6);
        assert_eq!(ctx.total_train_samples(), 120);
        assert!(ctx.heterogeneity > 0.0);
        assert_eq!(ctx.classes(), 10);
    }

    #[test]
    fn socket_transport_matches_in_process_bit_for_bit() {
        let ctx = tiny_ctx();
        let mut a = Dummy::new();
        let inproc = Engine::run(&mut a, &ctx, RunOptions::new().seed(11)).unwrap();
        let mut b = Dummy::new();
        let socket = Engine::run(
            &mut b,
            &ctx,
            RunOptions::new().seed(11).socket_transport(SocketConfig::threads(2)),
        )
        .unwrap();
        // Same seed, faults off: enacting the plan over real sockets
        // must not perturb a single recorded byte or sampled client.
        assert_eq!(inproc.history.to_json(), socket.history.to_json());
        assert!(inproc.transport.is_none());
        let stats = socket.transport.expect("socket run reports wire stats");
        assert_eq!(stats.rounds, ctx.cfg.rounds);
        // The wire counters are fed from actual framed bytes — with
        // faults off they must land exactly on the simulated accounting.
        let down: u64 = socket.history.records.iter().map(|r| r.down_bytes).sum();
        let up: u64 = socket.history.records.iter().map(|r| r.up_bytes).sum();
        assert_eq!(stats.payload_down_bytes, down);
        assert_eq!(stats.payload_up_bytes, up);
        assert_eq!(stats.payload_wasted_bytes, 0);
        assert!(stats.wire_bytes > stats.payload_total(), "framing overhead is real bytes");
    }

    #[test]
    fn async_rounds_over_sockets_are_refused() {
        let ctx = tiny_ctx();
        let mut algo = Dummy::new();
        let err = Engine::run(
            &mut algo,
            &ctx,
            RunOptions::new()
                .async_rounds(AsyncConfig::new(3))
                .socket_transport(SocketConfig::threads(1)),
        )
        .unwrap_err();
        match err {
            EngineError::Transport(TransportError::Config { reason }) => {
                assert!(reason.contains("asynchronous"), "unhelpful refusal: {reason}");
            }
            other => panic!("expected a typed transport-config refusal, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_config_floats_are_refused_before_any_round_runs() {
        let task = SynthTask::new(SynthConfig::mnist_like(0));
        let train = task.generate(120, 0);
        let test = task.generate(40, 1);
        // An infinite lr sails past the NaN/positivity checks in
        // FlConfig::validate, but the vendored JSON writer would
        // serialize it as null — colliding run fingerprints — so the
        // engine must refuse it before any round runs.
        let cfg = FlConfig {
            n_clients: 6,
            sample_ratio: 0.5,
            rounds: 4,
            min_per_client: 2,
            lr: f32::INFINITY,
            ..Default::default()
        };
        let ctx = FlContext::new(cfg, &train, test);
        let mut algo = Dummy::new();
        let err = Engine::run(&mut algo, &ctx, RunOptions::new()).unwrap_err();
        match err {
            EngineError::Fingerprint(CheckpointError::NonFinite { field, .. }) => {
                assert_eq!(field, "lr");
            }
            other => panic!("expected a fingerprint refusal, got {other:?}"),
        }
        assert_eq!(algo.evals, 0, "no round may run under an unidentifiable config");
    }
}
