//! SCAFFOLD (Karimireddy et al. 2020): stochastic controlled averaging.
//! The server keeps a control variate `c` and every client a local `c_k`;
//! each local SGD step is corrected with `(c − c_k)`, cancelling client
//! drift. After local training the client refreshes its variate with
//! option II of the paper:
//!
//! `c_k⁺ = c_k − c + (w_global − w_k) / (K·η)`
//!
//! and the server updates `w ← mean(w_k)` and
//! `c ← c + (|S|/N) · mean(c_k⁺ − c_k)`.
//!
//! Control variates double the per-round payload in both directions, which
//! the paper's cost tables account as 2× FedAvg.

use crate::config::ConfigError;
use crate::context::FlContext;
use crate::engine::{FedAlgorithm, RoundOutcome};
use crate::lifecycle::WirePayload;
use crate::local::{add_flat_to_grads, LocalCfg};
use crate::state::{check_model_layout, check_tensor_dims, AlgorithmState, RestoreError};
use crate::trace::{Phase, RoundScope};
use crate::weight_common::{fan_out_clients, mean_loss, GlobalModel};
use kemf_nn::layer::Layer;
use kemf_nn::models::ModelSpec;
use kemf_nn::serialize::ModelState;
use std::sync::Arc;

/// The SCAFFOLD baseline.
pub struct Scaffold {
    global: GlobalModel,
    /// Server control variate (flat, parameter layout).
    c: Vec<f32>,
    /// Per-client control variates.
    c_clients: Vec<Vec<f32>>,
}

impl Scaffold {
    /// New SCAFFOLD server.
    pub fn new(spec: ModelSpec) -> Self {
        let global = GlobalModel::new(spec);
        let dim = global.state.params.numel();
        Scaffold { global, c: vec![0.0; dim], c_clients: Vec::new() }
    }
}

impl FedAlgorithm for Scaffold {
    fn name(&self) -> String {
        "SCAFFOLD".into()
    }

    fn init(&mut self, ctx: &FlContext) -> Result<(), ConfigError> {
        let dim = self.global.state.params.numel();
        self.c_clients = vec![vec![0.0; dim]; ctx.cfg.n_clients];
        Ok(())
    }

    fn payload_per_client(&self) -> WirePayload {
        // Weights + control variate both ways → ≈2× payload.
        WirePayload::symmetric(self.global.payload_bytes() + (self.c.len() * 4) as u64)
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> RoundOutcome {
        // SCAFFOLD's control-variate refresh divides by K·η assuming plain
        // local SGD; momentum would inflate the effective step by
        // 1/(1−ρ) and blow the variates up, so it is disabled locally
        // (standard practice for SCAFFOLD implementations).
        let mut sgd = ctx.cfg.sgd_at(round);
        sgd.momentum = 0.0;
        sgd.nesterov = false;
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd,
        };
        let eta = local.sgd.lr;
        // Per-client corrections (c − c_k), computed up front and shared
        // with the parallel fan-out.
        let corrections: Vec<Arc<Vec<f32>>> = sampled
            .iter()
            .map(|&k| {
                Arc::new(
                    self.c
                        .iter()
                        .zip(self.c_clients[k].iter())
                        .map(|(&c, &ck)| c - ck)
                        .collect::<Vec<f32>>(),
                )
            })
            .collect();
        let index_of = |k: usize| sampled.iter().position(|&s| s == k).unwrap();
        let corrections_ref = &corrections;
        let results = scope.phase(Phase::LocalUpdate, |ctr| {
            let results = fan_out_clients(
                &self.global.state,
                self.global.spec,
                round,
                sampled,
                ctx,
                &local,
                &move |k| {
                    let corr = Arc::clone(&corrections_ref[index_of(k)]);
                    Some(Box::new(move |net: &mut dyn Layer| {
                        add_flat_to_grads(net, &corr, 1.0);
                    }) as Box<dyn Fn(&mut dyn Layer) + Send + Sync>)
                },
            );
            ctr.clients = results.len();
            ctr.steps = results.iter().map(|r| r.outcome.steps as u64).sum();
            ctr.batches = ctr.steps;
            results
        });
        scope.phase(Phase::Fusion, |ctr| {
            ctr.clients = results.len();
            // Control-variate refresh (option II) and aggregation.
            let mut delta_c_mean = vec![0.0f32; self.c.len()];
            for r in &results {
                let k = r.client;
                let steps = r.outcome.steps.max(1) as f32;
                let inv = 1.0 / (steps * eta);
                let g = &self.global.state.params.values;
                let w = &r.state.params.values;
                let ck = &mut self.c_clients[k];
                for i in 0..ck.len() {
                    let ck_new = ck[i] - self.c[i] + (g[i] - w[i]) * inv;
                    delta_c_mean[i] += (ck_new - ck[i]) / results.len() as f32;
                    ck[i] = ck_new;
                }
            }
            let frac = results.len() as f32 / ctx.cfg.n_clients as f32;
            for (c, &d) in self.c.iter_mut().zip(delta_c_mean.iter()) {
                *c += frac * d;
            }
            // Uniform mean of client states (SCAFFOLD aggregates with global
            // learning rate 1).
            let states: Vec<ModelState> = results.iter().map(|r| r.state.clone()).collect();
            let coeffs = vec![1.0f32; states.len()];
            self.global.state = ModelState::weighted_average(&states, &coeffs);
        });
        RoundOutcome { train_loss: mean_loss(&results) }
    }

    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.global.evaluate(ctx)
    }

    fn state(&self) -> AlgorithmState {
        let n = self.c_clients.len();
        let dim = self.c.len();
        let mut flat = Vec::with_capacity(n * dim);
        for ck in &self.c_clients {
            flat.extend_from_slice(ck);
        }
        AlgorithmState::new(self.name(), 1)
            .with_model("global", self.global.state.clone())
            .with_tensor("c", vec![dim], self.c.clone())
            .with_tensor("c_clients", vec![n, dim], flat)
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let incoming = state.model("global")?;
        check_model_layout("global", incoming, &self.global.state)?;
        let dim = self.c.len();
        let c = state.tensor("c")?;
        check_tensor_dims("c", c, &[dim])?;
        let cc = state.tensor("c_clients")?;
        // init() has already sized c_clients for this context, so the
        // client count is known and enforceable here.
        check_tensor_dims("c_clients", cc, &[self.c_clients.len(), dim])?;
        self.global.state = incoming.clone();
        self.c = c.values.clone();
        for (k, ck) in self.c_clients.iter_mut().enumerate() {
            ck.copy_from_slice(&cc.values[k * dim..(k + 1) * dim]);
        }
        Ok(())
    }

    fn global_model(&self) -> Option<(kemf_nn::models::ModelSpec, kemf_nn::serialize::ModelState)> {
        Some((self.global.spec, self.global.state.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::engine::{Engine, RunOptions};
    use crate::metrics::History;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn ctx(seed: u64) -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(240, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: 4,
            sample_ratio: 1.0,
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            alpha: 0.3,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    #[test]
    fn scaffold_learns_above_chance() {
        let c = ctx(41);
        let mut algo = Scaffold::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let h = run(&mut algo, &c);
        assert!(h.best_accuracy() > 0.25, "got {}", h.best_accuracy());
    }

    #[test]
    fn control_variates_become_nonzero() {
        let c = ctx(42);
        let mut algo = Scaffold::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let _ = run(&mut algo, &c);
        let norm: f32 = algo.c.iter().map(|&v| v * v).sum::<f32>().sqrt();
        assert!(norm > 1e-4, "server control variate stayed zero");
        assert!(algo.c_clients.iter().any(|ck| ck.iter().any(|&v| v != 0.0)));
    }

    #[test]
    fn scaffold_payload_includes_control_state() {
        let c = ctx(43);
        let mut algo = Scaffold::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let model_bytes = algo.global.payload_bytes();
        let control_bytes = (algo.c.len() * 4) as u64;
        let h = run(&mut algo, &c);
        assert_eq!(h.total_bytes(), 6 * 4 * 2 * (model_bytes + control_bytes));
        // Control variates are roughly the model size → ≈2× FedAvg payload.
        assert!(control_bytes * 10 > model_bytes * 9, "control ≈ model size");
    }

    #[test]
    fn variates_stay_zero_when_clients_identical_and_full_participation() {
        // With IID-ish data and identical steps, corrections stay small and
        // training still works — smoke test for stability of the update.
        let c = ctx(44);
        let mut algo = Scaffold::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let h = run(&mut algo, &c);
        assert!(h.accuracies().iter().all(|a| a.is_finite()));
    }
}
