//! SCAFFOLD (Karimireddy et al. 2020): stochastic controlled averaging.
//! The server keeps a control variate `c` and every client a local `c_k`;
//! each local SGD step is corrected with `(c − c_k)`, cancelling client
//! drift. After local training the client refreshes its variate with
//! option II of the paper:
//!
//! `c_k⁺ = c_k − c + (w_global − w_k) / (K·η)`
//!
//! and the server updates `w ← mean(w_k)` and
//! `c ← c + (|S|/N) · mean(c_k⁺ − c_k)`.
//!
//! Control variates double the per-round payload in both directions, which
//! the paper's cost tables account as 2× FedAvg.

use crate::client_store::{ClientBlob, ClientStateStore, SpillConfig, StoreError};
use crate::config::ConfigError;
use crate::context::FlContext;
use crate::engine::{EngineError, FedAlgorithm, RoundOutcome};
use crate::lifecycle::{ClientPlan, ModelView, WirePayload};
use crate::local::{add_flat_to_grads, LocalCfg};
use crate::scheduler::{PreparedUpdate, UpdatePayload};
use crate::state::{check_model_layout, check_tensor_dims, AlgorithmState, RestoreError};
use crate::trace::{Phase, RoundScope};
use crate::weight_common::{fan_out_clients, GlobalModel, StateAverage};
use kemf_nn::layer::Layer;
use kemf_nn::models::ModelSpec;
use std::collections::HashMap;
use std::sync::Arc;

/// The SCAFFOLD baseline.
pub struct Scaffold {
    global: GlobalModel,
    /// Server control variate (flat, parameter layout).
    c: Vec<f32>,
    /// Per-client control variates, fetched and committed through the
    /// client-state store (resident for memory mode, spilled to disk for
    /// population-scale cohorts).
    store: ClientStateStore,
    spill: Option<SpillConfig>,
}

/// A fresh client's control variate: all zeros, as the paper initializes.
fn zero_variate(dim: usize) -> ClientBlob {
    ClientBlob::new().with_tensor("c", vec![dim], vec![0.0; dim])
}

/// Pull the flat variate out of a stored blob, validating its length.
fn variate_from_blob(blob: &ClientBlob, k: usize, dim: usize) -> Result<Vec<f32>, StoreError> {
    let t = blob
        .tensor("c")
        .ok_or_else(|| StoreError::Corrupt {
            client: k,
            detail: "missing control-variate tensor `c`".into(),
        })?;
    if t.values.len() != dim {
        return Err(StoreError::Corrupt {
            client: k,
            detail: format!("control variate has {} values, model has {dim}", t.values.len()),
        });
    }
    Ok(t.values.clone())
}

impl Scaffold {
    /// New SCAFFOLD server.
    pub fn new(spec: ModelSpec) -> Self {
        let global = GlobalModel::new(spec);
        let dim = global.state.params.numel();
        Scaffold { global, c: vec![0.0; dim], store: ClientStateStore::in_memory(0), spill: None }
    }

    /// Spill per-client control variates to `spill.dir` instead of
    /// holding `n_clients` of them resident.
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = Some(spill);
        self
    }
}

impl FedAlgorithm for Scaffold {
    fn name(&self) -> String {
        "SCAFFOLD".into()
    }

    fn init(&mut self, ctx: &FlContext) -> Result<(), ConfigError> {
        let dim = self.global.state.params.numel();
        self.store = match &self.spill {
            Some(spill) => ClientStateStore::sharded(ctx.cfg.n_clients, spill.clone())
                .map_err(|e| ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("opening spill store: {e}"),
                })?,
            None => {
                let mut store = ClientStateStore::in_memory(ctx.cfg.n_clients);
                store.seed_all(|_| zero_variate(dim));
                store
            }
        };
        Ok(())
    }

    fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        // Weights + control variate both ways → ≈2× payload.
        let payload = WirePayload::symmetric(self.global.payload_bytes() + (self.c.len() * 4) as u64);
        ClientPlan::uniform(sampled, ModelView::Full, payload)
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        self.store.begin_round(round);
        if sampled.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        // SCAFFOLD's control-variate refresh divides by K·η assuming plain
        // local SGD; momentum would inflate the effective step by
        // 1/(1−ρ) and blow the variates up, so it is disabled locally
        // (standard practice for SCAFFOLD implementations).
        let mut sgd = ctx.cfg.sgd_at(round);
        sgd.momentum = 0.0;
        sgd.nesterov = false;
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd,
        };
        let eta = local.sgd.lr;
        let dim = self.c.len();
        let n_sampled = sampled.len();
        let chunk = ctx.cfg.cohort_chunk(n_sampled);
        let mut avg = StateAverage::new(&self.global.state, n_sampled as f32);
        let mut delta_c_mean = vec![0.0f32; dim];
        let mut loss_sum = 0.0f32;
        scope.phase(Phase::LocalUpdate, |ctr| -> Result<(), EngineError> {
            for batch in sampled.chunks(chunk) {
                // Sequential fetch: the store is `&mut self` and cannot
                // cross the parallel fan-out.
                let mut variates = Vec::with_capacity(batch.len());
                for &k in batch {
                    let blob = self.store.fetch(k, |_| zero_variate(dim))?;
                    variates.push(variate_from_blob(&blob, k, dim)?);
                }
                // Per-client corrections (c − c_k), shared with the
                // parallel fan-out.
                let corrections: Vec<Arc<Vec<f32>>> = variates
                    .iter()
                    .map(|ck| {
                        Arc::new(
                            self.c
                                .iter()
                                .zip(ck.iter())
                                .map(|(&c, &ck)| c - ck)
                                .collect::<Vec<f32>>(),
                        )
                    })
                    .collect();
                let index_of: HashMap<usize, usize> =
                    batch.iter().enumerate().map(|(i, &k)| (k, i)).collect();
                let corrections_ref = &corrections;
                let index_ref = &index_of;
                let results = fan_out_clients(
                    &self.global.state,
                    self.global.spec,
                    round,
                    batch,
                    ctx,
                    &local,
                    &move |k| {
                        let corr = Arc::clone(&corrections_ref[index_ref[&k]]);
                        Some(Box::new(move |net: &mut dyn Layer| {
                            add_flat_to_grads(net, &corr, 1.0);
                        }) as Box<dyn Fn(&mut dyn Layer) + Send + Sync>)
                    },
                );
                ctr.clients += results.len();
                ctr.steps += results.iter().map(|r| r.outcome.steps as u64).sum::<u64>();
                ctr.batches = ctr.steps;
                // Control-variate refresh (option II), committed back to
                // the store; sequential in sampled order so the f32 folds
                // are bit-identical across batch sizes.
                for (i, r) in results.iter().enumerate() {
                    let steps = r.outcome.steps.max(1) as f32;
                    let inv = 1.0 / (steps * eta);
                    let g = &self.global.state.params.values;
                    let w = &r.state.params.values;
                    let ck = &variates[i];
                    let mut ck_new = vec![0.0f32; dim];
                    for j in 0..dim {
                        ck_new[j] = ck[j] - self.c[j] + (g[j] - w[j]) * inv;
                        delta_c_mean[j] += (ck_new[j] - ck[j]) / n_sampled as f32;
                    }
                    self.store.commit(
                        r.client,
                        ClientBlob::new().with_tensor("c", vec![dim], ck_new),
                    )?;
                    // Uniform mean of client states (SCAFFOLD aggregates
                    // with global learning rate 1).
                    avg.add(&r.state, 1.0);
                    loss_sum += r.outcome.mean_loss;
                }
            }
            Ok(())
        })?;
        scope.phase(Phase::Fusion, |ctr| {
            ctr.clients = n_sampled;
            let frac = n_sampled as f32 / ctx.cfg.n_clients as f32;
            for (c, &d) in self.c.iter_mut().zip(delta_c_mean.iter()) {
                *c += frac * d;
            }
            self.global.state = avg.finish();
        });
        Ok(RoundOutcome { train_loss: loss_sum / n_sampled as f32 })
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        self.store.begin_round(wave);
        if sampled.is_empty() {
            return Ok(Vec::new());
        }
        let mut sgd = ctx.cfg.sgd_at(wave);
        sgd.momentum = 0.0;
        sgd.nesterov = false;
        let local = LocalCfg { epochs: ctx.cfg.local_epochs, batch: ctx.cfg.batch_size, sgd };
        let eta = local.sgd.lr;
        let dim = self.c.len();
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut out = Vec::with_capacity(sampled.len());
        scope.phase(Phase::LocalUpdate, |ctr| -> Result<(), EngineError> {
            for batch in sampled.chunks(chunk) {
                let mut variates = Vec::with_capacity(batch.len());
                for &k in batch {
                    let blob = self.store.fetch(k, |_| zero_variate(dim))?;
                    variates.push(variate_from_blob(&blob, k, dim)?);
                }
                let corrections: Vec<Arc<Vec<f32>>> = variates
                    .iter()
                    .map(|ck| {
                        Arc::new(
                            self.c
                                .iter()
                                .zip(ck.iter())
                                .map(|(&c, &ck)| c - ck)
                                .collect::<Vec<f32>>(),
                        )
                    })
                    .collect();
                let index_of: HashMap<usize, usize> =
                    batch.iter().enumerate().map(|(i, &k)| (k, i)).collect();
                let corrections_ref = &corrections;
                let index_ref = &index_of;
                let results = fan_out_clients(
                    &self.global.state,
                    self.global.spec,
                    wave,
                    batch,
                    ctx,
                    &local,
                    &move |k| {
                        let corr = Arc::clone(&corrections_ref[index_ref[&k]]);
                        Some(Box::new(move |net: &mut dyn Layer| {
                            add_flat_to_grads(net, &corr, 1.0);
                        }) as Box<dyn Fn(&mut dyn Layer) + Send + Sync>)
                    },
                );
                ctr.clients += results.len();
                ctr.steps += results.iter().map(|r| r.outcome.steps as u64).sum::<u64>();
                ctr.batches = ctr.steps;
                // The variate refresh is client-side work: it happens at
                // dispatch time against the global weights and server
                // variate the client was handed, but the store commit is
                // deferred into the update so an evicted (or quorum-
                // aborted) client keeps its previous variate.
                for (i, r) in results.into_iter().enumerate() {
                    let steps = r.outcome.steps.max(1) as f32;
                    let inv = 1.0 / (steps * eta);
                    let g = &self.global.state.params.values;
                    let w = &r.state.params.values;
                    let ck = &variates[i];
                    let mut ck_new = vec![0.0f32; dim];
                    let mut aux = vec![0.0f32; dim];
                    for j in 0..dim {
                        ck_new[j] = ck[j] - self.c[j] + (g[j] - w[j]) * inv;
                        aux[j] = ck_new[j] - ck[j];
                    }
                    out.push(PreparedUpdate {
                        client: r.client,
                        n_samples: r.n_samples,
                        steps: r.outcome.steps,
                        loss: r.outcome.mean_loss,
                        payload: UpdatePayload::StateAux { state: r.state, aux },
                        commit: Some(
                            ClientBlob::new().with_tensor("c", vec![dim], ck_new),
                        ),
                    });
                }
            }
            Ok(())
        })?;
        Ok(out)
    }

    fn fuse(
        &mut self,
        round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        self.store.begin_round(round);
        if updates.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let dim = self.c.len();
        let reported = updates.len();
        let total: f32 = updates.iter().map(|(_, w)| *w).sum();
        let mut avg = StateAverage::new(&self.global.state, total);
        let mut delta_c_mean = vec![0.0f32; dim];
        let mut loss_sum = 0.0f32;
        for (u, w) in updates {
            let UpdatePayload::StateAux { state, aux } = &u.payload else {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("client {}: expected a state+variate payload", u.client),
                }));
            };
            if aux.len() != dim {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!(
                        "client {}: variate delta has {} values, model has {dim}",
                        u.client,
                        aux.len()
                    ),
                }));
            }
            for (d, &a) in delta_c_mean.iter_mut().zip(aux.iter()) {
                *d += (w * a) / total;
            }
            avg.add(state, w);
            loss_sum += u.loss;
            if let Some(blob) = u.commit {
                self.store.commit(u.client, blob)?;
            }
        }
        scope.phase(Phase::Fusion, |ctr| {
            ctr.clients = reported;
            let frac = reported as f32 / ctx.cfg.n_clients as f32;
            for (c, &d) in self.c.iter_mut().zip(delta_c_mean.iter()) {
                *c += frac * d;
            }
            self.global.state = avg.finish();
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.global.evaluate(ctx)
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        let n = self.store.n_clients();
        let dim = self.c.len();
        let base = AlgorithmState::new(self.name(), 1)
            .with_model("global", self.global.state.clone())
            .with_tensor("c", vec![dim], self.c.clone());
        if self.store.is_sharded() {
            // Per-client variates already live in the spill directory
            // (write-through commits); the checkpoint carries only the
            // population size so restore can refuse a mismatched spill.
            Ok(base.with_scalar("sharded_clients", n as f64))
        } else {
            let mut flat = Vec::with_capacity(n * dim);
            for k in 0..n {
                let blob = self.store.read(k, |_| zero_variate(dim))?;
                let t = blob.tensor("c").ok_or(StoreError::Corrupt {
                    client: k,
                    detail: "missing control-variate tensor `c`".into(),
                })?;
                flat.extend_from_slice(&t.values);
            }
            Ok(base.with_tensor("c_clients", vec![n, dim], flat))
        }
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let incoming = state.model("global")?;
        check_model_layout("global", incoming, &self.global.state)?;
        let dim = self.c.len();
        let c = state.tensor("c")?;
        check_tensor_dims("c", c, &[dim])?;
        // init() has already built the store for this context, so the
        // client count is known and enforceable here.
        let n = self.store.n_clients();
        if self.store.is_sharded() {
            let recorded = state.scalar("sharded_clients")?;
            if recorded != n as f64 {
                return Err(RestoreError::ShapeMismatch {
                    name: "sharded_clients".into(),
                    detail: format!("checkpoint covers {recorded} clients, store has {n}"),
                });
            }
        } else {
            let cc = state.tensor("c_clients")?;
            check_tensor_dims("c_clients", cc, &[n, dim])?;
            for k in 0..n {
                let ck = cc.values[k * dim..(k + 1) * dim].to_vec();
                self.store
                    .commit(k, ClientBlob::new().with_tensor("c", vec![dim], ck))
                    .map_err(|e| RestoreError::Store { detail: e.to_string() })?;
            }
        }
        self.global.state = incoming.clone();
        self.c = c.values.clone();
        Ok(())
    }

    fn global_model(&self) -> Option<(kemf_nn::models::ModelSpec, kemf_nn::serialize::ModelState)> {
        Some((self.global.spec, self.global.state.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::engine::{Engine, RunOptions};
    use crate::metrics::History;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn ctx(seed: u64) -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(240, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: 4,
            sample_ratio: 1.0,
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            alpha: 0.3,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    #[test]
    fn scaffold_learns_above_chance() {
        let c = ctx(41);
        let mut algo = Scaffold::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let h = run(&mut algo, &c);
        assert!(h.best_accuracy() > 0.25, "got {}", h.best_accuracy());
    }

    #[test]
    fn control_variates_become_nonzero() {
        let c = ctx(42);
        let mut algo = Scaffold::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let _ = run(&mut algo, &c);
        let norm: f32 = algo.c.iter().map(|&v| v * v).sum::<f32>().sqrt();
        assert!(norm > 1e-4, "server control variate stayed zero");
        let dim = algo.c.len();
        let any_nonzero = (0..algo.store.n_clients()).any(|k| {
            let blob = algo.store.read(k, |_| zero_variate(dim)).unwrap();
            blob.tensor("c").unwrap().values.iter().any(|&v| v != 0.0)
        });
        assert!(any_nonzero, "no client variate ever moved");
    }

    #[test]
    fn scaffold_payload_includes_control_state() {
        let c = ctx(43);
        let mut algo = Scaffold::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let model_bytes = algo.global.payload_bytes();
        let control_bytes = (algo.c.len() * 4) as u64;
        let h = run(&mut algo, &c);
        assert_eq!(h.total_bytes(), 6 * 4 * 2 * (model_bytes + control_bytes));
        // Control variates are roughly the model size → ≈2× FedAvg payload.
        assert!(control_bytes * 10 > model_bytes * 9, "control ≈ model size");
    }

    #[test]
    fn sharded_spill_matches_in_memory_bit_for_bit() {
        // Partial sampling, so clients skip rounds and fetch must pick
        // the newest pre-round spill stamp across the gaps.
        let mk = || {
            let task = SynthTask::new(SynthConfig::mnist_like(45));
            let train = task.generate(240, 0);
            let test = task.generate(80, 1);
            let cfg = FlConfig {
                n_clients: 4,
                sample_ratio: 0.5,
                rounds: 6,
                local_epochs: 1,
                batch_size: 16,
                alpha: 0.5,
                min_per_client: 10,
                seed: 45,
                ..Default::default()
            };
            FlContext::new(cfg, &train, test)
        };
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0);
        let mut mem = Scaffold::new(spec);
        let hm = run(&mut mem, &mk());
        let mut dir = std::env::temp_dir();
        dir.push(format!("kemf_scaffold_spill_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sharded = Scaffold::new(spec).with_spill(SpillConfig::new(&dir));
        let hs = run(&mut sharded, &mk());
        assert_eq!(hm.records, hs.records, "spilling variates must not change a bit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn variates_stay_zero_when_clients_identical_and_full_participation() {
        // With IID-ish data and identical steps, corrections stay small and
        // training still works — smoke test for stability of the update.
        let c = ctx(44);
        let mut algo = Scaffold::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let h = run(&mut algo, &c);
        assert!(h.accuracies().iter().all(|a| a.is_finite()));
    }
}
