//! Shared local-training loop used by every weight-sharing baseline.
//!
//! The baselines differ only in (a) an optional per-batch gradient hook
//! (FedProx's proximal term, SCAFFOLD's control-variate correction) and
//! (b) how the server aggregates; the SGD loop itself is common.

use kemf_data::dataset::Dataset;
use kemf_nn::layer::Layer;
use kemf_nn::loss::cross_entropy;
use kemf_nn::model::Model;
use kemf_nn::optim::{Sgd, SgdConfig};
use kemf_tensor::rng::seeded_rng;

/// Per-batch gradient hook: runs after backward and before the optimizer
/// step (FedProx proximal term, SCAFFOLD control-variate correction).
pub type GradHook<'a> = &'a dyn Fn(&mut dyn Layer);

/// Per-round local-training parameters.
#[derive(Clone, Copy, Debug)]
pub struct LocalCfg {
    /// Local epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Optimizer settings (lr already scheduled for this round).
    pub sgd: SgdConfig,
}

/// Outcome of one client's local training.
#[derive(Clone, Copy, Debug)]
pub struct LocalOutcome {
    /// SGD steps actually taken (FedNova's τ).
    pub steps: usize,
    /// Mean training loss over all batches.
    pub mean_loss: f32,
}

/// Train `model` on `data` for `cfg.epochs` epochs. `grad_hook`, when
/// present, runs after each backward pass and before the optimizer step —
/// the extension point for proximal terms and control variates.
pub fn local_train(
    model: &mut Model,
    data: &Dataset,
    cfg: &LocalCfg,
    seed: u64,
    grad_hook: Option<GradHook<'_>>,
) -> LocalOutcome {
    let mut opt = Sgd::new(cfg.sgd);
    let mut rng = seeded_rng(seed);
    let mut steps = 0usize;
    let mut loss_sum = 0.0f64;
    for _epoch in 0..cfg.epochs {
        for (images, labels) in data.shuffled_batches(cfg.batch, &mut rng) {
            model.zero_grad();
            let logits = model.forward(&images, true);
            let (loss, grad) = cross_entropy(&logits, &labels);
            let _ = model.backward(&grad);
            if let Some(hook) = grad_hook {
                hook(model.net_mut());
            }
            opt.step(model.net_mut());
            steps += 1;
            loss_sum += loss as f64;
        }
    }
    LocalOutcome {
        steps,
        mean_loss: if steps == 0 { 0.0 } else { (loss_sum / steps as f64) as f32 },
    }
}

/// Add `scale · flat` to the parameter gradients of `net` (flat vector in
/// visit order). SCAFFOLD's `c − c_i` correction.
pub fn add_flat_to_grads(net: &mut dyn Layer, flat: &[f32], scale: f32) {
    let mut offset = 0usize;
    net.visit_params_mut(&mut |p| {
        let n = p.numel();
        assert!(offset + n <= flat.len(), "flat vector shorter than parameters");
        for (g, &v) in p.grad.data_mut().iter_mut().zip(flat[offset..offset + n].iter()) {
            *g += scale * v;
        }
        offset += n;
    });
    assert_eq!(offset, flat.len(), "flat vector longer than parameters");
}

/// Add `mu · (w − w_ref)` to the parameter gradients: FedProx's proximal
/// term, with `w_ref` the round's global weights (flat, visit order).
pub fn add_prox_to_grads(net: &mut dyn Layer, global_flat: &[f32], mu: f32) {
    let mut offset = 0usize;
    net.visit_params_mut(&mut |p| {
        let n = p.numel();
        assert!(offset + n <= global_flat.len(), "flat vector shorter than parameters");
        let (vals, grads) = (p.value.data().to_vec(), p.grad.data_mut());
        for ((g, &w), &wr) in grads.iter_mut().zip(vals.iter()).zip(global_flat[offset..offset + n].iter())
        {
            *g += mu * (w - wr);
        }
        offset += n;
    });
    assert_eq!(offset, global_flat.len(), "flat vector longer than parameters");
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_nn::models::{Arch, ModelSpec};
    use kemf_nn::serialize::Weights;

    fn toy_data() -> Dataset {
        SynthTask::new(SynthConfig::mnist_like(3)).generate(60, 0)
    }

    fn toy_model() -> Model {
        Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1))
    }

    fn cfg() -> LocalCfg {
        LocalCfg {
            epochs: 2,
            batch: 16,
            sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0, nesterov: false },
        }
    }

    #[test]
    fn counts_steps_and_reduces_loss() {
        let data = toy_data();
        let mut model = toy_model();
        let first = local_train(&mut model, &data, &cfg(), 7, None);
        // 60 samples / batch 16 = 4 batches × 2 epochs.
        assert_eq!(first.steps, 8);
        let later = local_train(&mut model, &data, &cfg(), 8, None);
        assert!(later.mean_loss < first.mean_loss, "{} -> {}", first.mean_loss, later.mean_loss);
    }

    #[test]
    fn grad_hook_runs_and_changes_trajectory() {
        let data = toy_data();
        let mut plain = toy_model();
        let mut hooked = toy_model();
        let zeros = vec![0.5f32; plain.param_count()];
        let _ = local_train(&mut plain, &data, &cfg(), 7, None);
        let hook = move |net: &mut dyn kemf_nn::layer::Layer| add_flat_to_grads(net, &zeros, 1.0);
        let _ = local_train(&mut hooked, &data, &cfg(), 7, Some(&hook));
        assert_ne!(plain.weights().values, hooked.weights().values);
    }

    #[test]
    fn prox_term_pulls_toward_reference() {
        // With zero data gradient (lr acts only on the prox term), weights
        // must move toward the reference.
        let mut model = toy_model();
        let reference = model.weights().zeros_like();
        let before = model.weights().norm();
        add_prox_to_grads(model.net_mut(), &reference.values, 1.0);
        // Manual SGD step of lr 0.1 on the prox gradient alone.
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0, nesterov: false });
        opt.step(model.net_mut());
        let after = model.weights().norm();
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn flat_gradient_addition_matches_weights_layout() {
        let mut model = toy_model();
        model.zero_grad();
        let ones = vec![1.0f32; model.param_count()];
        add_flat_to_grads(model.net_mut(), &ones, 2.0);
        let grads = Weights::grads_from_layer(model.net());
        assert!(grads.values.iter().all(|&g| (g - 2.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic]
    fn flat_vector_size_mismatch_panics() {
        let mut model = toy_model();
        add_flat_to_grads(model.net_mut(), &[1.0, 2.0], 1.0);
    }
}
