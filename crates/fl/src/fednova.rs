//! FedNova (Wang et al. 2020): normalized averaging. Clients may take
//! different numbers of local steps τ_k (their shards differ in size);
//! naively averaging their weights biases the update toward clients that
//! stepped more. FedNova aggregates the *per-step normalized* directions:
//!
//! `w ← w − τ_eff · Σ_k p_k · d_k`, with `d_k = (w − w_k)/τ_k`,
//! `p_k = n_k / Σ n`, `τ_eff = Σ_k p_k τ_k`.
//!
//! We use the plain step count for τ (the momentum-corrected effective τ
//! of the paper is a scalar refinement documented in DESIGN.md). FedNova
//! ships normalization metadata alongside the weights, which the paper
//! accounts as a 2× per-round payload vs FedAvg.

use crate::context::FlContext;
use crate::engine::{EngineError, FedAlgorithm, RoundOutcome};
use crate::lifecycle::{ClientPlan, ModelView, WirePayload};
use crate::local::LocalCfg;
use crate::scheduler::{PreparedUpdate, UpdatePayload};
use crate::state::{check_model_layout, AlgorithmState, RestoreError};
use crate::trace::{Phase, RoundScope};
use crate::weight_common::{fan_out_clients, GlobalModel, WeightsAverage};
use kemf_nn::models::ModelSpec;
use kemf_nn::serialize::ModelState;

/// The FedNova baseline.
pub struct FedNova {
    global: GlobalModel,
}

impl FedNova {
    /// New FedNova server.
    pub fn new(spec: ModelSpec) -> Self {
        FedNova { global: GlobalModel::new(spec) }
    }
}

impl FedAlgorithm for FedNova {
    fn name(&self) -> String {
        "FedNova".into()
    }

    fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        // 2× payload: weights plus normalization metadata each way.
        ClientPlan::uniform(
            sampled,
            ModelView::Full,
            WirePayload::symmetric(2 * self.global.payload_bytes()),
        )
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        if sampled.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(round),
        };
        // Σ n over the whole cohort, before streaming (identical f32 sum
        // order to the per-result fold it replaces: sampled order).
        let total_n: f32 = sampled.iter().map(|&k| ctx.client_shard_len(k) as f32).sum();
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        // Normalized directions d_k = (w_global − w_k) / τ_k, folded in
        // as each client reports; the global stays fixed until fusion.
        let mut combined = self.global.state.params.zeros_like();
        let mut tau_eff = 0.0f32;
        let mut buffers = WeightsAverage::new(&self.global.state.buffers, total_n);
        let mut loss_sum = 0.0f32;
        let mut reported = 0usize;
        scope.phase(Phase::LocalUpdate, |c| {
            for batch in sampled.chunks(chunk) {
                let results = fan_out_clients(
                    &self.global.state,
                    self.global.spec,
                    round,
                    batch,
                    ctx,
                    &local,
                    &|_k| None,
                );
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.outcome.steps as u64).sum::<u64>();
                c.batches = c.steps;
                for r in &results {
                    let tau = r.outcome.steps.max(1) as f32;
                    let p = r.n_samples as f32 / total_n;
                    tau_eff += p * tau;
                    let d = self.global.state.params.delta(&r.state.params);
                    combined.scale_add(1.0, &d, p / tau);
                    // Buffers: weighted average, as for FedAvg.
                    buffers.add(&r.state.buffers, r.n_samples as f32);
                    loss_sum += r.outcome.mean_loss;
                    reported += 1;
                }
            }
        });
        scope.phase(Phase::Fusion, |c| {
            c.clients = reported;
            // w ← w − τ_eff · Σ p_k d_k  (note d already points from w to w_k).
            self.global.state.params.scale_add(1.0, &combined, -tau_eff);
            self.global.state.buffers = buffers.finish();
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(wave),
        };
        let chunk = ctx.cfg.cohort_chunk(sampled.len().max(1));
        let mut out = Vec::with_capacity(sampled.len());
        scope.phase(Phase::LocalUpdate, |c| {
            for batch in sampled.chunks(chunk) {
                let results = fan_out_clients(
                    &self.global.state,
                    self.global.spec,
                    wave,
                    batch,
                    ctx,
                    &local,
                    &|_k| None,
                );
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.outcome.steps as u64).sum::<u64>();
                c.batches = c.steps;
                for r in results {
                    // The normalized direction is anchored to the global
                    // weights the client actually started from, so it is
                    // computed here at dispatch time, not at fusion.
                    let d = self.global.state.params.delta(&r.state.params);
                    out.push(PreparedUpdate {
                        client: r.client,
                        n_samples: r.n_samples,
                        steps: r.outcome.steps,
                        loss: r.outcome.mean_loss,
                        payload: UpdatePayload::State(ModelState {
                            params: d,
                            buffers: r.state.buffers,
                        }),
                        commit: None,
                    });
                }
            }
        });
        Ok(out)
    }

    fn fuse(
        &mut self,
        _round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        _ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        if updates.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let total_n: f32 = updates.iter().map(|(u, w)| w * u.n_samples as f32).sum();
        let mut combined = self.global.state.params.zeros_like();
        let mut tau_eff = 0.0f32;
        let mut buffers = WeightsAverage::new(&self.global.state.buffers, total_n);
        let mut loss_sum = 0.0f32;
        let reported = updates.len();
        for (u, w) in &updates {
            let UpdatePayload::State(delta) = &u.payload else {
                return Err(EngineError::Config(crate::config::ConfigError::AlgorithmSetup {
                    algorithm: "FedNova".into(),
                    reason: format!("client {}: expected a direction-state payload", u.client),
                }));
            };
            let tau = u.steps.max(1) as f32;
            let p = w * u.n_samples as f32 / total_n;
            tau_eff += p * tau;
            combined.scale_add(1.0, &delta.params, p / tau);
            buffers.add(&delta.buffers, w * u.n_samples as f32);
            loss_sum += u.loss;
        }
        scope.phase(Phase::Fusion, |c| {
            c.clients = reported;
            self.global.state.params.scale_add(1.0, &combined, -tau_eff);
            self.global.state.buffers = buffers.finish();
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.global.evaluate(ctx)
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        Ok(AlgorithmState::new(self.name(), 1).with_model("global", self.global.state.clone()))
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let incoming = state.model("global")?;
        check_model_layout("global", incoming, &self.global.state)?;
        self.global.state = incoming.clone();
        Ok(())
    }

    fn global_model(&self) -> Option<(kemf_nn::models::ModelSpec, kemf_nn::serialize::ModelState)> {
        Some((self.global.spec, self.global.state.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::engine::{Engine, RunOptions};
    use crate::metrics::History;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn ctx(seed: u64) -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(240, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: 4,
            sample_ratio: 1.0,
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            // Skewed shards → heterogeneous τ_k, FedNova's raison d'être.
            alpha: 0.3,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    #[test]
    fn fednova_learns_above_chance() {
        let c = ctx(31);
        let mut algo = FedNova::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let h = run(&mut algo, &c);
        assert!(h.best_accuracy() > 0.25, "got {}", h.best_accuracy());
    }

    #[test]
    fn fednova_pays_double_communication() {
        let c = ctx(32);
        let mut nova = FedNova::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let per_dir = nova.global.payload_bytes();
        let h = run(&mut nova, &c);
        assert_eq!(h.total_bytes(), 6 * 4 * 2 * 2 * per_dir);
    }

    #[test]
    fn normalized_update_moves_global() {
        let c = ctx(33);
        let mut algo = FedNova::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let before = algo.global.state.params.clone();
        let _ = run(&mut algo, &c);
        let moved = algo.global.state.params.delta(&before).norm();
        assert!(moved > 1e-3, "global barely moved: {moved}");
    }
}
