//! [`AlgorithmState`]: the serializable state bundle every
//! [`crate::engine::FedAlgorithm`] can export and re-absorb.
//!
//! The bundle is deliberately dumb — named models, named
//! dimension-tagged f32 arrays, named f64 scalars, plus an algorithm
//! name and a state-format version — so that:
//!
//! * the engine can checkpoint *any* algorithm without knowing its
//!   internals (FedKEMF's per-client model zoo serializes next to
//!   SCAFFOLD's control variates with the same code path);
//! * the on-disk mapping is one-to-one with the kemf-nn v2 checkpoint
//!   bundle (`models` ↔ models, `tensors` ↔ arrays, `scalars` ↔
//!   scalars), with no re-encoding losses;
//! * `restore(state())` round-trips exactly: restore pre-checks every
//!   layout against the live algorithm and fails with a typed
//!   [`RestoreError`] instead of panicking deep inside `apply_to`.

use kemf_nn::serialize::ModelState;
use std::fmt;

/// A named, dimension-tagged flat f32 array (control variates, consensus
/// logits, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct TensorBlob {
    /// Logical dimensions; `values.len()` equals their product.
    pub dims: Vec<usize>,
    /// Row-major values.
    pub values: Vec<f32>,
}

/// Everything one algorithm owns, as data. Entry order is preserved, so
/// serialization is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct AlgorithmState {
    /// The owning algorithm's display name ([`crate::engine::FedAlgorithm::name`]);
    /// restore refuses a bundle from a different algorithm.
    pub algorithm: String,
    /// Algorithm-specific state-format version; bumped when an
    /// algorithm's entry set changes incompatibly.
    pub version: u32,
    /// Named model states (`"global"`, `"knowledge"`, `"local.3"`, ...).
    pub models: Vec<(String, ModelState)>,
    /// Named flat tensors.
    pub tensors: Vec<(String, TensorBlob)>,
    /// Named scalars.
    pub scalars: Vec<(String, f64)>,
}

/// Why a state bundle cannot be restored into a live algorithm.
#[derive(Clone, Debug, PartialEq)]
pub enum RestoreError {
    /// The bundle belongs to a different algorithm.
    AlgorithmMismatch {
        /// The live algorithm's name.
        expected: String,
        /// The bundle's algorithm name.
        found: String,
    },
    /// The bundle's state-format version is not the one this build
    /// understands.
    UnsupportedVersion {
        /// The algorithm concerned.
        algorithm: String,
        /// Version this build writes and reads.
        expected: u32,
        /// Version found in the bundle.
        found: u32,
    },
    /// A required entry is absent.
    MissingEntry {
        /// Name of the missing model/tensor/scalar.
        name: String,
    },
    /// An entry exists but its shape does not match the live algorithm
    /// (e.g. a model checkpointed under a different architecture).
    ShapeMismatch {
        /// Offending entry.
        name: String,
        /// What differed.
        detail: String,
    },
    /// Writing restored per-client state back through the client-state
    /// store failed (e.g. a spill-directory I/O error mid-restore).
    Store {
        /// The underlying store failure.
        detail: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::AlgorithmMismatch { expected, found } => {
                write!(f, "state belongs to {found}, not {expected}")
            }
            RestoreError::UnsupportedVersion { algorithm, expected, found } => write!(
                f,
                "{algorithm} state version mismatch: expected {expected}, found {found}"
            ),
            RestoreError::MissingEntry { name } => write!(f, "state entry `{name}` is missing"),
            RestoreError::ShapeMismatch { name, detail } => {
                write!(f, "state entry `{name}` has a mismatched shape: {detail}")
            }
            RestoreError::Store { detail } => {
                write!(f, "restoring client state through the store failed: {detail}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl AlgorithmState {
    /// Empty bundle for `algorithm` at state-format `version`.
    pub fn new(algorithm: impl Into<String>, version: u32) -> Self {
        AlgorithmState {
            algorithm: algorithm.into(),
            version,
            models: Vec::new(),
            tensors: Vec::new(),
            scalars: Vec::new(),
        }
    }

    /// Append a named model (builder style).
    pub fn with_model(mut self, name: impl Into<String>, state: ModelState) -> Self {
        self.push_model(name, state);
        self
    }

    /// Append a named tensor (builder style).
    pub fn with_tensor(mut self, name: impl Into<String>, dims: Vec<usize>, values: Vec<f32>) -> Self {
        self.push_tensor(name, dims, values);
        self
    }

    /// Append a named scalar (builder style).
    pub fn with_scalar(mut self, name: impl Into<String>, value: f64) -> Self {
        self.scalars.push((name.into(), value));
        self
    }

    /// Append a named model.
    pub fn push_model(&mut self, name: impl Into<String>, state: ModelState) {
        self.models.push((name.into(), state));
    }

    /// Append a named tensor; `values.len()` must equal the dims product.
    pub fn push_tensor(&mut self, name: impl Into<String>, dims: Vec<usize>, values: Vec<f32>) {
        debug_assert_eq!(
            dims.iter().product::<usize>(),
            values.len(),
            "tensor values must fill dims"
        );
        self.tensors.push((name.into(), TensorBlob { dims, values }));
    }

    /// Refuse bundles from another algorithm or state-format version.
    pub fn expect_header(&self, algorithm: &str, version: u32) -> Result<(), RestoreError> {
        if self.algorithm != algorithm {
            return Err(RestoreError::AlgorithmMismatch {
                expected: algorithm.to_string(),
                found: self.algorithm.clone(),
            });
        }
        if self.version != version {
            return Err(RestoreError::UnsupportedVersion {
                algorithm: algorithm.to_string(),
                expected: version,
                found: self.version,
            });
        }
        Ok(())
    }

    /// Required model entry by name.
    pub fn model(&self, name: &str) -> Result<&ModelState, RestoreError> {
        self.models
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| RestoreError::MissingEntry { name: name.to_string() })
    }

    /// Required tensor entry by name.
    pub fn tensor(&self, name: &str) -> Result<&TensorBlob, RestoreError> {
        self.opt_tensor(name)
            .ok_or_else(|| RestoreError::MissingEntry { name: name.to_string() })
    }

    /// Optional tensor entry by name (presence can encode an `Option`
    /// field, e.g. FedMD's not-yet-built consensus).
    pub fn opt_tensor(&self, name: &str) -> Option<&TensorBlob> {
        self.tensors.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Required scalar entry by name.
    pub fn scalar(&self, name: &str) -> Result<f64, RestoreError> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| RestoreError::MissingEntry { name: name.to_string() })
    }
}

/// Pre-check that a checkpointed model matches the live one's layer
/// layout, so restore fails with a typed error instead of a panic deep
/// inside `ModelState::apply_to`.
pub fn check_model_layout(
    name: &str,
    incoming: &ModelState,
    live: &ModelState,
) -> Result<(), RestoreError> {
    if incoming.params.lens != live.params.lens {
        return Err(RestoreError::ShapeMismatch {
            name: name.to_string(),
            detail: format!(
                "param layout {:?} != live {:?}",
                incoming.params.lens, live.params.lens
            ),
        });
    }
    if incoming.buffers.lens != live.buffers.lens {
        return Err(RestoreError::ShapeMismatch {
            name: name.to_string(),
            detail: format!(
                "buffer layout {:?} != live {:?}",
                incoming.buffers.lens, live.buffers.lens
            ),
        });
    }
    Ok(())
}

/// Pre-check a tensor entry against the dimensions the live algorithm
/// requires.
pub fn check_tensor_dims(name: &str, blob: &TensorBlob, dims: &[usize]) -> Result<(), RestoreError> {
    if blob.dims != dims {
        return Err(RestoreError::ShapeMismatch {
            name: name.to_string(),
            detail: format!("dims {:?} != live {:?}", blob.dims, dims),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_nn::model::Model;
    use kemf_nn::models::{Arch, ModelSpec};

    #[test]
    fn accessors_find_entries_and_name_missing_ones() {
        let m = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 8, 10, 3)).state();
        let s = AlgorithmState::new("X", 1)
            .with_model("global", m.clone())
            .with_tensor("c", vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])
            .with_scalar("t", 2.5);
        assert_eq!(s.model("global").unwrap(), &m);
        assert_eq!(s.tensor("c").unwrap().dims, vec![2, 2]);
        assert_eq!(s.scalar("t").unwrap(), 2.5);
        assert!(s.opt_tensor("absent").is_none());
        assert_eq!(
            s.model("nope").unwrap_err(),
            RestoreError::MissingEntry { name: "nope".into() }
        );
    }

    #[test]
    fn header_check_rejects_wrong_algorithm_and_version() {
        let s = AlgorithmState::new("FedAvg", 1);
        s.expect_header("FedAvg", 1).unwrap();
        assert!(matches!(
            s.expect_header("FedProx", 1),
            Err(RestoreError::AlgorithmMismatch { .. })
        ));
        assert!(matches!(
            s.expect_header("FedAvg", 2),
            Err(RestoreError::UnsupportedVersion { expected: 2, found: 1, .. })
        ));
    }

    #[test]
    fn layout_check_catches_architecture_drift() {
        let a = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 8, 10, 3)).state();
        let b = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 3)).state();
        check_model_layout("global", &a, &a).unwrap();
        assert!(matches!(
            check_model_layout("global", &a, &b),
            Err(RestoreError::ShapeMismatch { .. })
        ));
        let blob = TensorBlob { dims: vec![3], values: vec![0.0; 3] };
        check_tensor_dims("c", &blob, &[3]).unwrap();
        assert!(check_tensor_dims("c", &blob, &[4]).is_err());
    }
}
