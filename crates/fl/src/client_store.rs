//! [`ClientStateStore`]: per-client algorithm state at population scale.
//!
//! The eager design — every algorithm owning a `Vec` sized by
//! `n_clients` (FedKEMF's `Vec<Option<Model>>`, SCAFFOLD's
//! `Vec<Vec<f32>>`) — caps simulated federations at the memory of the
//! full population. The paper's premise is the opposite regime:
//! millions of edge clients of which only a sampled cohort (1% or less)
//! participates per round. This store keeps exactly the cohort
//! resident.
//!
//! Two backends share one API:
//!
//! * **Memory** — the classic layout, a slot per client, seeded eagerly
//!   at `init`. `fetch` *clones* the slot instead of taking it, so a
//!   slot is never left vacant mid-round: the `take().expect("model
//!   present")` panic class is gone structurally, not by adding checks.
//! * **Sharded** — nothing resident. `commit` writes the client's blob
//!   straight through to disk as an atomic kemf-nn checkpoint bundle
//!   (`shard_XXXX/cNNNNNNNNN_rRRRRRR.ckpt`), `fetch` reads it back when
//!   the client is next sampled. Peak memory is O(cohort batch), not
//!   O(population).
//!
//! **Crash consistency without a journal.** Spill files are stamped
//! with the round that wrote them and are never pruned or rewritten in
//! place (writes go through [`kemf_nn::checkpoint::atomic_write`]'s
//! tmp+rename). Combined with the engine's deterministic sampling
//! stream, two stamp rules make resume bit-exact with no cleanup pass:
//!
//! * [`ClientStateStore::fetch`] (start of a client's local update in
//!   round *r*) uses the newest stamp **strictly before** *r*. A stale
//!   stamp-*r* file left by a crashed attempt of round *r* is
//!   post-training state; using it would apply round *r* twice. The
//!   replayed round re-commits and atomically overwrites it instead.
//! * [`ClientStateStore::read`] (evaluation, state export) uses the
//!   newest stamp **at or before** the current round: after round *r*'s
//!   commits land, the genuine stamp-*r* files have already replaced
//!   any stale ones (the replayed cohort equals the crashed cohort, by
//!   sampling determinism).
//!
//! The spill directory is tied to one run identity (config + seed),
//! exactly like a checkpoint directory; point different runs at
//! different directories.

use crate::state::TensorBlob;
use kemf_nn::checkpoint::{load_bundle, save_bundle, CheckpointBundle};
use kemf_nn::serialize::ModelState;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Everything one algorithm keeps per client: named model states and
/// named flat tensors. The per-client analogue of
/// [`crate::state::AlgorithmState`], minus the header.
#[derive(Clone, Debug, Default)]
pub struct ClientBlob {
    /// Named model states (e.g. `"model"` for a local network).
    pub models: Vec<(String, ModelState)>,
    /// Named flat tensors (e.g. `"c"` for a SCAFFOLD control variate).
    pub tensors: Vec<(String, TensorBlob)>,
}

/// Bit-exact equality — the store's round-trip contract. A NaN payload
/// compares equal to itself by bit pattern (IEEE `==` would reject it),
/// and `-0.0` differs from `+0.0`.
impl PartialEq for ClientBlob {
    fn eq(&self, other: &Self) -> bool {
        fn bits_eq(a: &[f32], b: &[f32]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        self.models.len() == other.models.len()
            && self.tensors.len() == other.tensors.len()
            && self.models.iter().zip(&other.models).all(|((an, am), (bn, bm))| {
                an == bn
                    && am.params.lens == bm.params.lens
                    && am.buffers.lens == bm.buffers.lens
                    && bits_eq(&am.params.values, &bm.params.values)
                    && bits_eq(&am.buffers.values, &bm.buffers.values)
            })
            && self.tensors.iter().zip(&other.tensors).all(|((an, at), (bn, bt))| {
                an == bn && at.dims == bt.dims && bits_eq(&at.values, &bt.values)
            })
    }
}

impl ClientBlob {
    /// Empty blob.
    pub fn new() -> Self {
        ClientBlob::default()
    }

    /// Append a named model (builder style).
    pub fn with_model(mut self, name: impl Into<String>, state: ModelState) -> Self {
        self.models.push((name.into(), state));
        self
    }

    /// Append a named tensor (builder style).
    pub fn with_tensor(mut self, name: impl Into<String>, dims: Vec<usize>, values: Vec<f32>) -> Self {
        self.tensors.push((name.into(), TensorBlob { dims, values }));
        self
    }

    /// Model entry by name.
    pub fn model(&self, name: &str) -> Option<&ModelState> {
        self.models.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Tensor entry by name.
    pub fn tensor(&self, name: &str) -> Option<&TensorBlob> {
        self.tensors.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }
}

/// Why a store operation failed. Surfaced through
/// [`crate::engine::EngineError::State`] so a bad client slot fails the
/// run with a diagnosis instead of aborting the process.
#[derive(Debug)]
pub enum StoreError {
    /// A client index at or beyond the population size.
    UnknownClient {
        /// The offending index.
        client: usize,
        /// Population size the store was built for.
        n_clients: usize,
    },
    /// A memory-backend slot was read before the store was seeded.
    Missing {
        /// The empty slot.
        client: usize,
    },
    /// A spill file exists but its contents do not belong to this
    /// client/round (foreign file, truncation the bundle format cannot
    /// see, or a blob missing a required entry).
    Corrupt {
        /// The client concerned.
        client: usize,
        /// What was wrong.
        detail: String,
    },
    /// Reading or writing a spill file failed.
    Io {
        /// The file concerned.
        path: PathBuf,
        /// The underlying error.
        error: io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownClient { client, n_clients } => {
                write!(f, "client {client} is outside the population of {n_clients}")
            }
            StoreError::Missing { client } => {
                write!(f, "client {client} has no resident state (store was never seeded)")
            }
            StoreError::Corrupt { client, detail } => {
                write!(f, "client {client} spill state is corrupt: {detail}")
            }
            StoreError::Io { path, error } => {
                write!(f, "client-store I/O at {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Where a sharded store spills cold client state.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Spill directory (created on demand; tied to one run identity).
    pub dir: PathBuf,
}

impl SpillConfig {
    /// Spill into `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillConfig { dir: dir.into() }
    }
}

/// Clients per `shard_XXXX` subdirectory, so a million-client spill
/// tree never puts more than a few thousand files per directory entry
/// scan.
const CLIENTS_PER_SHARD_DIR: usize = 4096;

/// Format version tag inside a spill bundle's meta section.
const BLOB_META_VERSION: u32 = 1;

enum Backend {
    /// One slot per client, all resident.
    Memory(Vec<Option<ClientBlob>>),
    /// Write-through disk spill; `stamps[k]` holds the rounds with a
    /// spill file for client `k`, ascending.
    Sharded { dir: PathBuf, stamps: HashMap<usize, Vec<usize>> },
}

/// Per-client state for one algorithm instance, memory- or disk-backed.
pub struct ClientStateStore {
    n_clients: usize,
    round: usize,
    backend: Backend,
}

impl ClientStateStore {
    /// Fully resident store with one (initially empty) slot per client.
    /// Seed it with [`ClientStateStore::seed_all`] before fetching.
    pub fn in_memory(n_clients: usize) -> Self {
        ClientStateStore {
            n_clients,
            round: 0,
            backend: Backend::Memory(vec![None; n_clients]),
        }
    }

    /// Disk-backed store spilling into `spill.dir`. Existing spill files
    /// (a resumed run) are indexed by a directory scan; nothing is
    /// loaded until a client is fetched.
    pub fn sharded(n_clients: usize, spill: SpillConfig) -> Result<Self, StoreError> {
        let dir = spill.dir;
        std::fs::create_dir_all(&dir)
            .map_err(|error| StoreError::Io { path: dir.clone(), error })?;
        let stamps = scan_spill_dir(&dir)?;
        Ok(ClientStateStore { n_clients, round: 0, backend: Backend::Sharded { dir, stamps } })
    }

    /// Population size this store was built for.
    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// Whether this store spills to disk.
    pub fn is_sharded(&self) -> bool {
        matches!(self.backend, Backend::Sharded { .. })
    }

    /// Enter round `round`: subsequent [`fetch`](Self::fetch) calls take
    /// the newest state committed strictly before it.
    pub fn begin_round(&mut self, round: usize) {
        self.round = round;
    }

    /// Seed every memory slot from `init` (no-op for a sharded store,
    /// which materializes lazily through `fetch`'s `init`).
    pub fn seed_all(&mut self, mut init: impl FnMut(usize) -> ClientBlob) {
        if let Backend::Memory(slots) = &mut self.backend {
            for (k, slot) in slots.iter_mut().enumerate() {
                *slot = Some(init(k));
            }
        }
    }

    /// The state client `k` starts the current round from: the memory
    /// slot (cloned — the slot stays resident), or the newest spill file
    /// stamped strictly before the current round. A client never
    /// committed before materializes through `init`.
    pub fn fetch(
        &mut self,
        k: usize,
        init: impl FnOnce(usize) -> ClientBlob,
    ) -> Result<ClientBlob, StoreError> {
        self.check_client(k)?;
        match &self.backend {
            Backend::Memory(slots) => {
                slots[k].clone().ok_or(StoreError::Missing { client: k })
            }
            Backend::Sharded { dir, stamps } => {
                let newest = newest_stamp(stamps, k, |r| r < self.round);
                match newest {
                    Some(r) => load_blob(dir, k, r),
                    None => Ok(init(k)),
                }
            }
        }
    }

    /// Client `k`'s state as of the current round (evaluation, state
    /// export): the memory slot, or the newest spill file stamped at or
    /// before the current round; `init` covers clients never committed.
    pub fn read(
        &self,
        k: usize,
        init: impl FnOnce(usize) -> ClientBlob,
    ) -> Result<ClientBlob, StoreError> {
        self.check_client(k)?;
        match &self.backend {
            Backend::Memory(slots) => {
                slots[k].clone().ok_or(StoreError::Missing { client: k })
            }
            Backend::Sharded { dir, stamps } => {
                let newest = newest_stamp(stamps, k, |r| r <= self.round);
                match newest {
                    Some(r) => load_blob(dir, k, r),
                    None => Ok(init(k)),
                }
            }
        }
    }

    /// Commit client `k`'s post-round state: overwrite the memory slot,
    /// or write the blob through to disk atomically under the current
    /// round's stamp. Nothing stays resident in the sharded backend.
    pub fn commit(&mut self, k: usize, blob: ClientBlob) -> Result<(), StoreError> {
        self.check_client(k)?;
        match &mut self.backend {
            Backend::Memory(slots) => {
                slots[k] = Some(blob);
                Ok(())
            }
            Backend::Sharded { dir, stamps } => {
                let round = self.round;
                save_blob(dir, k, round, &blob)?;
                let entry = stamps.entry(k).or_default();
                if entry.last() != Some(&round) {
                    match entry.binary_search(&round) {
                        Ok(_) => {}
                        Err(pos) => entry.insert(pos, round),
                    }
                }
                Ok(())
            }
        }
    }

    fn check_client(&self, k: usize) -> Result<(), StoreError> {
        if k >= self.n_clients {
            return Err(StoreError::UnknownClient { client: k, n_clients: self.n_clients });
        }
        Ok(())
    }
}

/// Newest committed round for client `k` passing `admit`.
fn newest_stamp(
    stamps: &HashMap<usize, Vec<usize>>,
    k: usize,
    admit: impl Fn(usize) -> bool,
) -> Option<usize> {
    stamps.get(&k)?.iter().rev().copied().find(|&r| admit(r))
}

fn shard_dir(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("shard_{:04}", k / CLIENTS_PER_SHARD_DIR))
}

fn spill_file(dir: &Path, k: usize, round: usize) -> PathBuf {
    shard_dir(dir, k).join(format!("c{k:09}_r{round:06}.ckpt"))
}

/// Parse `cNNNNNNNNN_rRRRRRR.ckpt` back into `(client, round)`.
fn parse_spill_name(name: &str) -> Option<(usize, usize)> {
    let stem = name.strip_suffix(".ckpt")?;
    let rest = stem.strip_prefix('c')?;
    let (client, round) = rest.split_once("_r")?;
    Some((client.parse().ok()?, round.parse().ok()?))
}

/// Index every `shard_*/c*_r*.ckpt` under `dir` (stray `.tmp` leftovers
/// and foreign files are ignored, like the checkpoint directory scan).
fn scan_spill_dir(dir: &Path) -> Result<HashMap<usize, Vec<usize>>, StoreError> {
    let mut stamps: HashMap<usize, Vec<usize>> = HashMap::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|error| StoreError::Io { path: dir.to_path_buf(), error })?;
    for entry in entries {
        let entry = entry.map_err(|error| StoreError::Io { path: dir.to_path_buf(), error })?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if !path.is_dir() || !name.starts_with("shard_") {
            continue;
        }
        let files = std::fs::read_dir(&path)
            .map_err(|error| StoreError::Io { path: path.clone(), error })?;
        for file in files {
            let file = file.map_err(|error| StoreError::Io { path: path.clone(), error })?;
            let fname = file.file_name();
            let Some(fname) = fname.to_str() else { continue };
            if let Some((client, round)) = parse_spill_name(fname) {
                stamps.entry(client).or_default().push(round);
            }
        }
    }
    for rounds in stamps.values_mut() {
        rounds.sort_unstable();
        rounds.dedup();
    }
    Ok(stamps)
}

fn save_blob(dir: &Path, k: usize, round: usize, blob: &ClientBlob) -> Result<(), StoreError> {
    let shard = shard_dir(dir, k);
    std::fs::create_dir_all(&shard)
        .map_err(|error| StoreError::Io { path: shard.clone(), error })?;
    let mut meta = Vec::with_capacity(20);
    meta.extend_from_slice(&BLOB_META_VERSION.to_le_bytes());
    meta.extend_from_slice(&(k as u64).to_le_bytes());
    meta.extend_from_slice(&(round as u64).to_le_bytes());
    let bundle = CheckpointBundle {
        meta,
        models: blob.models.clone(),
        arrays: blob
            .tensors
            .iter()
            .map(|(n, t)| (n.clone(), t.dims.clone(), t.values.clone()))
            .collect(),
        scalars: Vec::new(),
    };
    let path = spill_file(dir, k, round);
    save_bundle(&bundle, &path).map_err(|error| StoreError::Io { path, error })
}

fn load_blob(dir: &Path, k: usize, round: usize) -> Result<ClientBlob, StoreError> {
    let path = spill_file(dir, k, round);
    let bundle = load_bundle(&path).map_err(|error| StoreError::Io { path: path.clone(), error })?;
    if bundle.meta.len() != 20 {
        return Err(StoreError::Corrupt {
            client: k,
            detail: format!("{}: unexpected meta length {}", path.display(), bundle.meta.len()),
        });
    }
    let version = u32::from_le_bytes(bundle.meta[0..4].try_into().unwrap());
    let client = u64::from_le_bytes(bundle.meta[4..12].try_into().unwrap()) as usize;
    let stamp = u64::from_le_bytes(bundle.meta[12..20].try_into().unwrap()) as usize;
    if version != BLOB_META_VERSION {
        return Err(StoreError::Corrupt {
            client: k,
            detail: format!("{}: blob version {version}, expected {BLOB_META_VERSION}", path.display()),
        });
    }
    if client != k || stamp != round {
        return Err(StoreError::Corrupt {
            client: k,
            detail: format!(
                "{}: names client {k} round {round} but holds client {client} round {stamp}",
                path.display()
            ),
        });
    }
    Ok(ClientBlob {
        models: bundle.models,
        tensors: bundle
            .arrays
            .into_iter()
            .map(|(n, dims, values)| (n, TensorBlob { dims, values }))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_nn::model::Model;
    use kemf_nn::models::{Arch, ModelSpec};

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kemf_clientstore_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn blob(tag: f32) -> ClientBlob {
        ClientBlob::new()
            .with_model("model", Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 8, 10, 3)).state())
            .with_tensor("c", vec![3], vec![tag, f32::NAN, -0.0])
    }

    #[test]
    fn memory_fetch_clones_and_commit_overwrites() {
        let mut store = ClientStateStore::in_memory(3);
        assert!(matches!(
            store.fetch(0, |_| blob(0.0)),
            Err(StoreError::Missing { client: 0 })
        ));
        store.seed_all(|k| blob(k as f32));
        // Fetch twice: the slot is cloned, never vacated.
        let a = store.fetch(1, |_| unreachable!()).unwrap();
        let b = store.fetch(1, |_| unreachable!()).unwrap();
        assert_eq!(a, b);
        store.commit(1, blob(9.0)).unwrap();
        let c = store.read(1, |_| unreachable!()).unwrap();
        assert_eq!(c.tensor("c").unwrap().values[0], 9.0);
        assert!(matches!(
            store.fetch(7, |_| blob(0.0)),
            Err(StoreError::UnknownClient { client: 7, n_clients: 3 })
        ));
    }

    #[test]
    fn sharded_round_trips_bit_exactly_across_reopen() {
        let dir = tmpdir("rt");
        let mut store = ClientStateStore::sharded(10, SpillConfig::new(&dir)).unwrap();
        assert!(store.is_sharded());
        store.begin_round(0);
        let original = blob(1.5);
        store.commit(4, original.clone()).unwrap();

        // Same round: `read` sees the commit, `fetch` must not (a stale
        // same-round file is post-training state on a crash replay).
        let seen = store.read(4, |_| unreachable!()).unwrap();
        assert_eq!(seen.models, original.models);
        assert_eq!(
            seen.tensor("c").unwrap().values[1].to_bits(),
            f32::NAN.to_bits(),
            "NaN survives by bit pattern"
        );
        let mut fresh = false;
        let _ = store.fetch(4, |_| { fresh = true; blob(0.0) }).unwrap();
        assert!(fresh, "fetch in the committing round re-initializes");

        // Next round: fetch picks the committed state.
        store.begin_round(1);
        let fetched = store.fetch(4, |_| unreachable!()).unwrap();
        assert_eq!(fetched, seen);

        // Reopen (a resumed process): the scan re-indexes the files.
        let mut reopened = ClientStateStore::sharded(10, SpillConfig::new(&dir)).unwrap();
        reopened.begin_round(1);
        assert_eq!(reopened.fetch(4, |_| unreachable!()).unwrap(), seen);
        // A never-committed client still materializes through init.
        let init = reopened.fetch(5, |k| blob(k as f32)).unwrap();
        assert_eq!(init.tensor("c").unwrap().values[0], 5.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_commit_overwrites_stale_same_round_file() {
        let dir = tmpdir("stale");
        let mut store = ClientStateStore::sharded(4, SpillConfig::new(&dir)).unwrap();
        // A "crashed" attempt of round 2 left post-training state...
        store.begin_round(2);
        store.commit(1, blob(666.0)).unwrap();
        // ...the replay of round 2 re-commits and the genuine state wins.
        let mut replay = ClientStateStore::sharded(4, SpillConfig::new(&dir)).unwrap();
        replay.begin_round(2);
        let start = replay.fetch(1, |_| blob(0.0)).unwrap();
        assert_eq!(start.tensor("c").unwrap().values[0], 0.0, "stale stamp ignored");
        replay.commit(1, blob(7.0)).unwrap();
        assert_eq!(replay.read(1, |_| unreachable!()).unwrap().tensor("c").unwrap().values[0], 7.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_file_is_a_typed_error() {
        let dir = tmpdir("corrupt");
        let mut store = ClientStateStore::sharded(4, SpillConfig::new(&dir)).unwrap();
        store.begin_round(0);
        store.commit(2, blob(1.0)).unwrap();
        // Garbage in place of the spill file: fetch must not panic.
        std::fs::write(spill_file(&dir, 2, 0), b"not a bundle").unwrap();
        let mut reopened = ClientStateStore::sharded(4, SpillConfig::new(&dir)).unwrap();
        reopened.begin_round(1);
        assert!(matches!(
            reopened.fetch(2, |_| unreachable!()),
            Err(StoreError::Io { .. })
        ));
        // A bundle whose meta names another client is caught too.
        let mut other = ClientStateStore::sharded(4, SpillConfig::new(&dir)).unwrap();
        other.begin_round(0);
        other.commit(3, blob(2.0)).unwrap();
        std::fs::copy(spill_file(&dir, 3, 0), spill_file(&dir, 2, 0)).unwrap();
        let mut reopened = ClientStateStore::sharded(4, SpillConfig::new(&dir)).unwrap();
        reopened.begin_round(1);
        assert!(matches!(
            reopened.fetch(2, |_| unreachable!()),
            Err(StoreError::Corrupt { client: 2, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_names_parse_and_shard() {
        assert_eq!(parse_spill_name("c000000042_r000007.ckpt"), Some((42, 7)));
        assert_eq!(parse_spill_name("c1_r2.ckpt"), Some((1, 2)));
        assert_eq!(parse_spill_name("round_00004.ckpt"), None);
        assert_eq!(parse_spill_name("c1_r2.ckpt.tmp"), None);
        let dir = PathBuf::from("/s");
        assert_eq!(spill_file(&dir, 0, 0), PathBuf::from("/s/shard_0000/c000000000_r000000.ckpt"));
        assert_eq!(
            spill_file(&dir, 999_999, 12),
            PathBuf::from(format!("/s/shard_{:04}/c000999999_r000012.ckpt", 999_999 / 4096))
        );
    }
}
