//! FedAvg (McMahan et al. 2017): clients run local SGD from the global
//! weights; the server replaces the global model with the sample-count-
//! weighted average of the returned weights.

use crate::context::FlContext;
use crate::engine::{EngineError, FedAlgorithm, RoundOutcome};
use crate::lifecycle::{ClientPlan, ModelView, WirePayload};
use crate::local::LocalCfg;
use crate::scheduler::PreparedUpdate;
use crate::state::{check_model_layout, AlgorithmState, RestoreError};
use crate::trace::{Phase, RoundScope};
use crate::weight_common::{
    fan_out_clients, fuse_state_average, train_cohort_states, GlobalModel, StateAverage,
};
use kemf_nn::models::ModelSpec;
use kemf_nn::serialize::ModelState;

/// The FedAvg baseline.
pub struct FedAvg {
    global: GlobalModel,
}

impl FedAvg {
    /// New FedAvg server for the given client architecture.
    pub fn new(spec: ModelSpec) -> Self {
        FedAvg { global: GlobalModel::new(spec) }
    }

    /// Current global state (for tests and checkpointing).
    pub fn global_state(&self) -> &ModelState {
        &self.global.state
    }
}

impl FedAlgorithm for FedAvg {
    fn name(&self) -> String {
        "FedAvg".into()
    }

    fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        ClientPlan::uniform(
            sampled,
            ModelView::Full,
            WirePayload::symmetric(self.global.payload_bytes()),
        )
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        if sampled.is_empty() {
            // Nothing reported: no loss exists and the global state must
            // not move (an average over zero clients has no value).
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(round),
        };
        // Coefficient total over the whole cohort, computed before
        // streaming: the running average divides by it up front, so any
        // cohort_batch size folds results identically.
        let total: f32 = sampled.iter().map(|&k| ctx.client_shard_len(k) as f32).sum();
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut avg = StateAverage::new(&self.global.state, total);
        let mut loss_sum = 0.0f32;
        let mut reported = 0usize;
        scope.phase(Phase::LocalUpdate, |c| {
            for batch in sampled.chunks(chunk) {
                let results = fan_out_clients(
                    &self.global.state,
                    self.global.spec,
                    round,
                    batch,
                    ctx,
                    &local,
                    &|_k| None,
                );
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.outcome.steps as u64).sum::<u64>();
                c.batches = c.steps;
                // Sequential in sampled order, so f32 accumulation is
                // bit-identical no matter how the cohort was batched.
                for r in &results {
                    avg.add(&r.state, r.n_samples as f32);
                    loss_sum += r.outcome.mean_loss;
                    reported += 1;
                }
            }
        });
        scope.phase(Phase::Fusion, |c| {
            c.clients = reported;
            self.global.state = avg.finish();
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(wave),
        };
        Ok(train_cohort_states(&self.global, wave, sampled, ctx, &local, &|_k| None, scope))
    }

    fn fuse(
        &mut self,
        _round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        _ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        fuse_state_average("FedAvg", &mut self.global, updates, scope)
    }

    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.global.evaluate(ctx)
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        Ok(AlgorithmState::new(self.name(), 1).with_model("global", self.global.state.clone()))
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let incoming = state.model("global")?;
        check_model_layout("global", incoming, &self.global.state)?;
        self.global.state = incoming.clone();
        Ok(())
    }

    fn global_model(&self) -> Option<(kemf_nn::models::ModelSpec, kemf_nn::serialize::ModelState)> {
        Some((self.global.spec, self.global.state.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::engine::{Engine, RunOptions};
    use crate::metrics::History;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn tiny_ctx(seed: u64) -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(240, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: 4,
            sample_ratio: 1.0,
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.08,
            alpha: 1.0,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    #[test]
    fn fedavg_learns_above_chance() {
        let ctx = tiny_ctx(11);
        let mut algo = FedAvg::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let h = run(&mut algo, &ctx);
        assert!(
            h.best_accuracy() > 0.3,
            "FedAvg should beat 10% chance clearly, got {}",
            h.best_accuracy()
        );
    }

    #[test]
    fn fedavg_byte_accounting_is_symmetric_and_additive() {
        let ctx = tiny_ctx(12);
        let mut algo = FedAvg::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let per_dir = algo.global.payload_bytes();
        let h = run(&mut algo, &ctx);
        // 6 rounds × 4 clients × 2 directions.
        assert_eq!(h.total_bytes(), 6 * 4 * 2 * per_dir);
    }

    #[test]
    fn fedavg_is_deterministic() {
        let run_once = || {
            let ctx = tiny_ctx(13);
            let mut algo = FedAvg::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
            run(&mut algo, &ctx).accuracies()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn cohort_batching_is_bit_identical() {
        // cohort_batch is a memory knob only: the streamed average and
        // the sequential loss fold must reproduce the unbatched history
        // bit for bit, whatever the batch size.
        let history = |batch: Option<usize>| {
            let mut ctx = tiny_ctx(15);
            ctx.cfg.cohort_batch = batch;
            let mut algo = FedAvg::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
            run(&mut algo, &ctx).records
        };
        let whole = history(None);
        assert_eq!(whole, history(Some(1)));
        assert_eq!(whole, history(Some(3)));
    }

    #[test]
    fn aggregation_moves_global_weights() {
        let ctx = tiny_ctx(14);
        let mut algo = FedAvg::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let before = algo.global_state().params.clone();
        let _ = run(&mut algo, &ctx);
        assert_ne!(before.values, algo.global_state().params.values);
    }
}
