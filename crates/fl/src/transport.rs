//! Real-socket federation transport.
//!
//! Everything the simulator accounts for — broadcasts, uploads, retries,
//! corrupted payloads — can instead travel over localhost TCP between the
//! engine (acting as the federation server) and a pool of client workers
//! (threads in this process or separate worker processes). The engine
//! selects the path through [`TransportMode`] on
//! [`crate::engine::RunOptions`]; `InProc` keeps today's closed-form
//! accounting, `Socket` replaces it with bytes measured at the socket.
//!
//! Design rules that keep socket runs bit-identical to in-process runs:
//!
//! * **All randomness stays in the engine.** The transport *enacts* an
//!   already-drawn [`RoundPlan`]; it never touches an RNG, so the
//!   sampling and fault streams are byte-for-byte the streams a plain
//!   run consumes, and checkpoint/resume replay works unchanged.
//! * **Faults are injected at the payload layer, on real frames.** A
//!   client planned as `DroppedAfterDownload` receives a broadcast that
//!   was corrupted or truncated in transit; a planned upload failure has
//!   its report corrupted before server-side validation. The frame
//!   header stays consistent with what is actually sent, so the stream
//!   never desyncs — the damage surfaces exactly where the simulator
//!   says it does: payload validation (checksums, [`CompressError`])
//!   and lifecycle outcomes, never a panic.
//! * **Byte counters come from the wire.** The per-round [`RoundComm`]
//!   is accumulated from payload bytes as they cross the socket; framing
//!   overhead is tracked separately in [`TransportStats`] so the
//!   simulated accounting stays comparable. With faults off, measured
//!   bytes equal `plan.comm(payload)` exactly.
//!
//! Worker processes are spawned from any binary that calls
//! [`worker_entry_if_requested`] early in `main` (or the dedicated
//! `kemf_worker` binary, which is just [`worker_main_from_env`]); the
//! server passes the rendezvous address through `KEMF_WORKER_*`
//! environment variables.

use crate::compress::{self, CompressError, QuantizedWeights};
use crate::lifecycle::{ClientOutcome, ClientPlan, ModelView, RoundComm, RoundPlan, WirePayload};
use kemf_nn::models::ModelSpec;
use kemf_nn::serialize::ModelState;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Frame magic: `KMFT` in big-endian byte order on the wire.
const MAGIC: [u8; 4] = *b"KMFT";
/// Largest frame body the reader will allocate for (sanity cap, 256 MiB).
const MAX_FRAME_BODY: u32 = 1 << 28;
/// Fixed framing overhead per frame: magic + kind + body_len + trailing CRC.
const FRAME_OVERHEAD: u64 = 4 + 1 + 4 + 4;

/// Worker → server greeting carrying the worker id.
const K_HELLO: u8 = 1;
/// Server → worker broadcast for one client transaction.
const K_DOWN: u8 = 2;
/// Worker → server upload attempt.
const K_UP: u8 = 3;
/// Worker → server terminal failure report (decode failure / timeout).
const K_UP_ERR: u8 = 4;
/// Server → worker verdict on an upload attempt.
const K_ACK: u8 = 5;
/// Server → worker end of federation.
const K_SHUTDOWN: u8 = 6;

/// `K_UP_ERR` codes.
const ERR_DECODE: u8 = 1;
const ERR_TIMED_OUT: u8 = 2;

/// `K_ACK` statuses.
const ACK_ACCEPTED: u8 = 0;
const ACK_RETRY: u8 = 1;
const ACK_GIVE_UP: u8 = 2;

/// Payload-stream direction tags for the deterministic filler seed.
const DIR_DOWN: u8 = 0;
const DIR_UP: u8 = 1;

/// Smallest payload that can carry the integrity envelope (tag byte +
/// trailing CRC32). The fault model corrupts payloads and expects the
/// receiver to notice; below this size nothing protects the content, so
/// the transport refuses to run rather than silently accept corruption.
pub const MIN_WIRE_PAYLOAD: u64 = 5;

/// How traffic travels between the engine and its clients.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum TransportMode {
    /// Simulated in-process traffic with closed-form byte accounting
    /// (today's behavior, bit-identical to previous releases).
    #[default]
    InProc,
    /// Real framed traffic over localhost TCP to a worker pool.
    Socket(SocketConfig),
}

/// Where the client workers live.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerMode {
    /// Worker threads inside this process (no spawn cost, same protocol).
    Threads,
    /// Separate worker processes running `exe`, which must call
    /// [`worker_entry_if_requested`] early in `main` (the `kemf_worker`
    /// binary does).
    Process {
        /// Path of the worker executable to spawn.
        exe: PathBuf,
    },
}

/// Socket-transport configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SocketConfig {
    /// Number of workers; client `i` is served by worker `i % workers`.
    pub workers: usize,
    /// Threads in-process or spawned worker processes.
    pub mode: WorkerMode,
    /// Simulated-seconds → real-seconds factor for enacted delays, so
    /// straggler injection is a real sleep without test runs taking
    /// simulated hours. Worker sleeps are additionally capped at 100 ms.
    pub time_scale: f64,
    /// Socket read/write timeout; a worker silent for this long is a
    /// transport error, not a hang.
    pub io_timeout: Duration,
    /// Embed the quantized global model in broadcast payloads when it
    /// fits (exercising the [`crate::compress`] wire codec end to end).
    /// When false, broadcasts carry deterministic filler only.
    pub carry_model: bool,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            workers: 2,
            mode: WorkerMode::Threads,
            time_scale: 1e-6,
            io_timeout: Duration::from_secs(30),
            carry_model: true,
        }
    }
}

impl SocketConfig {
    /// In-process worker threads.
    pub fn threads(workers: usize) -> Self {
        SocketConfig { workers, ..SocketConfig::default() }
    }

    /// Spawned worker processes running `exe`.
    pub fn process(workers: usize, exe: impl Into<PathBuf>) -> Self {
        SocketConfig {
            workers,
            mode: WorkerMode::Process { exe: exe.into() },
            ..SocketConfig::default()
        }
    }

    /// Set the simulated-to-real time factor for enacted delays.
    pub fn time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Set the per-operation socket timeout.
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Broadcast deterministic filler instead of the quantized model.
    pub fn filler_only(mut self) -> Self {
        self.carry_model = false;
        self
    }

    /// Reject configurations the transport cannot honor.
    pub fn validate(&self) -> Result<(), TransportError> {
        if self.workers == 0 {
            return Err(TransportError::Config {
                reason: "socket transport needs at least one worker".into(),
            });
        }
        if !(self.time_scale.is_finite() && self.time_scale >= 0.0) {
            return Err(TransportError::Config {
                reason: format!(
                    "time_scale must be finite and non-negative, got {}",
                    self.time_scale
                ),
            });
        }
        if self.io_timeout.is_zero() {
            return Err(TransportError::Config {
                reason: "io_timeout must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Typed socket-transport failures, surfaced as
/// [`crate::engine::EngineError::Transport`].
#[derive(Debug)]
pub enum TransportError {
    /// The configuration cannot be honored (zero workers, payload below
    /// [`MIN_WIRE_PAYLOAD`], async rounds over sockets, …).
    Config {
        /// What was wrong.
        reason: String,
    },
    /// A socket operation failed (includes timeouts).
    Io {
        /// What the transport was doing.
        context: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// A peer sent bytes that do not parse as the framed protocol.
    Protocol {
        /// What was malformed.
        detail: String,
    },
    /// A worker's enacted outcome contradicts the drawn plan — the wire
    /// and the simulation no longer tell the same story.
    Desync {
        /// Federation round.
        round: usize,
        /// Client index.
        client: usize,
        /// What diverged.
        detail: String,
    },
    /// Workers failed to spawn or report in before the startup deadline.
    WorkerSpawn {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Config { reason } => {
                write!(f, "transport configuration rejected: {reason}")
            }
            TransportError::Io { context, source } => {
                write!(f, "transport i/o failed while {context}: {source}")
            }
            TransportError::Protocol { detail } => {
                write!(f, "transport protocol violation: {detail}")
            }
            TransportError::Desync { round, client, detail } => write!(
                f,
                "transport desync at round {round}, client {client}: {detail}"
            ),
            TransportError::WorkerSpawn { detail } => {
                write!(f, "worker startup failed: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Wire-level counters for one federation, reported on
/// [`crate::engine::RunReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Rounds enacted over the socket.
    pub rounds: usize,
    /// Frames written by the server (broadcasts, acks, shutdowns).
    pub frames_sent: u64,
    /// Frames read by the server (hellos, uploads, failure reports).
    pub frames_received: u64,
    /// Broadcast payload bytes actually written to sockets.
    pub payload_down_bytes: u64,
    /// Accepted upload payload bytes actually read from sockets.
    pub payload_up_bytes: u64,
    /// Failed-attempt upload payload bytes (transmitted but useless).
    pub payload_wasted_bytes: u64,
    /// Every byte that crossed a socket, framing included.
    pub wire_bytes: u64,
}

impl TransportStats {
    /// Payload bytes in both directions (the simulator-comparable total).
    pub fn payload_total(&self) -> u64 {
        self.payload_down_bytes
            .saturating_add(self.payload_up_bytes)
            .saturating_add(self.payload_wasted_bytes)
    }

    /// Framing + control bytes: everything on the wire that the
    /// simulator's accounting does not model.
    pub fn framing_overhead_bytes(&self) -> u64 {
        self.wire_bytes.saturating_sub(self.payload_total())
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-free: plenty for test-scale payloads.
// ---------------------------------------------------------------------------

/// IEEE CRC-32 over `bytes` (reflected, poly 0xEDB88320).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a over a few integers, for deterministic filler seeds.
fn fnv64(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in parts {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Fill `buf` with a deterministic xorshift64* stream.
fn fill_deterministic(buf: &mut [u8], seed: u64) {
    let mut s = seed | 1; // xorshift state must be non-zero
    let mut chunks = buf.chunks_exact_mut(8);
    for chunk in &mut chunks {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        chunk.copy_from_slice(&s.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let bytes = s.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

fn filler_seed(round: u64, client: u64, dir: u8) -> u64 {
    fnv64(&[0x4b4d_4654_5041_594c, round, client, dir as u64])
}

// ---------------------------------------------------------------------------
// Payload envelope: [tag u8][content][crc32 u32 over tag+content]
// ---------------------------------------------------------------------------

/// Content tag: deterministic filler.
const TAG_FILLER: u8 = 0;
/// Content tag: `[enc_len u64][QuantizedWeights wire bytes][filler pad]`.
const TAG_MODEL: u8 = 1;

/// Build a payload of exactly `len` bytes: tag + content + trailing CRC.
/// `model` is embedded when it fits; otherwise the content is filler
/// seeded deterministically from (round, client, direction).
pub(crate) fn build_payload(len: u64, seed: u64, model: Option<&[u8]>) -> Vec<u8> {
    let len = len as usize;
    let mut buf = vec![0u8; len];
    if len < MIN_WIRE_PAYLOAD as usize {
        fill_deterministic(&mut buf, seed);
        return buf;
    }
    let body_end = len - 4;
    match model {
        Some(enc) if 1 + 8 + enc.len() <= body_end => {
            buf[0] = TAG_MODEL;
            buf[1..9].copy_from_slice(&(enc.len() as u64).to_le_bytes());
            buf[9..9 + enc.len()].copy_from_slice(enc);
            fill_deterministic(&mut buf[9 + enc.len()..body_end], seed);
        }
        _ => {
            buf[0] = TAG_FILLER;
            fill_deterministic(&mut buf[1..body_end], seed);
        }
    }
    let crc = crc32(&buf[..body_end]);
    buf[body_end..].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Why a received payload failed validation.
#[derive(Debug)]
pub(crate) enum PayloadFault {
    /// Fewer bytes arrived than the sender declared.
    Truncated { expected: u64, got: u64 },
    /// The integrity checksum does not match the content.
    BadChecksum,
    /// The embedded model failed the compression codec's validation.
    Model(CompressError),
}

impl fmt::Display for PayloadFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadFault::Truncated { expected, got } => {
                write!(f, "payload truncated in transit: declared {expected} bytes, got {got}")
            }
            PayloadFault::BadChecksum => write!(f, "payload checksum mismatch"),
            PayloadFault::Model(e) => write!(f, "embedded model rejected: {e}"),
        }
    }
}

/// Validate a received payload against its declared length: size, CRC,
/// and — when a model is embedded — the full [`crate::compress`] decode.
pub(crate) fn validate_payload(bytes: &[u8], declared: u64) -> Result<(), PayloadFault> {
    if bytes.len() as u64 != declared {
        return Err(PayloadFault::Truncated { expected: declared, got: bytes.len() as u64 });
    }
    if bytes.len() < MIN_WIRE_PAYLOAD as usize {
        return Ok(()); // unstructured payload, nothing to check
    }
    let body_end = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4-byte slice"));
    if crc32(&bytes[..body_end]) != stored {
        return Err(PayloadFault::BadChecksum);
    }
    if bytes[0] == TAG_MODEL {
        if body_end < 9 {
            return Err(PayloadFault::Model(CompressError::Truncated { needed: 9, got: body_end }));
        }
        let enc_len =
            u64::from_le_bytes(bytes[1..9].try_into().expect("8-byte slice")) as usize;
        if 9 + enc_len > body_end {
            return Err(PayloadFault::Model(CompressError::Truncated {
                needed: 9 + enc_len,
                got: body_end,
            }));
        }
        let q = QuantizedWeights::from_wire(&bytes[9..9 + enc_len]).map_err(PayloadFault::Model)?;
        q.validate().map_err(PayloadFault::Model)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Framing: [MAGIC][kind u8][body_len u32][body][crc32 over kind+body]
// ---------------------------------------------------------------------------

/// Write one frame; returns the wire bytes written.
fn write_frame(w: &mut impl Write, kind: u8, body: &[u8]) -> io::Result<u64> {
    debug_assert!(body.len() as u64 <= MAX_FRAME_BODY as u64);
    let mut header = [0u8; 9];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = kind;
    header[5..9].copy_from_slice(&(body.len() as u32).to_le_bytes());
    let mut crc = !0u32;
    for &b in std::iter::once(&kind).chain(body.iter()) {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    w.write_all(&header)?;
    w.write_all(body)?;
    w.write_all(&(!crc).to_le_bytes())?;
    w.flush()?;
    Ok(FRAME_OVERHEAD + body.len() as u64)
}

/// Read one frame; returns (kind, body, wire bytes read).
fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>, u64)> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame magic"));
    }
    let kind = header[4];
    let body_len = u32::from_le_bytes(header[5..9].try_into().expect("4-byte slice"));
    if body_len > MAX_FRAME_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {body_len} bytes exceeds the {MAX_FRAME_BODY}-byte cap"),
        ));
    }
    let mut body = vec![0u8; body_len as usize];
    r.read_exact(&mut body)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let mut expect = vec![kind];
    expect.extend_from_slice(&body);
    if crc32(&expect) != u32::from_le_bytes(crc_bytes) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame checksum mismatch"));
    }
    Ok((kind, body, FRAME_OVERHEAD + body_len as u64))
}

// Little-endian body readers (the bodies are fixed layouts, not serde).
fn get_u64(body: &[u8], at: usize) -> io::Result<u64> {
    body.get(at..at + 8)
        .map(|s| u64::from_le_bytes(s.try_into().expect("8-byte slice")))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame body too short"))
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Serve one federation as a client worker: greet, then answer `DOWN`
/// transactions until `SHUTDOWN`. Used by worker threads, the
/// `kemf_worker` binary, and any binary that calls
/// [`worker_entry_if_requested`].
pub fn worker_loop(
    mut stream: TcpStream,
    worker_id: u64,
    time_scale: f64,
    io_timeout: Duration,
) -> Result<(), TransportError> {
    stream
        .set_nodelay(true)
        .and_then(|_| stream.set_read_timeout(Some(io_timeout)))
        .and_then(|_| stream.set_write_timeout(Some(io_timeout)))
        .map_err(|e| TransportError::Io { context: "configuring the worker socket", source: e })?;
    write_frame(&mut stream, K_HELLO, &worker_id.to_le_bytes())
        .map_err(|e| TransportError::Io { context: "sending hello", source: e })?;
    loop {
        let (kind, body, _) = read_frame(&mut stream)
            .map_err(|e| TransportError::Io { context: "reading a server frame", source: e })?;
        match kind {
            K_SHUTDOWN => return Ok(()),
            K_DOWN => serve_download(&mut stream, &body, time_scale)?,
            other => {
                return Err(TransportError::Protocol {
                    detail: format!("worker received unexpected frame kind {other}"),
                })
            }
        }
    }
}

/// Handle one client transaction: validate the broadcast, enact the
/// delay, honor the deadline, and upload until the server accepts or
/// gives up.
fn serve_download(
    stream: &mut TcpStream,
    body: &[u8],
    time_scale: f64,
) -> Result<(), TransportError> {
    let parse = |e: io::Error| TransportError::Protocol {
        detail: format!("malformed broadcast frame: {e}"),
    };
    let round = get_u64(body, 0).map_err(parse)?;
    let client = get_u64(body, 8).map_err(parse)?;
    let delay_s = f64::from_bits(get_u64(body, 16).map_err(parse)?);
    let deadline_s = f64::from_bits(get_u64(body, 24).map_err(parse)?);
    let up_len = get_u64(body, 32).map_err(parse)?;
    let declared_len = get_u64(body, 40).map_err(parse)?;
    let payload = body.get(48..).ok_or_else(|| TransportError::Protocol {
        detail: "broadcast frame shorter than its fixed header".into(),
    })?;

    let send_err = |stream: &mut TcpStream, code: u8, msg: &str| {
        let mut err_body = Vec::with_capacity(16 + 9 + msg.len());
        err_body.extend_from_slice(&round.to_le_bytes());
        err_body.extend_from_slice(&client.to_le_bytes());
        err_body.push(code);
        err_body.extend_from_slice(&(msg.len() as u64).to_le_bytes());
        err_body.extend_from_slice(msg.as_bytes());
        write_frame(stream, K_UP_ERR, &err_body)
            .map(|_| ())
            .map_err(|e| TransportError::Io { context: "reporting a client failure", source: e })
    };

    // A broadcast damaged in transit is exactly the simulator's
    // `DroppedAfterDownload`: the client got *something*, but cannot act
    // on it. Report and end the transaction.
    if let Err(fault) = validate_payload(payload, declared_len) {
        return send_err(stream, ERR_DECODE, &fault.to_string());
    }

    // The deadline comparison is the same f64 comparison the plan made —
    // bits travel unmodified, so the wire can never re-classify a
    // straggler.
    if delay_s > deadline_s {
        sleep_scaled(deadline_s, time_scale);
        return send_err(
            stream,
            ERR_TIMED_OUT,
            &format!("local work needed {delay_s:.3}s, deadline was {deadline_s:.3}s"),
        );
    }
    sleep_scaled(delay_s, time_scale);

    let report = build_payload(up_len, filler_seed(round, client, DIR_UP), None);
    let mut attempt = 1u64;
    loop {
        let mut up_body = Vec::with_capacity(32 + report.len());
        up_body.extend_from_slice(&round.to_le_bytes());
        up_body.extend_from_slice(&client.to_le_bytes());
        up_body.extend_from_slice(&attempt.to_le_bytes());
        up_body.extend_from_slice(&up_len.to_le_bytes());
        up_body.extend_from_slice(&report);
        write_frame(stream, K_UP, &up_body)
            .map_err(|e| TransportError::Io { context: "uploading a report", source: e })?;
        let (kind, ack, _) = read_frame(stream)
            .map_err(|e| TransportError::Io { context: "awaiting an ack", source: e })?;
        if kind != K_ACK {
            return Err(TransportError::Protocol {
                detail: format!("expected ack, got frame kind {kind}"),
            });
        }
        let ack_round = get_u64(&ack, 0).map_err(parse)?;
        let ack_client = get_u64(&ack, 8).map_err(parse)?;
        if ack_round != round || ack_client != client {
            return Err(TransportError::Protocol {
                detail: format!(
                    "ack for round {ack_round} client {ack_client}, expected round {round} client {client}"
                ),
            });
        }
        match ack.get(16).copied() {
            Some(ACK_ACCEPTED) | Some(ACK_GIVE_UP) => return Ok(()),
            Some(ACK_RETRY) => attempt += 1,
            other => {
                return Err(TransportError::Protocol {
                    detail: format!("unknown ack status {other:?}"),
                })
            }
        }
    }
}

/// Sleep `sim_s * scale` real seconds, capped at 100 ms so fault-heavy
/// tests stay fast regardless of the drawn delays.
fn sleep_scaled(sim_s: f64, scale: f64) {
    let real = (sim_s * scale).clamp(0.0, 0.1);
    if real > 0.0 && real.is_finite() {
        std::thread::sleep(Duration::from_secs_f64(real));
    }
}

/// Run a worker from the `KEMF_WORKER_*` environment (the body of the
/// `kemf_worker` binary).
pub fn worker_main_from_env() -> Result<(), TransportError> {
    let addr = std::env::var("KEMF_WORKER_ADDR").map_err(|_| TransportError::Config {
        reason: "KEMF_WORKER_ADDR is not set; this binary is spawned by the socket transport"
            .into(),
    })?;
    let id: u64 = std::env::var("KEMF_WORKER_ID")
        .ok()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| TransportError::Config {
            reason: "KEMF_WORKER_ID is missing or not an integer".into(),
        })?;
    let time_scale: f64 = std::env::var("KEMF_WORKER_TIME_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1e-6);
    let io_timeout = std::env::var("KEMF_WORKER_IO_TIMEOUT_S")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(30));
    let stream = TcpStream::connect(&addr).map_err(|e| TransportError::Io {
        context: "connecting to the federation server",
        source: e,
    })?;
    worker_loop(stream, id, time_scale, io_timeout)
}

/// If this process was spawned as a socket-transport worker
/// (`KEMF_SOCKET_WORKER=1` plus a rendezvous address), run the worker
/// loop and exit. Call first thing in `main` of any binary passed to
/// [`WorkerMode::Process`] — including self-exec examples.
pub fn worker_entry_if_requested() {
    let requested = std::env::var("KEMF_SOCKET_WORKER").as_deref() == Ok("1")
        && std::env::var("KEMF_WORKER_ADDR").is_ok();
    if requested {
        match worker_main_from_env() {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("kemf worker: {e}");
                std::process::exit(1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

enum WorkerHandle {
    Thread(std::thread::JoinHandle<()>),
    Process(std::process::Child),
}

/// The engine's end of the socket transport: owns the worker pool and
/// enacts one [`RoundPlan`] per round as real framed traffic.
pub struct SocketTransport {
    cfg: SocketConfig,
    conns: Vec<TcpStream>,
    workers: Vec<WorkerHandle>,
    stats: TransportStats,
    deadline_s: Option<f64>,
    finished: bool,
}

impl SocketTransport {
    /// Bind, spawn the worker pool, and wait for every worker to report
    /// in. `deadline_s` is the fault model's round deadline, shipped to
    /// workers inside each broadcast so they can self-abort stragglers.
    pub fn start(cfg: &SocketConfig, deadline_s: Option<f64>) -> Result<Self, TransportError> {
        cfg.validate()?;
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| TransportError::Io {
            context: "binding the federation server socket",
            source: e,
        })?;
        let addr = listener.local_addr().map_err(|e| TransportError::Io {
            context: "resolving the server address",
            source: e,
        })?;

        let mut workers = Vec::with_capacity(cfg.workers);
        match &cfg.mode {
            WorkerMode::Threads => {
                for id in 0..cfg.workers as u64 {
                    let scale = cfg.time_scale;
                    let timeout = cfg.io_timeout;
                    let handle = std::thread::Builder::new()
                        .name(format!("kemf-worker-{id}"))
                        .spawn(move || match TcpStream::connect(addr) {
                            Ok(stream) => {
                                if let Err(e) = worker_loop(stream, id, scale, timeout) {
                                    eprintln!("kemf worker {id}: {e}");
                                }
                            }
                            Err(e) => eprintln!("kemf worker {id}: connect failed: {e}"),
                        })
                        .map_err(|e| TransportError::WorkerSpawn {
                            detail: format!("thread spawn failed: {e}"),
                        })?;
                    workers.push(WorkerHandle::Thread(handle));
                }
            }
            WorkerMode::Process { exe } => {
                for id in 0..cfg.workers as u64 {
                    let child = std::process::Command::new(exe)
                        .env("KEMF_SOCKET_WORKER", "1")
                        .env("KEMF_WORKER_ADDR", addr.to_string())
                        .env("KEMF_WORKER_ID", id.to_string())
                        .env("KEMF_WORKER_TIME_SCALE", cfg.time_scale.to_string())
                        .env(
                            "KEMF_WORKER_IO_TIMEOUT_S",
                            cfg.io_timeout.as_secs().max(1).to_string(),
                        )
                        .spawn()
                        .map_err(|e| TransportError::WorkerSpawn {
                            detail: format!("spawning {}: {e}", exe.display()),
                        })?;
                    workers.push(WorkerHandle::Process(child));
                }
            }
        }

        let mut transport = SocketTransport {
            cfg: cfg.clone(),
            conns: Vec::new(),
            workers,
            stats: TransportStats::default(),
            deadline_s,
            finished: false,
        };
        transport.accept_workers(&listener, addr.port())?;
        Ok(transport)
    }

    /// Accept every worker's connection + hello, slotting them by the
    /// worker id they greet with.
    fn accept_workers(
        &mut self,
        listener: &TcpListener,
        port: u16,
    ) -> Result<(), TransportError> {
        listener.set_nonblocking(true).map_err(|e| TransportError::Io {
            context: "preparing the accept loop",
            source: e,
        })?;
        let n = self.cfg.workers;
        let mut slots: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut connected = 0usize;
        let started = Instant::now();
        let spawn_deadline = self.cfg.io_timeout.max(Duration::from_secs(10));
        while connected < n {
            if started.elapsed() > spawn_deadline {
                return Err(TransportError::WorkerSpawn {
                    detail: format!(
                        "{connected} of {n} workers reported in to port {port} within {spawn_deadline:?}"
                    ),
                });
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nodelay(true)
                        .and_then(|_| stream.set_read_timeout(Some(self.cfg.io_timeout)))
                        .and_then(|_| stream.set_write_timeout(Some(self.cfg.io_timeout)))
                        .map_err(|e| TransportError::Io {
                            context: "configuring an accepted worker socket",
                            source: e,
                        })?;
                    let (kind, body, wire) =
                        read_frame(&mut stream).map_err(|e| TransportError::Io {
                            context: "reading a worker hello",
                            source: e,
                        })?;
                    self.stats.frames_received += 1;
                    self.stats.wire_bytes += wire;
                    if kind != K_HELLO {
                        return Err(TransportError::Protocol {
                            detail: format!("expected hello, got frame kind {kind}"),
                        });
                    }
                    let id = get_u64(&body, 0).map_err(|e| TransportError::Protocol {
                        detail: format!("malformed hello: {e}"),
                    })? as usize;
                    if id >= n || slots[id].is_some() {
                        return Err(TransportError::Protocol {
                            detail: format!("worker greeted with invalid or duplicate id {id}"),
                        });
                    }
                    slots[id] = Some(stream);
                    connected += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    return Err(TransportError::Io { context: "accepting a worker", source: e })
                }
            }
        }
        self.conns = slots.into_iter().map(|s| s.expect("all slots filled")).collect();
        Ok(())
    }

    /// Wire-level counters so far.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    fn send(&mut self, worker: usize, kind: u8, body: &[u8]) -> Result<u64, TransportError> {
        let wire = write_frame(&mut self.conns[worker], kind, body).map_err(|e| {
            TransportError::Io { context: "writing a frame to a worker", source: e }
        })?;
        self.stats.frames_sent += 1;
        self.stats.wire_bytes += wire;
        Ok(wire)
    }

    fn recv(&mut self, worker: usize) -> Result<(u8, Vec<u8>), TransportError> {
        let (kind, body, wire) = read_frame(&mut self.conns[worker]).map_err(|e| {
            TransportError::Io { context: "reading a frame from a worker", source: e }
        })?;
        self.stats.frames_received += 1;
        self.stats.wire_bytes += wire;
        Ok((kind, body))
    }

    /// Enact one drawn round plan as real traffic and return the
    /// measured [`RoundComm`]. Each client's frames are sized by its
    /// own [`ClientPlan`] (`plans` aligns index-for-index with
    /// `plan.clients`), so with faults off the measurement equals
    /// `plan.comm(plans)` exactly; under faults, truncated broadcasts
    /// may measure fewer downlink bytes than the simulator charges
    /// (honesty: we count what actually crossed the wire). The quantized
    /// global model is embedded only in [`ModelView::Full`] broadcasts —
    /// window and logits views carry exactly their declared bytes of
    /// CRC-protected filler, never a smuggled full model.
    pub fn run_round(
        &mut self,
        round: usize,
        plan: &RoundPlan,
        plans: &[ClientPlan],
        global: Option<(ModelSpec, ModelState)>,
    ) -> Result<RoundComm, TransportError> {
        if plans.len() != plan.clients.len() {
            return Err(TransportError::Config {
                reason: format!(
                    "{} client plans for {} sampled clients",
                    plans.len(),
                    plan.clients.len()
                ),
            });
        }
        for p in plans {
            if p.payload.down_bytes < MIN_WIRE_PAYLOAD || p.payload.up_bytes < MIN_WIRE_PAYLOAD {
                return Err(TransportError::Config {
                    reason: format!(
                        "client {} payload ({} down / {} up) is below the {MIN_WIRE_PAYLOAD}-byte \
                         integrity envelope the fault model needs",
                        p.client, p.payload.down_bytes, p.payload.up_bytes
                    ),
                });
            }
        }
        // Quantize the global model once per round; full-view broadcasts
        // embed it when it fits. Models the codec rejects (e.g. NaN
        // weights after divergence) fall back to filler — payload size is
        // identical either way, so accounting is unaffected.
        let encoded = if self.cfg.carry_model {
            global
                .as_ref()
                .and_then(|(_, state)| compress::quantize(&state.params, compress::DEFAULT_CHUNK).ok())
                .map(|q| q.to_wire())
        } else {
            None
        };
        let mut measured = RoundComm::default();
        for (slot, (c, p)) in plan.clients.iter().zip(plans).enumerate() {
            let model = match p.view {
                ModelView::Full => encoded.as_deref(),
                ModelView::Window { .. } | ModelView::Logits => None,
            };
            self.enact_client(round, slot, c.client, c.outcome, p.payload, model, &mut measured)?;
        }
        self.stats.rounds += 1;
        self.stats.payload_down_bytes += measured.down_bytes;
        self.stats.payload_up_bytes += measured.up_bytes;
        self.stats.payload_wasted_bytes += measured.wasted_up_bytes;
        Ok(measured)
    }

    /// One client transaction, faithful to its drawn outcome.
    #[allow(clippy::too_many_arguments)]
    fn enact_client(
        &mut self,
        round: usize,
        slot: usize,
        client: usize,
        outcome: ClientOutcome,
        payload: WirePayload,
        model: Option<&[u8]>,
        measured: &mut RoundComm,
    ) -> Result<(), TransportError> {
        // A client that crashed before download never contacts anyone:
        // nothing crosses the wire, nothing is charged.
        if let ClientOutcome::DroppedBeforeDownload = outcome {
            return Ok(());
        }
        let worker = client % self.conns.len();

        let mut down =
            build_payload(payload.down_bytes, filler_seed(round as u64, client as u64, DIR_DOWN), model);
        // Enact a mid-transit drop as real damage to the broadcast:
        // alternately a flipped byte (CRC catches it) or a truncation
        // (length check catches it). The frame header describes what is
        // actually sent, so the stream itself never desyncs.
        if let ClientOutcome::DroppedAfterDownload = outcome {
            if (round + slot).is_multiple_of(2) {
                let idx = (round * 31 + client * 7) % down.len();
                down[idx] ^= 0xA5;
            } else {
                down.truncate(down.len() / 2);
            }
        }
        let delay_s = match outcome {
            ClientOutcome::StragglerTimedOut { delay_s } => delay_s,
            ClientOutcome::Completed { delay_s, .. } => delay_s,
            _ => 0.0,
        };
        let deadline_s = self.deadline_s.unwrap_or(f64::INFINITY);

        let mut body = Vec::with_capacity(48 + down.len());
        body.extend_from_slice(&(round as u64).to_le_bytes());
        body.extend_from_slice(&(client as u64).to_le_bytes());
        body.extend_from_slice(&delay_s.to_bits().to_le_bytes());
        body.extend_from_slice(&deadline_s.to_bits().to_le_bytes());
        body.extend_from_slice(&payload.up_bytes.to_le_bytes());
        body.extend_from_slice(&payload.down_bytes.to_le_bytes());
        body.extend_from_slice(&down);
        let down_sent = down.len() as u64;
        self.send(worker, K_DOWN, &body)?;
        measured.down_bytes += down_sent;
        measured.down_clients += 1;

        let desync = |detail: String| TransportError::Desync { round, client, detail };

        match outcome {
            ClientOutcome::DroppedBeforeDownload => unreachable!("handled above"),
            ClientOutcome::DroppedAfterDownload => {
                let (code, _, msg) = self.expect_up_err(worker, round, client)?;
                if code != ERR_DECODE {
                    return Err(desync(format!(
                        "planned a corrupted broadcast, worker reported code {code} ({msg})"
                    )));
                }
            }
            ClientOutcome::StragglerTimedOut { .. } => {
                let (code, _, msg) = self.expect_up_err(worker, round, client)?;
                if code != ERR_TIMED_OUT {
                    return Err(desync(format!(
                        "planned a timed-out straggler, worker reported code {code} ({msg})"
                    )));
                }
            }
            ClientOutcome::UploadFailed { attempts } => {
                // Every attempt's bytes really crossed the wire — that is
                // exactly why the simulator charges them as wasted.
                for k in 1..=attempts as u64 {
                    let report = self.expect_upload(worker, round, client, k)?;
                    measured.wasted_up_bytes += report.len() as u64;
                    let status = if k < attempts as u64 { ACK_RETRY } else { ACK_GIVE_UP };
                    self.send_ack(worker, round, client, status)?;
                }
            }
            ClientOutcome::Completed { attempts, .. } => {
                for k in 1..=attempts as u64 {
                    let report = self.expect_upload(worker, round, client, k)?;
                    if k < attempts as u64 {
                        measured.wasted_up_bytes += report.len() as u64;
                        self.send_ack(worker, round, client, ACK_RETRY)?;
                    } else {
                        // The accepted report must arrive intact: length
                        // per the payload contract, checksum clean.
                        validate_payload(&report, payload.up_bytes).map_err(|fault| {
                            desync(format!("accepted upload failed validation: {fault}"))
                        })?;
                        measured.up_bytes += report.len() as u64;
                        measured.up_clients += 1;
                        self.send_ack(worker, round, client, ACK_ACCEPTED)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Receive an upload attempt, verifying round/client/attempt tags.
    /// Returns the report payload bytes.
    fn expect_upload(
        &mut self,
        worker: usize,
        round: usize,
        client: usize,
        attempt: u64,
    ) -> Result<Vec<u8>, TransportError> {
        let (kind, body) = self.recv(worker)?;
        let desync = |detail: String| TransportError::Desync { round, client, detail };
        let parse = |e: io::Error| TransportError::Protocol {
            detail: format!("malformed upload frame: {e}"),
        };
        if kind == K_UP_ERR {
            let msg = Self::up_err_message(&body);
            return Err(desync(format!("expected upload attempt {attempt}, worker failed: {msg}")));
        }
        if kind != K_UP {
            return Err(TransportError::Protocol {
                detail: format!("expected upload, got frame kind {kind}"),
            });
        }
        let got_round = get_u64(&body, 0).map_err(parse)? as usize;
        let got_client = get_u64(&body, 8).map_err(parse)? as usize;
        let got_attempt = get_u64(&body, 16).map_err(parse)?;
        if got_round != round || got_client != client || got_attempt != attempt {
            return Err(desync(format!(
                "upload tagged round {got_round} client {got_client} attempt {got_attempt}, \
                 expected round {round} client {client} attempt {attempt}"
            )));
        }
        if body.len() < 32 {
            return Err(parse(io::Error::new(io::ErrorKind::InvalidData, "missing payload")));
        }
        Ok(body[32..].to_vec())
    }

    /// Receive a terminal failure report, verifying round/client.
    fn expect_up_err(
        &mut self,
        worker: usize,
        round: usize,
        client: usize,
    ) -> Result<(u8, u64, String), TransportError> {
        let (kind, body) = self.recv(worker)?;
        if kind == K_UP {
            return Err(TransportError::Desync {
                round,
                client,
                detail: "planned a failed client, but a clean upload arrived".into(),
            });
        }
        if kind != K_UP_ERR {
            return Err(TransportError::Protocol {
                detail: format!("expected failure report, got frame kind {kind}"),
            });
        }
        let parse = |e: io::Error| TransportError::Protocol {
            detail: format!("malformed failure report: {e}"),
        };
        let got_round = get_u64(&body, 0).map_err(parse)? as usize;
        let got_client = get_u64(&body, 8).map_err(parse)? as usize;
        if got_round != round || got_client != client {
            return Err(TransportError::Desync {
                round,
                client,
                detail: format!("failure report tagged round {got_round} client {got_client}"),
            });
        }
        let code = body.get(16).copied().unwrap_or(0);
        Ok((code, 0, Self::up_err_message(&body)))
    }

    fn up_err_message(body: &[u8]) -> String {
        let len = get_u64(body, 17).unwrap_or(0) as usize;
        body.get(25..25 + len)
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .unwrap_or_else(|| "<unreadable>".into())
    }

    fn send_ack(
        &mut self,
        worker: usize,
        round: usize,
        client: usize,
        status: u8,
    ) -> Result<(), TransportError> {
        let mut body = Vec::with_capacity(17);
        body.extend_from_slice(&(round as u64).to_le_bytes());
        body.extend_from_slice(&(client as u64).to_le_bytes());
        body.push(status);
        self.send(worker, K_ACK, &body).map(|_| ())
    }

    /// Shut the worker pool down cleanly and return the final wire
    /// counters.
    pub fn finish(mut self) -> Result<TransportStats, TransportError> {
        self.shutdown_pool()?;
        self.finished = true;
        Ok(self.stats)
    }

    fn shutdown_pool(&mut self) -> Result<(), TransportError> {
        for worker in 0..self.conns.len() {
            self.send(worker, K_SHUTDOWN, &[])?;
        }
        for handle in self.workers.drain(..) {
            match handle {
                WorkerHandle::Thread(h) => {
                    if h.join().is_err() {
                        return Err(TransportError::WorkerSpawn {
                            detail: "a worker thread panicked".into(),
                        });
                    }
                }
                WorkerHandle::Process(mut child) => {
                    let status = child.wait().map_err(|e| TransportError::Io {
                        context: "waiting for a worker process",
                        source: e,
                    })?;
                    if !status.success() {
                        return Err(TransportError::WorkerSpawn {
                            detail: format!("a worker process exited with {status}"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        if !self.finished {
            // Best effort: unblock workers so threads/processes exit.
            let _ = self.shutdown_pool();
        }
    }
}

impl fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocketTransport")
            .field("cfg", &self.cfg)
            .field("workers", &self.conns.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{ClientRound, FaultConfig};

    /// Uniform full-model plans for every sampled client of `plan`.
    fn uniform(plan: &RoundPlan, payload: WirePayload) -> Vec<ClientPlan> {
        let sampled: Vec<usize> = plan.clients.iter().map(|c| c.client).collect();
        ClientPlan::uniform(&sampled, ModelView::Full, payload)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_round_trips_and_detects_damage() {
        for len in [5u64, 9, 64, 1000] {
            let p = build_payload(len, filler_seed(3, 7, DIR_DOWN), None);
            assert_eq!(p.len() as u64, len);
            validate_payload(&p, len).expect("clean payload validates");

            let mut flipped = p.clone();
            flipped[(len / 2) as usize] ^= 0xA5;
            assert!(
                matches!(validate_payload(&flipped, len), Err(PayloadFault::BadChecksum)),
                "single byte flip must fail the checksum at len {len}"
            );

            let truncated = &p[..p.len() / 2];
            assert!(
                matches!(validate_payload(truncated, len), Err(PayloadFault::Truncated { .. })),
                "short payload must be reported as truncated"
            );
        }
    }

    #[test]
    fn payload_embeds_and_recovers_a_quantized_model() {
        let w = kemf_nn::serialize::Weights {
            values: (0..300).map(|i| (i as f32) * 0.01 - 1.5).collect(),
            lens: vec![100, 200],
        };
        let q = compress::quantize(&w, 64).unwrap();
        let enc = q.to_wire();
        let len = (1 + 8 + enc.len() + 4 + 32) as u64; // room + filler pad
        let p = build_payload(len, 9, Some(&enc));
        assert_eq!(p[0], TAG_MODEL);
        validate_payload(&p, len).expect("embedded model validates");

        // Damage inside the embedded model region must surface as a
        // checksum failure (outer envelope catches it first).
        let mut bad = p.clone();
        bad[20] ^= 0x01;
        assert!(validate_payload(&bad, len).is_err());

        // Too small to embed: falls back to filler.
        let small = build_payload(16, 9, Some(&enc));
        assert_eq!(small[0], TAG_FILLER);
        validate_payload(&small, 16).unwrap();
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        let body = b"hello frame".to_vec();
        let sent = write_frame(&mut wire, K_DOWN, &body).unwrap();
        assert_eq!(sent, wire.len() as u64);
        let (kind, got, read) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!((kind, got, read), (K_DOWN, body, sent));
    }

    #[test]
    fn frame_reader_rejects_garbage_and_bad_checksums() {
        assert!(read_frame(&mut &b"XXXXYYYYZZZZZ"[..]).is_err());
        let mut wire = Vec::new();
        write_frame(&mut wire, K_UP, b"payload").unwrap();
        let end = wire.len() - 1;
        wire[end] ^= 0xFF; // damage the CRC
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn config_validation_rejects_broken_setups() {
        assert!(SocketConfig::threads(0).validate().is_err());
        assert!(SocketConfig::threads(2).time_scale(f64::NAN).validate().is_err());
        assert!(SocketConfig::threads(2).io_timeout(Duration::ZERO).validate().is_err());
        assert!(SocketConfig::threads(2).validate().is_ok());
    }

    /// Drive a full plan over real localhost sockets with thread workers
    /// and check the measured bytes against the simulator's closed form.
    #[test]
    fn enacted_plan_measures_exactly_the_simulated_bytes() {
        let payload = WirePayload { down_bytes: 96, up_bytes: 40 };
        let plan = RoundPlan {
            clients: vec![
                ClientRound { client: 0, outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 } },
                ClientRound { client: 1, outcome: ClientOutcome::DroppedBeforeDownload },
                ClientRound { client: 2, outcome: ClientOutcome::Completed { attempts: 3, delay_s: 1.5 } },
                ClientRound { client: 3, outcome: ClientOutcome::UploadFailed { attempts: 2 } },
                ClientRound { client: 4, outcome: ClientOutcome::StragglerTimedOut { delay_s: 99.0 } },
            ],
            min_quorum: 1,
        };
        let mut t = SocketTransport::start(&SocketConfig::threads(2), Some(30.0)).unwrap();
        let measured = t.run_round(0, &plan, &uniform(&plan, payload), None).unwrap();
        let expected = plan.comm(&uniform(&plan, payload)).unwrap();
        assert_eq!(measured, expected, "faults-on byte-flip path must still match the plan");
        let stats = t.finish().unwrap();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.payload_down_bytes, measured.down_bytes);
        assert_eq!(
            stats.payload_up_bytes + stats.payload_wasted_bytes,
            measured.up_bytes + measured.wasted_up_bytes
        );
        assert!(stats.framing_overhead_bytes() > 0, "framing is never free");
        assert!(stats.wire_bytes > stats.payload_total());
    }

    /// Truncated broadcasts measure fewer downlink bytes than the plan
    /// charges — the wire is honest about what was actually sent.
    #[test]
    fn truncated_broadcast_measures_fewer_bytes_than_charged() {
        let payload = WirePayload { down_bytes: 100, up_bytes: 40 };
        // (round 0 + slot 1) odd → truncation path.
        let plan = RoundPlan {
            clients: vec![
                ClientRound { client: 0, outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 } },
                ClientRound { client: 1, outcome: ClientOutcome::DroppedAfterDownload },
            ],
            min_quorum: 1,
        };
        let mut t = SocketTransport::start(&SocketConfig::threads(1), None).unwrap();
        let measured = t.run_round(0, &plan, &uniform(&plan, payload), None).unwrap();
        let charged = plan.comm(&uniform(&plan, payload)).unwrap();
        assert_eq!(measured.down_clients, charged.down_clients);
        assert_eq!(measured.down_bytes, charged.down_bytes - 50, "half the broadcast was cut");
        assert_eq!(measured.up_bytes, charged.up_bytes);
        t.finish().unwrap();
    }

    #[test]
    fn tiny_payloads_are_refused_with_a_typed_error() {
        let payload = WirePayload { down_bytes: 3, up_bytes: 2 };
        let plan = RoundPlan {
            clients: vec![ClientRound {
                client: 0,
                outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 },
            }],
            min_quorum: 1,
        };
        let mut t = SocketTransport::start(&SocketConfig::threads(1), None).unwrap();
        let err = t.run_round(0, &plan, &uniform(&plan, payload), None).unwrap_err();
        assert!(matches!(err, TransportError::Config { .. }), "got: {err}");
        // Misaligned plans are refused before anything crosses the wire.
        let err = t.run_round(0, &plan, &[], None).unwrap_err();
        assert!(matches!(err, TransportError::Config { .. }), "got: {err}");
        t.finish().unwrap();
    }

    /// The fault RNG and sampler are never touched by the transport: the
    /// same drawn plan enacted twice measures identical bytes.
    #[test]
    fn enactment_is_deterministic() {
        let faults = FaultConfig {
            drop_before_download: 0.1,
            drop_after_download: 0.15,
            straggler_prob: 0.3,
            straggler_delay_s: 40.0,
            round_deadline_s: Some(20.0),
            upload_failure_prob: 0.2,
            ..FaultConfig::default()
        };
        let sampled: Vec<usize> = (0..12).collect();
        let mut rng = kemf_tensor::rng::seeded_rng(77);
        let plan = crate::lifecycle::plan_round(&sampled, &faults, &mut rng);
        let payload = WirePayload { down_bytes: 64, up_bytes: 24 };

        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut t = SocketTransport::start(&SocketConfig::threads(3), Some(20.0)).unwrap();
            let m = t.run_round(5, &plan, &uniform(&plan, payload), None).unwrap();
            t.finish().unwrap();
            runs.push(m);
        }
        assert_eq!(runs[0], runs[1]);
    }

    /// Per-client plans drive per-client frame sizes: a window client's
    /// broadcast really is smaller on the wire, and the measurement
    /// matches the per-client closed form.
    #[test]
    fn mixed_plans_measure_each_client_at_its_own_bytes() {
        let plan = RoundPlan {
            clients: vec![
                ClientRound { client: 0, outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 } },
                ClientRound { client: 1, outcome: ClientOutcome::Completed { attempts: 1, delay_s: 0.0 } },
            ],
            min_quorum: 1,
        };
        let plans = vec![
            ClientPlan {
                client: 0,
                view: ModelView::Window { offset: 0, cycle: 2 },
                payload: WirePayload { down_bytes: 48, up_bytes: 24 },
            },
            ClientPlan {
                client: 1,
                view: ModelView::Window { offset: 1, cycle: 2 },
                payload: WirePayload { down_bytes: 64, up_bytes: 32 },
            },
        ];
        let mut t = SocketTransport::start(&SocketConfig::threads(2), None).unwrap();
        let measured = t.run_round(0, &plan, &plans, None).unwrap();
        assert_eq!(measured.down_bytes, 48 + 64);
        assert_eq!(measured.up_bytes, 24 + 32);
        assert_eq!(measured, plan.comm(&plans).unwrap());
        t.finish().unwrap();
    }
}
