//! FedProx (Li et al. 2020): FedAvg plus a proximal term
//! `μ/2 · ‖w − w_global‖²` in every client's local objective, which damps
//! client drift under heterogeneous data.

use crate::context::FlContext;
use crate::engine::{EngineError, FedAlgorithm, RoundOutcome};
use crate::lifecycle::{ClientPlan, ModelView, WirePayload};
use crate::local::{add_prox_to_grads, LocalCfg};
use crate::scheduler::PreparedUpdate;
use crate::state::{check_model_layout, AlgorithmState, RestoreError};
use crate::trace::{Phase, RoundScope};
use crate::weight_common::{
    fan_out_clients, fuse_state_average, train_cohort_states, BoxedGradHook, GlobalModel,
    StateAverage,
};
use kemf_nn::layer::Layer;
use kemf_nn::models::ModelSpec;
use std::sync::Arc;

/// The FedProx baseline.
pub struct FedProx {
    global: GlobalModel,
    /// Proximal coefficient μ.
    pub mu: f32,
}

impl FedProx {
    /// New FedProx server; the paper's benchmark default is μ = 0.01–0.1.
    pub fn new(spec: ModelSpec, mu: f32) -> Self {
        assert!(mu >= 0.0, "mu must be non-negative");
        FedProx { global: GlobalModel::new(spec), mu }
    }
}

impl FedAlgorithm for FedProx {
    fn name(&self) -> String {
        "FedProx".into()
    }

    fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        ClientPlan::uniform(
            sampled,
            ModelView::Full,
            WirePayload::symmetric(self.global.payload_bytes()),
        )
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        if sampled.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(round),
        };
        // Every client's hook pulls toward this round's global weights.
        let anchor = Arc::new(self.global.state.params.values.clone());
        let mu = self.mu;
        let total: f32 = sampled.iter().map(|&k| ctx.client_shard_len(k) as f32).sum();
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut avg = StateAverage::new(&self.global.state, total);
        let mut loss_sum = 0.0f32;
        let mut reported = 0usize;
        scope.phase(Phase::LocalUpdate, |c| {
            for batch in sampled.chunks(chunk) {
                let anchor = Arc::clone(&anchor);
                let results = fan_out_clients(
                    &self.global.state,
                    self.global.spec,
                    round,
                    batch,
                    ctx,
                    &local,
                    &move |_k| {
                        let anchor = Arc::clone(&anchor);
                        Some(Box::new(move |net: &mut dyn Layer| {
                            add_prox_to_grads(net, &anchor, mu);
                        }) as Box<dyn Fn(&mut dyn Layer) + Send + Sync>)
                    },
                );
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.outcome.steps as u64).sum::<u64>();
                c.batches = c.steps;
                for r in &results {
                    avg.add(&r.state, r.n_samples as f32);
                    loss_sum += r.outcome.mean_loss;
                    reported += 1;
                }
            }
        });
        scope.phase(Phase::Fusion, |c| {
            c.clients = reported;
            self.global.state = avg.finish();
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(wave),
        };
        // Clients dispatched in wave `wave` anchor to the global weights
        // they were handed at dispatch time, exactly as in a sync round.
        let anchor = Arc::new(self.global.state.params.values.clone());
        let mu = self.mu;
        let hook_for = move |_k: usize| {
            let anchor = Arc::clone(&anchor);
            Some(Box::new(move |net: &mut dyn Layer| {
                add_prox_to_grads(net, &anchor, mu);
            }) as BoxedGradHook)
        };
        Ok(train_cohort_states(&self.global, wave, sampled, ctx, &local, &hook_for, scope))
    }

    fn fuse(
        &mut self,
        _round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        _ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        fuse_state_average("FedProx", &mut self.global, updates, scope)
    }

    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.global.evaluate(ctx)
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        // μ is construction config, not evolving state; only the global
        // weights move between rounds.
        Ok(AlgorithmState::new(self.name(), 1).with_model("global", self.global.state.clone()))
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let incoming = state.model("global")?;
        check_model_layout("global", incoming, &self.global.state)?;
        self.global.state = incoming.clone();
        Ok(())
    }

    fn global_model(&self) -> Option<(kemf_nn::models::ModelSpec, kemf_nn::serialize::ModelState)> {
        Some((self.global.spec, self.global.state.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::engine::{Engine, RunOptions};
    use crate::fedavg::FedAvg;
    use crate::metrics::History;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn ctx(seed: u64, alpha: f64) -> FlContext {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(240, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: 4,
            sample_ratio: 1.0,
            rounds: 5,
            local_epochs: 2,
            batch_size: 16,
            alpha,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        FlContext::new(cfg, &train, test)
    }

    #[test]
    fn fedprox_learns_above_chance() {
        let c = ctx(21, 1.0);
        let mut algo = FedProx::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0), 0.01);
        let h = run(&mut algo, &c);
        assert!(h.best_accuracy() > 0.3, "got {}", h.best_accuracy());
    }

    #[test]
    fn mu_zero_matches_fedavg_exactly() {
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0);
        let c = ctx(22, 0.5);
        let mut prox = FedProx::new(spec, 0.0);
        let hp = run(&mut prox, &c);
        let c = ctx(22, 0.5);
        let mut avg = FedAvg::new(spec);
        let ha = run(&mut avg, &c);
        assert_eq!(hp.accuracies(), ha.accuracies(), "μ=0 FedProx must equal FedAvg");
    }

    #[test]
    fn large_mu_restrains_drift() {
        // With a huge μ the clients barely move, so the global weights stay
        // close to initialization compared to μ=0.
        let spec = ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0);
        let init = kemf_nn::model::Model::new(spec).weights();
        let drift = |mu: f32| {
            let mut c = ctx(23, 0.5);
            // Plain SGD so a large μ contracts instead of oscillating
            // through the momentum buffer.
            c.cfg.momentum = 0.0;
            let mut algo = FedProx::new(spec, mu);
            let _ = run(&mut algo, &c);
            algo.global.state.params.delta(&init).norm()
        };
        let free = drift(0.0);
        let pinned = drift(2.0);
        // The anchor itself advances every round, so the proximal term only
        // damps (not eliminates) cumulative drift.
        assert!(pinned < free * 0.8, "pinned {pinned} vs free {free}");
    }
}
