//! Server-side ensemble distillation (Algorithm 2, Eq. 4): encode the
//! ensembled client knowledge `Θ` into the global knowledge network θ_g
//! by minimizing `D_KL(Θ ‖ θ_g)` on unlabeled/public data.

use crate::ensemble::{ensemble_logits, EnsembleStrategy};
use kemf_fl::compress::ComputePrecision;
use kemf_nn::layer::Precision;
use kemf_nn::loss::{kl_to_target_ws, soften};
use kemf_nn::model::Model;
use kemf_nn::optim::{Sgd, SgdConfig};
use kemf_tensor::rng::seeded_rng;
use kemf_tensor::Tensor;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Server distillation hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Distillation epochs over the public pool.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Optimizer for the global knowledge network.
    pub sgd: SgdConfig,
    /// Softening temperature for ensemble targets.
    pub temperature: f32,
    /// Ensemble strategy producing the targets.
    pub strategy: EnsembleStrategy,
    /// Gradient-norm clip for the student (0 disables).
    pub clip_norm: f32,
    /// Compute format for the *teacher* logit pass. `Int8` quantizes the
    /// frozen teachers' forward (weights and activations) for roughly
    /// half the memory traffic; the student's training forward/backward
    /// stays exact f32 either way. Defaults to `F32`, so configs that
    /// never mention it are bit-identical to the pre-quantization path.
    pub precision: ComputePrecision,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            epochs: 2,
            batch: 32,
            sgd: SgdConfig { lr: 0.02, momentum: 0.9, weight_decay: 0.0, nesterov: false },
            temperature: 2.0,
            strategy: EnsembleStrategy::MaxLogits,
            clip_norm: 5.0,
            precision: ComputePrecision::F32,
        }
    }
}

/// Outcome of one server-side ensemble distillation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistillOutcome {
    /// Student SGD steps taken (one per batch).
    pub steps: usize,
    /// Batches consumed across all epochs; equals `steps`.
    pub batches: usize,
    /// Mean KL loss of the final epoch.
    pub last_epoch_loss: f32,
}

/// Distill the ensemble of `teachers` into `student` using the unlabeled
/// `pool` (`[N, C, H, W]`).
pub fn distill_ensemble(
    student: &mut Model,
    teachers: &mut [Model],
    pool: &Tensor,
    cfg: &DistillConfig,
    seed: u64,
) -> DistillOutcome {
    assert!(!teachers.is_empty(), "distillation needs at least one teacher");
    let n = pool.dims()[0];
    assert!(n > 0, "empty distillation pool");
    // Pre-compute ensemble targets once: teachers are frozen during
    // server distillation. Teacher logits use batch statistics
    // (train-mode forward): after a short local update the teachers'
    // batch-norm running statistics lag their weights badly, and
    // eval-mode logits can explode into confidently-wrong targets that
    // poison the distilled student.
    // The teacher pass — the bulk of server-side inference FLOPs — honours
    // `cfg.precision`; each teacher is restored to exact f32 afterwards so
    // the precision choice never leaks into later rounds.
    let member_logits: Vec<Tensor> = teachers
        .iter_mut()
        .map(|t| {
            t.set_precision(cfg.precision.to_layer());
            let z = t.predict_batch_stats(pool);
            t.set_precision(Precision::F32);
            z
        })
        .collect();
    let ensembled = ensemble_logits(&member_logits, cfg.strategy);
    let targets = soften(&ensembled, cfg.temperature);

    let mut opt = Sgd::new(cfg.sgd);
    let mut rng = seeded_rng(seed);
    let mut out = DistillOutcome::default();
    for _epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch) {
            let images = pool.gather_rows(chunk);
            let target = targets.gather_rows(chunk);
            student.zero_grad();
            let logits = student.forward(&images, true);
            let (loss, grad) = kl_to_target_ws(&logits, &target, cfg.temperature, student.ws_mut());
            student.recycle(logits);
            let gx = student.backward(&grad);
            student.recycle(grad);
            student.recycle(gx);
            if cfg.clip_norm > 0.0 {
                let _ = kemf_nn::optim::clip_grad_norm(student.net_mut(), cfg.clip_norm);
            }
            opt.step(student.net_mut());
            loss_sum += loss as f64;
            batches += 1;
        }
        out.steps += batches;
        out.batches += batches;
        out.last_epoch_loss = (loss_sum / batches.max(1) as f64) as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_nn::models::{Arch, ModelSpec};
    use kemf_nn::optim::SgdConfig;

    fn trained_teacher(seed: u64) -> (Model, kemf_data::dataset::Dataset) {
        let task = SynthTask::new(SynthConfig::mnist_like(2));
        let data = task.generate(120, seed);
        let mut m = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, seed));
        let mut opt = Sgd::new(SgdConfig { lr: 0.08, momentum: 0.9, weight_decay: 0.0, nesterov: false });
        let mut rng = seeded_rng(seed);
        for _ in 0..4 {
            for (x, y) in data.shuffled_batches(16, &mut rng) {
                let _ = m.train_batch(&x, &y, &mut opt);
            }
        }
        (m, data)
    }

    #[test]
    fn distillation_transfers_teacher_knowledge() {
        let task = SynthTask::new(SynthConfig::mnist_like(2));
        let (t1, _) = trained_teacher(1);
        let (t2, _) = trained_teacher(2);
        let mut teachers = vec![t1, t2];
        let pool = task.generate_unlabeled(160, 9);
        let test = task.generate(100, 77);
        let mut student = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 99));
        let before = student.evaluate(&test.images, &test.labels, 32);
        let cfg = DistillConfig { epochs: 4, ..Default::default() };
        let out = distill_ensemble(&mut student, &mut teachers, &pool, &cfg, 3);
        let after = student.evaluate(&test.images, &test.labels, 32);
        assert!(out.last_epoch_loss.is_finite());
        // 160-sample pool / 32 batch × 4 epochs.
        assert_eq!(out.steps, 20);
        assert_eq!(out.batches, out.steps);
        assert!(
            after > before + 0.1,
            "distillation should lift the untrained student well above its \
             initial accuracy: {before} → {after}"
        );
    }

    #[test]
    fn distillation_loss_decreases() {
        let task = SynthTask::new(SynthConfig::mnist_like(2));
        let (t1, _) = trained_teacher(4);
        let mut teachers = vec![t1];
        let pool = task.generate_unlabeled(120, 10);
        let mut student = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 98));
        let one = distill_ensemble(
            &mut student,
            &mut teachers,
            &pool,
            &DistillConfig { epochs: 1, ..Default::default() },
            5,
        )
        .last_epoch_loss;
        let more = distill_ensemble(
            &mut student,
            &mut teachers,
            &pool,
            &DistillConfig { epochs: 3, ..Default::default() },
            6,
        )
        .last_epoch_loss;
        assert!(more < one, "KL should shrink with more distillation: {one} → {more}");
    }

    #[test]
    fn int8_teacher_pass_distills_like_f32() {
        let task = SynthTask::new(SynthConfig::mnist_like(2));
        let (t1, _) = trained_teacher(7);
        let (t2, _) = trained_teacher(8);
        let pool = task.generate_unlabeled(160, 12);
        let test = task.generate(200, 78);
        let distill_with = |precision| {
            let mut teachers = vec![t1.clone(), t2.clone()];
            let mut student = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 96));
            let cfg = DistillConfig { epochs: 4, precision, ..Default::default() };
            let out = distill_ensemble(&mut student, &mut teachers, &pool, &cfg, 13);
            assert!(out.last_epoch_loss.is_finite());
            // The precision switch must not leak into the returned teachers.
            for t in &mut teachers {
                assert!(t.predict(&test.images.slice_rows(0, 4)).data().iter().all(|v| v.is_finite()));
            }
            student.evaluate(&test.images, &test.labels, 32)
        };
        let exact = distill_with(ComputePrecision::F32);
        let quant = distill_with(ComputePrecision::Int8);
        assert!(
            (exact - quant).abs() < 0.05,
            "int8 teacher logits should distill a near-identical student: {exact} vs {quant}"
        );
    }

    #[test]
    fn strategies_all_produce_finite_losses() {
        let task = SynthTask::new(SynthConfig::mnist_like(2));
        let (t1, _) = trained_teacher(5);
        let (t2, _) = trained_teacher(6);
        let pool = task.generate_unlabeled(64, 11);
        for strategy in [
            EnsembleStrategy::MaxLogits,
            EnsembleStrategy::AvgLogits,
            EnsembleStrategy::MajorityVote,
        ] {
            let mut teachers = vec![t1.clone(), t2.clone()];
            let mut student = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 97));
            let cfg = DistillConfig { strategy, epochs: 1, ..Default::default() };
            let out = distill_ensemble(&mut student, &mut teachers, &pool, &cfg, 7);
            assert!(out.last_epoch_loss.is_finite(), "{strategy:?} produced non-finite loss");
        }
    }
}
