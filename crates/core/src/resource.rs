//! Resource-aware model assignment: FedKEMF lets every client deploy a
//! model sized to its device. The paper's multi-model experiment runs
//! ResNet-20/32/44 side by side in one FL system (Table 3).

use kemf_nn::models::{Arch, ModelSpec};
use kemf_tensor::rng::{child_seed, seeded_rng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Compute-capability tier of an edge device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceTier {
    /// Constrained devices (phones, sensors) → smallest model.
    Low,
    /// Mid-range devices → medium model.
    Mid,
    /// Capable devices (workstations, edge servers) → largest model.
    High,
}

impl ResourceTier {
    /// Architecture the paper deploys for this tier.
    pub fn arch(self) -> Arch {
        match self {
            ResourceTier::Low => Arch::ResNet20,
            ResourceTier::Mid => Arch::ResNet32,
            ResourceTier::High => Arch::ResNet44,
        }
    }
}

/// Deterministic tier assignment for a client population: roughly equal
/// thirds, shuffled by seed so tiers do not correlate with data shards.
pub fn assign_tiers(n_clients: usize, seed: u64) -> Vec<ResourceTier> {
    let mut rng = seeded_rng(child_seed(seed, 0x7153_5253)); // "TIER"
    (0..n_clients)
        .map(|_| match rng.gen_range(0..3) {
            0 => ResourceTier::Low,
            1 => ResourceTier::Mid,
            _ => ResourceTier::High,
        })
        .collect()
}

/// Per-client model specs for a heterogeneous deployment: the tier picks
/// the architecture; channels/resolution/classes come from the task.
pub fn heterogeneous_specs(
    tiers: &[ResourceTier],
    in_channels: usize,
    input_hw: usize,
    classes: usize,
    seed: u64,
) -> Vec<ModelSpec> {
    tiers
        .iter()
        .enumerate()
        .map(|(k, t)| {
            ModelSpec::scaled(t.arch(), in_channels, input_hw, classes, child_seed(seed, k as u64))
        })
        .collect()
}

/// A uniform deployment (every client the same architecture), the
/// single-model configuration of Figs. 4–6 and Tables 1–2.
pub fn uniform_specs(
    arch: Arch,
    n_clients: usize,
    in_channels: usize,
    input_hw: usize,
    classes: usize,
    seed: u64,
) -> Vec<ModelSpec> {
    (0..n_clients)
        .map(|k| ModelSpec::scaled(arch, in_channels, input_hw, classes, child_seed(seed, k as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_map_to_resnet_family() {
        assert_eq!(ResourceTier::Low.arch(), Arch::ResNet20);
        assert_eq!(ResourceTier::Mid.arch(), Arch::ResNet32);
        assert_eq!(ResourceTier::High.arch(), Arch::ResNet44);
    }

    #[test]
    fn assignment_is_deterministic_and_mixed() {
        let a = assign_tiers(30, 5);
        let b = assign_tiers(30, 5);
        assert_eq!(a, b);
        // All three tiers present in a population of 30.
        for t in [ResourceTier::Low, ResourceTier::Mid, ResourceTier::High] {
            assert!(a.contains(&t), "tier {t:?} missing");
        }
    }

    #[test]
    fn hetero_specs_follow_tiers() {
        let tiers = vec![ResourceTier::Low, ResourceTier::High];
        let specs = heterogeneous_specs(&tiers, 3, 16, 10, 0);
        assert_eq!(specs[0].arch, Arch::ResNet20);
        assert_eq!(specs[1].arch, Arch::ResNet44);
        assert_ne!(specs[0].seed, specs[1].seed, "clients get distinct init seeds");
    }

    #[test]
    fn uniform_specs_share_arch() {
        let specs = uniform_specs(Arch::Vgg11, 4, 3, 16, 10, 1);
        assert!(specs.iter().all(|s| s.arch == Arch::Vgg11));
        assert_eq!(specs.len(), 4);
    }
}
