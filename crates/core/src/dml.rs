//! Deep mutual learning (Zhang et al. 2018) — FedKEMF's knowledge
//! extractor (Algorithm 1 of the paper).
//!
//! The client trains its local model θ and the downloaded knowledge
//! network θ_g *simultaneously* on each batch:
//!
//! * `L_θ   = CE(θ(x), y)   + D_KL(σ(θ_g(x)) ‖ σ(θ(x)))`   (Eq. 3)
//! * `L_θg  = CE(θ_g(x), y) + D_KL(σ(θ(x))  ‖ σ(θ_g(x)))`
//!
//! Each network treats the other's predictive distribution as a fixed
//! target for the batch (the standard DML formulation), so the two KL
//! gradients are the distillation gradients `σ(z) − target`.
//!
//! DML is deliberately outside the int8 compute-format switch
//! ([`kemf_fl::compress::ComputePrecision`]): here each forward's logits
//! serve both as the *other* network's mutual target **and** as the same
//! network's own cross-entropy/backward input, so a quantized forward
//! would either corrupt the gradient path or force a second exact pass.
//! Quantized inference is a server-side concern — see
//! [`crate::distill::DistillConfig::precision`] and
//! [`crate::ensemble::ensemble_forward_with_precision`].

use kemf_data::dataset::Dataset;
use kemf_nn::loss::{cross_entropy_ws, kl_to_target_ws, soften_ws};
use kemf_nn::model::Model;
use kemf_nn::optim::{Sgd, SgdConfig};
use kemf_tensor::rng::seeded_rng;
use serde::{Deserialize, Serialize};

/// Deep-mutual-learning hyper-parameters for one local update.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DmlConfig {
    /// Local epochs `E`.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Optimizer settings shared by both networks.
    pub sgd: SgdConfig,
    /// Weight of the mutual KL term (1.0 in the paper).
    pub kl_weight: f32,
    /// Softening temperature for the mutual targets (1.0 in the paper).
    pub temperature: f32,
    /// Global gradient-norm clip applied to both networks each step
    /// (0 disables). Stabilizes the mutual-KL gradients, whose early
    /// spikes would otherwise make weight-average fusion collapse.
    pub clip_norm: f32,
}

impl DmlConfig {
    /// Paper-faithful defaults around a given optimizer setting.
    pub fn new(epochs: usize, batch: usize, sgd: SgdConfig) -> Self {
        DmlConfig { epochs, batch, sgd, kl_weight: 1.0, temperature: 1.0, clip_norm: 5.0 }
    }
}

/// Losses of one deep-mutual-learning batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct DmlBatchLoss {
    /// Local model's supervised loss.
    pub ce_local: f32,
    /// Knowledge network's supervised loss.
    pub ce_knowledge: f32,
    /// Mutual KL (local ← knowledge direction).
    pub kl_local: f32,
    /// Mutual KL (knowledge ← local direction).
    pub kl_knowledge: f32,
}

/// One synchronized DML step on a batch; updates both models in place.
pub fn dml_step(
    local: &mut Model,
    knowledge: &mut Model,
    images: &kemf_tensor::Tensor,
    labels: &[usize],
    cfg: &DmlConfig,
    opt_local: &mut Sgd,
    opt_knowledge: &mut Sgd,
) -> DmlBatchLoss {
    // Forward both in train mode. Every temporary below is drawn from
    // (and returned to) the owning model's workspace, so steady-state DML
    // steps perform no heap allocation.
    local.zero_grad();
    knowledge.zero_grad();
    let z_local = local.forward(images, true);
    let z_know = knowledge.forward(images, true);
    // Mutual targets are the peer's softened predictions, detached.
    let t_from_know = soften_ws(&z_know, cfg.temperature, local.ws_mut());
    let t_from_local = soften_ws(&z_local, cfg.temperature, knowledge.ws_mut());
    // Local model: CE + KL(knowledge ‖ local).
    let (ce_l, mut g_local) = cross_entropy_ws(&z_local, labels, local.ws_mut());
    let (kl_l, g_kl_l) = kl_to_target_ws(&z_local, &t_from_know, cfg.temperature, local.ws_mut());
    g_local.axpy(cfg.kl_weight, &g_kl_l);
    local.recycle(g_kl_l);
    local.recycle(t_from_know);
    // Knowledge network: CE + KL(local ‖ knowledge).
    let (ce_k, mut g_know) = cross_entropy_ws(&z_know, labels, knowledge.ws_mut());
    let (kl_k, g_kl_k) = kl_to_target_ws(&z_know, &t_from_local, cfg.temperature, knowledge.ws_mut());
    g_know.axpy(cfg.kl_weight, &g_kl_k);
    knowledge.recycle(g_kl_k);
    knowledge.recycle(t_from_local);
    local.recycle(z_local);
    knowledge.recycle(z_know);
    // Backward + step, both networks.
    let gx_l = local.backward(&g_local);
    local.recycle(g_local);
    local.recycle(gx_l);
    let gx_k = knowledge.backward(&g_know);
    knowledge.recycle(g_know);
    knowledge.recycle(gx_k);
    if cfg.clip_norm > 0.0 {
        let _ = kemf_nn::optim::clip_grad_norm(local.net_mut(), cfg.clip_norm);
        let _ = kemf_nn::optim::clip_grad_norm(knowledge.net_mut(), cfg.clip_norm);
    }
    opt_local.step(local.net_mut());
    opt_knowledge.step(knowledge.net_mut());
    DmlBatchLoss { ce_local: ce_l, ce_knowledge: ce_k, kl_local: kl_l, kl_knowledge: kl_k }
}

/// Outcome of a full client-side DML update (Algorithm 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct DmlOutcome {
    /// SGD steps taken (one synchronized step updates both networks).
    pub steps: usize,
    /// Batches consumed; equals `steps` — DML takes exactly one
    /// synchronized step per batch.
    pub batches: usize,
    /// Mean total loss of the local model.
    pub mean_local_loss: f32,
    /// Mean total loss of the knowledge network.
    pub mean_knowledge_loss: f32,
}

/// Algorithm 1: mutually train `local` (stays deployed on the client) and
/// `knowledge` (uploaded to the server afterwards) over the client's data.
pub fn dml_local_update(
    local: &mut Model,
    knowledge: &mut Model,
    data: &Dataset,
    cfg: &DmlConfig,
    seed: u64,
) -> DmlOutcome {
    let mut opt_local = Sgd::new(cfg.sgd);
    let mut opt_know = Sgd::new(cfg.sgd);
    let mut rng = seeded_rng(seed);
    let mut out = DmlOutcome::default();
    let mut local_sum = 0.0f64;
    let mut know_sum = 0.0f64;
    for _epoch in 0..cfg.epochs {
        for (images, labels) in data.shuffled_batches(cfg.batch, &mut rng) {
            let l = dml_step(local, knowledge, &images, &labels, cfg, &mut opt_local, &mut opt_know);
            local_sum += (l.ce_local + cfg.kl_weight * l.kl_local) as f64;
            know_sum += (l.ce_knowledge + cfg.kl_weight * l.kl_knowledge) as f64;
            out.steps += 1;
            out.batches += 1;
        }
    }
    if out.steps > 0 {
        out.mean_local_loss = (local_sum / out.steps as f64) as f32;
        out.mean_knowledge_loss = (know_sum / out.steps as f64) as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_nn::loss::{kl_to_target, soften};
    use kemf_nn::models::{Arch, ModelSpec};

    fn data() -> Dataset {
        SynthTask::new(SynthConfig::mnist_like(5)).generate(80, 0)
    }

    fn cfg() -> DmlConfig {
        DmlConfig::new(
            2,
            16,
            SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0, nesterov: false },
        )
    }

    #[test]
    fn both_models_learn() {
        let d = data();
        let mut local = Model::new(ModelSpec::scaled(Arch::ResNet20, 1, 12, 10, 1));
        let mut know = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 2));
        let first = dml_local_update(&mut local, &mut know, &d, &cfg(), 7);
        let later = dml_local_update(&mut local, &mut know, &d, &cfg(), 8);
        assert!(later.mean_local_loss < first.mean_local_loss);
        assert!(later.mean_knowledge_loss < first.mean_knowledge_loss);
        assert_eq!(first.steps, 10, "80 samples / 16 batch × 2 epochs");
        assert_eq!(first.batches, first.steps, "one synchronized step per batch");
    }

    #[test]
    fn mutual_training_reduces_cross_model_kl() {
        // DML minimizes the KL divergence between the two networks'
        // predictive distributions; with the mutual term on, that
        // divergence must end up far smaller than with it off.
        let d = data();
        let cross_kl = |mutual: bool| {
            let mut local = Model::new(ModelSpec::scaled(Arch::ResNet20, 1, 12, 10, 1));
            let mut know = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 2));
            let mut c = cfg();
            c.epochs = 6;
            if !mutual {
                c.kl_weight = 0.0;
            }
            let _ = dml_local_update(&mut local, &mut know, &d, &c, 7);
            let zl = local.predict(&d.images);
            let zk = know.predict(&d.images);
            kl_to_target(&zk, &soften(&zl, 1.0), 1.0).0
        };
        let with_kl = cross_kl(true);
        let without_kl = cross_kl(false);
        assert!(
            with_kl < without_kl * 0.8,
            "mutual learning should align the models: KL {with_kl} (on) vs {without_kl} (off)"
        );
    }

    #[test]
    fn kl_terms_are_nonnegative() {
        let d = data();
        let mut local = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 3));
        let mut know = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 4));
        let mut ol = Sgd::new(cfg().sgd);
        let mut ok = Sgd::new(cfg().sgd);
        let mut rng = seeded_rng(1);
        for (images, labels) in d.shuffled_batches(16, &mut rng) {
            let l = dml_step(&mut local, &mut know, &images, &labels, &cfg(), &mut ol, &mut ok);
            assert!(l.kl_local >= -1e-5 && l.kl_knowledge >= -1e-5);
            assert!(l.ce_local.is_finite() && l.ce_knowledge.is_finite());
        }
    }

    #[test]
    fn update_is_deterministic() {
        let d = data();
        let run = || {
            let mut local = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 3));
            let mut know = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 4));
            let _ = dml_local_update(&mut local, &mut know, &d, &cfg(), 42);
            know.weights().values
        };
        assert_eq!(run(), run());
    }
}
