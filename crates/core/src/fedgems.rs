//! FedGEMS (Cheng et al. 2021) — *federated learning of larger server
//! models via selective knowledge fusion* — the server-larger-than-client
//! counterpart of FedMD. The server hosts a model **bigger than any
//! client's** and never ships it; all communication is logits on a
//! shared public pool:
//!
//! 1. the server broadcasts its own logits on the public pool;
//! 2. every client digests them (KL distillation into its own,
//!    arbitrary-architecture model), revisits its private shard, and
//!    uploads its logits on the pool;
//! 3. the server **selectively fuses** the client logits per sample:
//!    only confident candidates (max softmax ≥ a threshold) vote; a
//!    weighted majority picks the consensus class; the fused target is
//!    the weighted mean of the candidates that agree with it; samples
//!    with no confident, agreeing candidate fall back to the server's
//!    own prediction, so unreliable clients cannot poison the server;
//! 4. the server distills itself toward the fused targets.
//!
//! The per-round payload is `2 × |pool| × classes × 4` bytes per client
//! regardless of the server size ([`kemf_fl::lifecycle::ModelView::Logits`]
//! both ways) — the redesigned per-client plan API is what lets the
//! engine bill that honestly while `evaluate()` reports the big server
//! model's accuracy.

use crate::fedkemf::{fresh_local_blob, model_from_blob};
use kemf_fl::client_store::{ClientBlob, ClientStateStore, SpillConfig, StoreError};
use kemf_fl::config::ConfigError;
use kemf_fl::context::FlContext;
use kemf_fl::engine::{EngineError, FedAlgorithm, RoundOutcome};
use kemf_fl::lifecycle::{ClientPlan, ModelView, WirePayload};
use kemf_fl::local::{local_train, LocalCfg};
use kemf_fl::scheduler::{PreparedUpdate, UpdatePayload};
use kemf_fl::state::{check_model_layout, AlgorithmState, RestoreError, TensorBlob};
use kemf_fl::trace::{Phase, RoundScope};
use kemf_nn::loss::{kl_to_target, soften};
use kemf_nn::model::Model;
use kemf_nn::models::ModelSpec;
use kemf_nn::optim::{clip_grad_norm, Sgd, SgdConfig};
use kemf_tensor::rng::{child_seed, seeded_rng};
use kemf_tensor::Tensor;
use rand::seq::SliceRandom;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// FedGEMS hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FedGemsConfig {
    /// Epochs each client distills the server's broadcast logits.
    pub digest_epochs: usize,
    /// Epochs the server distills the fused targets.
    pub server_epochs: usize,
    /// Distillation temperature (both directions).
    pub temperature: f32,
    /// Distillation learning rate (both directions).
    pub distill_lr: f32,
    /// Minimum max-softmax probability a client prediction needs to
    /// vote in the selective fusion. Samples where no client clears it
    /// keep the server's own prediction.
    pub confidence_threshold: f32,
}

impl Default for FedGemsConfig {
    fn default() -> Self {
        FedGemsConfig {
            digest_epochs: 1,
            server_epochs: 1,
            temperature: 2.0,
            distill_lr: 0.02,
            confidence_threshold: 0.4,
        }
    }
}

/// The FedGEMS algorithm: a large server model fed by selective
/// client-logit fusion.
pub struct FedGems {
    /// Per-client model specs (may differ per client; all smaller than
    /// the server).
    client_specs: Vec<ModelSpec>,
    cfg: FedGemsConfig,
    /// The big server model's architecture.
    server_spec: ModelSpec,
    /// Server model weights (never communicated).
    server: kemf_nn::serialize::ModelState,
    eval_model: Model,
    /// Public reference set whose logits are communicated.
    public: Tensor,
    /// Has the server fused at least one cohort? Clients skip digestion
    /// of an untrained (freshly initialized) server.
    server_trained: bool,
    store: ClientStateStore,
    spill: Option<SpillConfig>,
    classes: usize,
}

/// Max softmax probability of one logit row (confidence of the
/// prediction) and its argmax class.
fn row_confidence(row: &[f32]) -> (usize, f32) {
    let mut arg = 0usize;
    let mut max = f32::NEG_INFINITY;
    for (c, &v) in row.iter().enumerate() {
        if v > max {
            max = v;
            arg = c;
        }
    }
    let denom: f32 = row.iter().map(|&v| (v - max).exp()).sum();
    (arg, 1.0 / denom)
}

/// Distill `model` toward softened `targets` on `images` for `epochs`,
/// mirroring FedMD's digestion loop (seeded shuffle, 32-sample chunks,
/// gradient clipping at 5.0). `sgd.lr` is the distillation rate, not
/// the supervised one — callers override it.
fn distill_toward(
    model: &mut Model,
    images: &Tensor,
    targets: &Tensor,
    epochs: usize,
    temperature: f32,
    sgd: SgdConfig,
    seed: u64,
) -> usize {
    let n = images.dims()[0];
    let mut opt = Sgd::new(sgd);
    let mut rng = seeded_rng(seed);
    let mut steps = 0;
    for _ in 0..epochs {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for chunk in order.chunks(32) {
            let x = images.gather_rows(chunk);
            let t = targets.gather_rows(chunk);
            model.zero_grad();
            let logits = model.forward(&x, true);
            let (_, grad) = kl_to_target(&logits, &t, temperature);
            let _ = model.backward(&grad);
            let _ = clip_grad_norm(model.net_mut(), 5.0);
            opt.step(model.net_mut());
            steps += 1;
        }
    }
    steps
}

impl FedGems {
    /// New FedGEMS population: per-client specs, the (larger) server
    /// spec, and the public pool whose logits cross the wire.
    pub fn new(
        client_specs: Vec<ModelSpec>,
        server_spec: ModelSpec,
        public: Tensor,
        classes: usize,
        cfg: FedGemsConfig,
    ) -> Self {
        assert!(!client_specs.is_empty(), "need at least one client spec");
        let eval_model = Model::new(server_spec);
        let server = eval_model.state();
        FedGems {
            client_specs,
            cfg,
            server_spec,
            server,
            eval_model,
            public,
            server_trained: false,
            store: ClientStateStore::in_memory(0),
            spill: None,
            classes,
        }
    }

    /// Spill per-client local models to `spill.dir` instead of holding
    /// `n_clients` of them resident.
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Per-direction payload: the logit matrix on the public set.
    pub fn payload_bytes(&self) -> u64 {
        (self.public.dims()[0] * self.classes * 4) as u64
    }

    /// Server parameter count (for the ≥2×-any-client headline).
    pub fn server_params(&self) -> usize {
        self.server.params.numel()
    }

    /// Largest client parameter count.
    pub fn largest_client_params(&self) -> usize {
        self.client_specs
            .iter()
            .map(|s| Model::new(*s).state().params.numel())
            .max()
            .unwrap_or(0)
    }

    /// The server's current logits on the public pool.
    fn server_logits(&mut self) -> Tensor {
        self.eval_model.set_state(&self.server);
        self.eval_model.predict_batch_stats(&self.public)
    }

    /// Selective knowledge fusion (the algorithm's core): per public
    /// sample, confident client predictions vote at their fusion
    /// coefficient; the fused target is the coefficient-weighted mean
    /// of the candidates agreeing with the winning class, falling back
    /// to the server's own logits where nobody qualifies. Returns the
    /// fused `[pool, classes]` targets and how many samples kept the
    /// server's prediction.
    fn selective_fuse(
        &self,
        server_logits: &Tensor,
        members: &[(Tensor, f32)],
    ) -> (Tensor, usize) {
        let pool = self.public.dims()[0];
        let k = self.classes;
        let mut fused = vec![0.0f32; pool * k];
        let mut fallbacks = 0usize;
        let server_rows = server_logits.data();
        for i in 0..pool {
            let mut votes = vec![0.0f32; k];
            let mut confident: Vec<(usize, &[f32], f32)> = Vec::new();
            for (logits, coeff) in members {
                let row = &logits.data()[i * k..(i + 1) * k];
                let (arg, conf) = row_confidence(row);
                if conf >= self.cfg.confidence_threshold {
                    votes[arg] += coeff;
                    confident.push((arg, row, *coeff));
                }
            }
            // Deterministic argmax: strict > keeps the lowest class on a
            // tie, independent of member order.
            let consensus = votes
                .iter()
                .enumerate()
                .fold((0usize, 0.0f32), |best, (c, &v)| if v > best.1 { (c, v) } else { best });
            let out = &mut fused[i * k..(i + 1) * k];
            if consensus.1 > 0.0 {
                let mut total = 0.0f32;
                for (arg, row, coeff) in &confident {
                    if *arg == consensus.0 {
                        for (o, &v) in out.iter_mut().zip(row.iter()) {
                            *o += coeff * v;
                        }
                        total += coeff;
                    }
                }
                for o in out.iter_mut() {
                    *o /= total;
                }
            } else {
                out.copy_from_slice(&server_rows[i * k..(i + 1) * k]);
                fallbacks += 1;
            }
        }
        (Tensor::from_vec(fused, &[pool, k]), fallbacks)
    }

    /// Fuse the collected client logits into the server model: selective
    /// fusion, then server self-distillation toward the fused targets.
    fn fuse_into_server(&mut self, round: usize, ctx: &FlContext, members: &[(Tensor, f32)]) {
        let server_logits = self.server_logits();
        let (fused, _fallbacks) = self.selective_fuse(&server_logits, members);
        let targets = soften(&fused, self.cfg.temperature);
        let mut server = Model::new(self.server_spec);
        server.set_state(&self.server);
        let seed = child_seed(ctx.cfg.seed, 0x4745_4D53 ^ (((round as u64) << 1) | 1));
        distill_toward(
            &mut server,
            &self.public,
            &targets,
            self.cfg.server_epochs,
            self.cfg.temperature,
            SgdConfig { lr: self.cfg.distill_lr, ..ctx.cfg.sgd_at(round) },
            seed,
        );
        self.server = server.state();
        self.server_trained = true;
    }
}

impl FedAlgorithm for FedGems {
    fn name(&self) -> String {
        "FedGEMS".into()
    }

    fn init(&mut self, ctx: &FlContext) -> Result<(), ConfigError> {
        if self.client_specs.len() != ctx.cfg.n_clients {
            return Err(ConfigError::AlgorithmSetup {
                algorithm: self.name(),
                reason: format!(
                    "need one client spec per client: {} specs for {} clients",
                    self.client_specs.len(),
                    ctx.cfg.n_clients
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.cfg.confidence_threshold) {
            return Err(ConfigError::AlgorithmSetup {
                algorithm: self.name(),
                reason: format!(
                    "confidence_threshold {} is not a probability",
                    self.cfg.confidence_threshold
                ),
            });
        }
        self.store = match &self.spill {
            Some(spill) => ClientStateStore::sharded(ctx.cfg.n_clients, spill.clone())
                .map_err(|e| ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("opening spill store: {e}"),
                })?,
            None => {
                let mut store = ClientStateStore::in_memory(ctx.cfg.n_clients);
                let specs = &self.client_specs;
                store.seed_all(|k| fresh_local_blob(specs[k]));
                store
            }
        };
        Ok(())
    }

    fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        // Logits on the public pool each way, however large the server is.
        ClientPlan::uniform(sampled, ModelView::Logits, WirePayload::symmetric(self.payload_bytes()))
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        let updates = self.train_cohort(round, sampled, ctx, scope)?;
        if updates.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        self.fuse(round, updates.into_iter().map(|u| (u, 1.0)).collect(), ctx, scope)
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        self.store.begin_round(wave);
        if sampled.is_empty() {
            return Ok(Vec::new());
        }
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(wave),
        };
        // Broadcast: the server's current logits, softened for digestion.
        // A never-fused server is noise — clients skip digesting it.
        let broadcast = if self.server_trained {
            Some(soften(&self.server_logits(), self.cfg.temperature))
        } else {
            None
        };
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut out = Vec::with_capacity(sampled.len());
        scope.phase(Phase::LocalUpdate, |c| -> Result<(), EngineError> {
            for batch in sampled.chunks(chunk) {
                let mut locals: Vec<(usize, Model)> = Vec::with_capacity(batch.len());
                for &k in batch {
                    let spec = self.client_specs[k];
                    let blob = self.store.fetch(k, |_| fresh_local_blob(spec))?;
                    locals.push((k, model_from_blob(&blob, k, spec)?));
                }
                let cfg = self.cfg;
                let public = &self.public;
                let results: Vec<(usize, Model, Tensor, f32, usize)> = locals
                    .into_par_iter()
                    .map(|(k, mut model)| {
                        let seed = child_seed(
                            ctx.cfg.seed,
                            0x4745_4D53 ^ ((wave as u64) << 16 | k as u64),
                        );
                        let digest_steps = if let Some(targets) = &broadcast {
                            distill_toward(
                                &mut model,
                                public,
                                targets,
                                cfg.digest_epochs,
                                cfg.temperature,
                                SgdConfig { lr: cfg.distill_lr, ..local.sgd },
                                seed,
                            )
                        } else {
                            0
                        };
                        let shard = ctx.client_shard(k);
                        let out = local_train(&mut model, &shard, &local, seed ^ 7, None);
                        let logits = model.predict_batch_stats(public);
                        (k, model, logits, out.mean_loss, digest_steps + out.steps)
                    })
                    .collect();
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.4 as u64).sum::<u64>();
                c.batches = c.steps;
                for (k, model, logits, loss, steps) in results {
                    out.push(PreparedUpdate {
                        client: k,
                        n_samples: ctx.client_shard_len(k),
                        steps,
                        loss,
                        payload: UpdatePayload::Logits(TensorBlob {
                            dims: logits.dims().to_vec(),
                            values: logits.data().to_vec(),
                        }),
                        commit: Some(ClientBlob::new().with_model("model", model.state())),
                    });
                }
            }
            Ok(())
        })?;
        Ok(out)
    }

    fn fuse(
        &mut self,
        round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        self.store.begin_round(round);
        if updates.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let dims = [self.public.dims()[0], self.classes];
        let mut members: Vec<(Tensor, f32)> = Vec::with_capacity(updates.len());
        let mut loss_sum = 0.0f32;
        for (u, w) in updates {
            let UpdatePayload::Logits(blob) = u.payload else {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("client {}: expected a logit payload", u.client),
                }));
            };
            if blob.dims != dims {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!(
                        "client {}: logit payload is {:?}, public set needs {dims:?}",
                        u.client, blob.dims
                    ),
                }));
            }
            if let Some(commit) = u.commit {
                self.store.commit(u.client, commit)?;
            }
            members.push((Tensor::from_vec(blob.values, &dims), w * u.n_samples as f32));
            loss_sum += u.loss;
        }
        let reported = members.len();
        scope.phase(Phase::Fusion, |c| {
            c.clients = reported;
            self.fuse_into_server(round, ctx, &members);
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    /// The headline metric: the *large server model's* accuracy on the
    /// shared test set (clients keep their small local models).
    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.eval_model.set_state(&self.server);
        self.eval_model
            .evaluate(&ctx.test.images, &ctx.test.labels, ctx.cfg.eval_batch)
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        let mut s = AlgorithmState::new(self.name(), 1)
            .with_model("server", self.server.clone())
            .with_scalar("server_trained", self.server_trained as u64 as f64);
        if self.store.is_sharded() {
            s = s.with_scalar("sharded_clients", self.store.n_clients() as f64);
        } else {
            for k in 0..self.store.n_clients() {
                let blob = self.store.read(k, |_| ClientBlob::new())?;
                let m = blob.model("model").ok_or(StoreError::Corrupt {
                    client: k,
                    detail: "missing local-model entry `model`".into(),
                })?;
                s.push_model(format!("local.{k}"), m.clone());
            }
        }
        Ok(s)
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let server = state.model("server")?;
        check_model_layout("server", server, &self.server)?;
        let server_trained = state.scalar("server_trained")? != 0.0;
        if self.store.is_sharded() {
            let n = self.store.n_clients();
            let recorded = state.scalar("sharded_clients")?;
            if recorded != n as f64 {
                return Err(RestoreError::ShapeMismatch {
                    name: "sharded_clients".into(),
                    detail: format!("checkpoint covers {recorded} clients, store has {n}"),
                });
            }
        } else {
            let n = self.store.n_clients();
            for k in 0..n {
                let name = format!("local.{k}");
                let layout = Model::new(self.client_specs[k]).state();
                check_model_layout(&name, state.model(&name)?, &layout)?;
            }
            for k in 0..n {
                let name = format!("local.{k}");
                let incoming = state.model(&name)?.clone();
                self.store
                    .commit(k, ClientBlob::new().with_model("model", incoming))
                    .map_err(|e| RestoreError::Store { detail: e.to_string() })?;
            }
        }
        self.server = server.clone();
        self.server_trained = server_trained;
        Ok(())
    }

    fn global_model(&self) -> Option<(ModelSpec, kemf_nn::serialize::ModelState)> {
        // The server model exists but never crosses the wire (every view
        // is Logits); exposing it here serves checkpoint inspection only.
        Some((self.server_spec, self.server.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{assign_tiers, heterogeneous_specs, uniform_specs};
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_fl::config::FlConfig;
    use kemf_fl::engine::{Engine, RunOptions};
    use kemf_fl::metrics::History;
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn world(seed: u64, n: usize) -> (FlContext, SynthTask) {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(60 * n, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: n,
            sample_ratio: 1.0,
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            alpha: 0.5,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        (FlContext::new(cfg, &train, test), task)
    }

    /// A server clearly larger than the Cnn2 clients.
    fn server_spec() -> ModelSpec {
        ModelSpec { width: 8, ..ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 900) }
    }

    #[test]
    fn fedgems_learns_above_chance_with_a_larger_server() {
        let (ctx, task) = world(91, 4);
        let specs = uniform_specs(Arch::Cnn2, 4, 1, 12, 10, 2);
        let public = task.generate_unlabeled(100, 3);
        let mut algo = FedGems::new(specs, server_spec(), public, 10, FedGemsConfig::default());
        assert!(
            algo.server_params() >= 2 * algo.largest_client_params(),
            "server {} vs largest client {}",
            algo.server_params(),
            algo.largest_client_params()
        );
        let h = run(&mut algo, &ctx);
        assert!(h.best_accuracy() > 0.2, "got {}", h.best_accuracy());
        assert_eq!(h.payload_kind, "logits");
    }

    #[test]
    fn payload_is_logits_regardless_of_server_size() {
        let (ctx, task) = world(92, 3);
        let specs = uniform_specs(Arch::Cnn2, 3, 1, 12, 10, 2);
        let public = task.generate_unlabeled(50, 3);
        let mut algo = FedGems::new(specs, server_spec(), public, 10, FedGemsConfig::default());
        assert_eq!(algo.payload_bytes(), 50 * 10 * 4);
        let server_bytes = 4 * algo.server_params() as u64;
        assert!(algo.payload_bytes() < server_bytes, "logits ≪ server model");
        let h = run(&mut algo, &ctx);
        assert_eq!(h.total_bytes(), 6 * 3 * 2 * algo.payload_bytes());
    }

    #[test]
    fn fedgems_supports_heterogeneous_clients() {
        let (ctx, task) = world(93, 6);
        let tiers = assign_tiers(6, 1);
        let specs = heterogeneous_specs(&tiers, 1, 12, 10, 2);
        let public = task.generate_unlabeled(80, 3);
        let mut algo = FedGems::new(specs, server_spec(), public, 10, FedGemsConfig::default());
        let h = run(&mut algo, &ctx);
        assert!(h.accuracies().iter().all(|a| a.is_finite()));
    }

    #[test]
    fn selective_fusion_falls_back_to_the_server_when_nobody_is_confident() {
        let (ctx, task) = world(94, 2);
        let specs = uniform_specs(Arch::Cnn2, 2, 1, 12, 10, 2);
        let public = task.generate_unlabeled(4, 3);
        let mut algo = FedGems::new(
            specs,
            server_spec(),
            public,
            10,
            FedGemsConfig { confidence_threshold: 1.0, ..Default::default() },
        );
        algo.init(&ctx).unwrap();
        // Uniform logits have confidence 1/classes < 1.0: every sample
        // must keep the server's own prediction.
        let members =
            vec![(Tensor::from_vec(vec![0.0; 4 * 10], &[4, 10]), 60.0)];
        let server_logits = algo.server_logits();
        let (fused, fallbacks) = algo.selective_fuse(&server_logits, &members);
        assert_eq!(fallbacks, 4);
        assert_eq!(fused.data(), server_logits.data());
    }

    #[test]
    fn selective_fusion_votes_by_weight_and_averages_the_agreers() {
        let (ctx, task) = world(95, 2);
        let specs = uniform_specs(Arch::Cnn2, 2, 1, 12, 10, 2);
        let public = task.generate_unlabeled(1, 3);
        let mut algo = FedGems::new(
            specs,
            server_spec(),
            public,
            10,
            FedGemsConfig { confidence_threshold: 0.5, ..Default::default() },
        );
        algo.init(&ctx).unwrap();
        // Two confident voters for class 0 (combined weight 3) beat one
        // confident voter for class 1 (weight 2); the fused row is the
        // weighted mean of the two class-0 rows only.
        let mut a = vec![0.0f32; 10];
        a[0] = 10.0;
        let mut b = vec![0.0f32; 10];
        b[0] = 20.0;
        let mut c = vec![0.0f32; 10];
        c[1] = 30.0;
        let members = vec![
            (Tensor::from_vec(a, &[1, 10]), 1.0),
            (Tensor::from_vec(b, &[1, 10]), 2.0),
            (Tensor::from_vec(c, &[1, 10]), 2.0),
        ];
        let server_logits = algo.server_logits();
        let (fused, fallbacks) = algo.selective_fuse(&server_logits, &members);
        assert_eq!(fallbacks, 0);
        let row = fused.data();
        // (1·10 + 2·20) / 3 = 50/3 in class 0; the class-1 voter is excluded.
        assert!((row[0] - 50.0 / 3.0).abs() < 1e-5, "row {row:?}");
        assert_eq!(row[1], 0.0, "disagreeing voter leaked in: {row:?}");
    }

    #[test]
    fn empty_cohort_leaves_the_server_untouched() {
        let (ctx, task) = world(98, 2);
        let specs = uniform_specs(Arch::Cnn2, 2, 1, 12, 10, 2);
        let public = task.generate_unlabeled(20, 3);
        let mut algo = FedGems::new(specs, server_spec(), public, 10, FedGemsConfig::default());
        algo.init(&ctx).unwrap();
        let before = algo.server.params.values.clone();
        let mut sink = kemf_fl::trace::NoopSink;
        let mut scope = RoundScope::new(&mut sink, 0);
        let out = algo.round(0, &[], &ctx, &mut scope).unwrap();
        assert!(out.train_loss.is_nan());
        assert_eq!(algo.server.params.values, before);
        assert!(!algo.server_trained, "an empty cohort must not mark the server trained");
    }

    #[test]
    fn state_round_trips_including_the_server_model() {
        let (ctx, task) = world(96, 3);
        let specs = uniform_specs(Arch::Cnn2, 3, 1, 12, 10, 2);
        let public = task.generate_unlabeled(40, 3);
        let mut algo =
            FedGems::new(specs.clone(), server_spec(), public.clone(), 10, FedGemsConfig::default());
        let _ = run(&mut algo, &ctx);
        let snap = algo.state().unwrap();
        let mut fresh = FedGems::new(specs, server_spec(), public, 10, FedGemsConfig::default());
        fresh.init(&ctx).unwrap();
        fresh.restore(&snap).unwrap();
        assert!(fresh.server_trained);
        assert_eq!(fresh.server.params.values, algo.server.params.values);
    }

    #[test]
    fn fedgems_is_deterministic() {
        let run_once = || {
            let (ctx, task) = world(97, 3);
            let specs = uniform_specs(Arch::Cnn2, 3, 1, 12, 10, 2);
            let public = task.generate_unlabeled(40, 3);
            let mut algo =
                FedGems::new(specs, server_spec(), public, 10, FedGemsConfig::default());
            run(&mut algo, &ctx).accuracies()
        };
        assert_eq!(run_once(), run_once());
    }
}
