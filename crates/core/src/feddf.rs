//! FedDF (Lin et al. 2020) — *ensemble distillation for robust model
//! fusion* — the server-side fusion method FedKEMF builds on, included as
//! an additional baseline. Clients train **full models** locally (plain
//! SGD, homogeneous architecture); the server initializes a student at
//! the weighted average of the client models and refines it by distilling
//! their ensemble on public data. Unlike FedKEMF there is no knowledge
//! network: the full model crosses the wire every round.

use crate::distill::{distill_ensemble, DistillConfig};
use crate::fusion::weight_average_fusion_weighted;
use kemf_fl::config::ConfigError;
use kemf_fl::context::FlContext;
use kemf_fl::engine::{EngineError, FedAlgorithm, RoundOutcome};
use kemf_fl::lifecycle::{ClientPlan, ModelView, WirePayload};
use kemf_fl::local::LocalCfg;
use kemf_fl::scheduler::{PreparedUpdate, UpdatePayload};
use kemf_fl::state::{check_model_layout, AlgorithmState, RestoreError};
use kemf_fl::trace::{Phase, RoundScope};
use kemf_fl::weight_common::{fan_out_clients, mean_loss, train_cohort_states, GlobalModel};
use kemf_nn::model::Model;
use kemf_nn::models::ModelSpec;
use kemf_nn::serialize::ModelState;
use kemf_tensor::rng::child_seed;
use kemf_tensor::Tensor;

/// The FedDF baseline.
pub struct FedDf {
    global: GlobalModel,
    /// Server-side unlabeled pool.
    pool: Tensor,
    /// Server distillation settings.
    pub distill: DistillConfig,
}

impl FedDf {
    /// New FedDF server.
    pub fn new(spec: ModelSpec, pool: Tensor) -> Self {
        FedDf { global: GlobalModel::new(spec), pool, distill: DistillConfig::default() }
    }
}

impl FedAlgorithm for FedDf {
    fn name(&self) -> String {
        "FedDF".into()
    }

    fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        ClientPlan::uniform(
            sampled,
            ModelView::Full,
            WirePayload::symmetric(self.global.payload_bytes()),
        )
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        if sampled.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(round),
        };
        // Single fan-out, no cohort streaming: FedDF's fusion distills the
        // *full-model* ensemble, so every teacher state must be resident
        // anyway — chunking the local update would not bound memory.
        let results = scope.phase(Phase::LocalUpdate, |c| {
            let results = fan_out_clients(
                &self.global.state,
                self.global.spec,
                round,
                sampled,
                ctx,
                &local,
                &|_k| None,
            );
            c.clients = results.len();
            c.steps = results.iter().map(|r| r.outcome.steps as u64).sum();
            c.batches = c.steps;
            results
        });
        // Student initialized at the weighted average (FedDF's recipe for
        // homogeneous clients), then refined by ensemble distillation.
        scope.phase(Phase::Fusion, |c| {
            c.clients = results.len();
            let states: Vec<ModelState> = results.iter().map(|r| r.state.clone()).collect();
            let coeffs: Vec<f32> = results.iter().map(|r| r.n_samples as f32).collect();
            let mut student = Model::new(self.global.spec);
            student.set_state(&ModelState::weighted_average(&states, &coeffs));
            let mut teachers: Vec<Model> = states
                .iter()
                .map(|s| {
                    let mut t = Model::new(self.global.spec);
                    t.set_state(s);
                    t
                })
                .collect();
            let seed = child_seed(ctx.cfg.seed, 0xDF ^ round as u64);
            let out = distill_ensemble(&mut student, &mut teachers, &self.pool, &self.distill, seed);
            c.steps = out.steps as u64;
            c.batches = out.batches as u64;
            self.global.state = student.state();
        });
        Ok(RoundOutcome { train_loss: mean_loss(&results) })
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(wave),
        };
        Ok(train_cohort_states(&self.global, wave, sampled, ctx, &local, &|_k| None, scope))
    }

    fn fuse(
        &mut self,
        round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        if updates.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let mut states: Vec<ModelState> = Vec::with_capacity(updates.len());
        let mut sample_counts: Vec<usize> = Vec::with_capacity(updates.len());
        let mut weights: Vec<f32> = Vec::with_capacity(updates.len());
        let mut loss_sum = 0.0f32;
        for (u, w) in updates {
            let UpdatePayload::State(state) = u.payload else {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("client {}: expected a model-state payload", u.client),
                }));
            };
            states.push(state);
            sample_counts.push(u.n_samples);
            weights.push(w);
            loss_sum += u.loss;
        }
        let reported = states.len();
        scope.phase(Phase::Fusion, |c| {
            c.clients = reported;
            // Staleness discounting shapes the warm-start average; the
            // distillation pass treats every teacher alike (see DESIGN.md).
            let mut student = Model::new(self.global.spec);
            student.set_state(&weight_average_fusion_weighted(
                &states,
                &sample_counts,
                &weights,
            ));
            let mut teachers: Vec<Model> = states
                .iter()
                .map(|s| {
                    let mut t = Model::new(self.global.spec);
                    t.set_state(s);
                    t
                })
                .collect();
            let seed = child_seed(ctx.cfg.seed, 0xDF ^ round as u64);
            let out = distill_ensemble(&mut student, &mut teachers, &self.pool, &self.distill, seed);
            c.steps = out.steps as u64;
            c.batches = out.batches as u64;
            self.global.state = student.state();
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.global.evaluate(ctx)
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        Ok(AlgorithmState::new(self.name(), 1).with_model("global", self.global.state.clone()))
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let incoming = state.model("global")?;
        check_model_layout("global", incoming, &self.global.state)?;
        self.global.state = incoming.clone();
        Ok(())
    }

    fn global_model(&self) -> Option<(ModelSpec, ModelState)> {
        Some((self.global.spec, self.global.state.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_fl::config::FlConfig;
    use kemf_fl::engine::{Engine, RunOptions};
    use kemf_fl::metrics::History;
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn world(seed: u64) -> (FlContext, SynthTask) {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(240, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: 4,
            sample_ratio: 1.0,
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            alpha: 0.5,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        (FlContext::new(cfg, &train, test), task)
    }

    #[test]
    fn feddf_learns_above_chance() {
        let (ctx, task) = world(71);
        let pool = task.generate_unlabeled(100, 2);
        let mut algo = FedDf::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0), pool);
        let h = run(&mut algo, &ctx);
        assert!(h.best_accuracy() > 0.3, "got {}", h.best_accuracy());
    }

    #[test]
    fn feddf_pays_full_model_bytes() {
        let (ctx, task) = world(72);
        let pool = task.generate_unlabeled(60, 2);
        let spec = ModelSpec::scaled(Arch::ResNet20, 1, 12, 10, 0);
        let mut algo = FedDf::new(spec, pool);
        let per_dir = algo.global.payload_bytes();
        let h = run(&mut algo, &ctx);
        assert_eq!(h.total_bytes(), 6 * 4 * 2 * per_dir);
        assert_eq!(per_dir, Model::new(spec).state_bytes() as u64);
    }

    #[test]
    fn feddf_is_deterministic() {
        let run_once = || {
            let (ctx, task) = world(73);
            let pool = task.generate_unlabeled(60, 2);
            let mut algo = FedDf::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0), pool);
            run(&mut algo, &ctx).accuracies()
        };
        assert_eq!(run_once(), run_once());
    }
}
