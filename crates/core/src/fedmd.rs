//! FedMD (Li & Wang 2019) — *heterogeneous federated learning via model
//! distillation* — the classic logit-communication baseline from the
//! paper's related work. Clients never share weights at all; each round:
//!
//! 1. the server broadcasts **consensus logits** on a public dataset;
//! 2. every client *digests* the consensus (distills it into its own,
//!    arbitrary-architecture model), then *revisits* its private data
//!    (a few epochs of supervised training);
//! 3. clients upload their own logits on the public set;
//! 4. the server averages them into the next consensus.
//!
//! The per-round payload is `2 × |public set| × classes × 4` bytes per
//! client — independent of every model size, like FedKEMF's knowledge
//! network but with no transferable global *model*: the server owns only
//! logits, so `global_model()` is `None` and evaluation reports the mean
//! client-model accuracy.

use crate::fedkemf::{fresh_local_blob, model_from_blob};
use kemf_data::dataset::Dataset;
use kemf_fl::client_store::{ClientBlob, ClientStateStore, SpillConfig, StoreError};
use kemf_fl::config::ConfigError;
use kemf_fl::context::FlContext;
use kemf_fl::engine::{EngineError, FedAlgorithm, RoundOutcome};
use kemf_fl::lifecycle::{ClientPlan, ModelView, WirePayload};
use kemf_fl::local::{local_train, LocalCfg};
use kemf_fl::scheduler::{PreparedUpdate, UpdatePayload};
use kemf_fl::state::{
    check_model_layout, check_tensor_dims, AlgorithmState, RestoreError, TensorBlob,
};
use kemf_fl::trace::{Phase, RoundScope};
use kemf_nn::loss::kl_to_target;
use kemf_nn::model::Model;
use kemf_nn::models::ModelSpec;
use kemf_nn::optim::{clip_grad_norm, Sgd};
use kemf_nn::loss::soften;
use kemf_tensor::ops::elementwise_mean;
use kemf_tensor::rng::{child_seed, seeded_rng};
use kemf_tensor::Tensor;
use rand::seq::SliceRandom;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// FedMD hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FedMdConfig {
    /// Epochs of consensus digestion per round.
    pub digest_epochs: usize,
    /// Digestion temperature.
    pub temperature: f32,
    /// Digestion learning rate.
    pub digest_lr: f32,
}

impl Default for FedMdConfig {
    fn default() -> Self {
        FedMdConfig { digest_epochs: 1, temperature: 2.0, digest_lr: 0.02 }
    }
}

/// The FedMD baseline (heterogeneous-capable).
pub struct FedMd {
    /// Per-client model specs (may differ per client).
    client_specs: Vec<ModelSpec>,
    cfg: FedMdConfig,
    /// Public reference set whose logits are communicated.
    public: Tensor,
    /// Current consensus logits `[pool, classes]` (None before round 0).
    consensus: Option<Tensor>,
    /// Per-client local models, held in the client-state store (resident
    /// for memory mode, spilled to disk for population-scale cohorts).
    store: ClientStateStore,
    spill: Option<SpillConfig>,
    classes: usize,
}

impl FedMd {
    /// New FedMD population over a public reference set.
    pub fn new(client_specs: Vec<ModelSpec>, public: Tensor, classes: usize, cfg: FedMdConfig) -> Self {
        assert!(!client_specs.is_empty(), "need at least one client spec");
        FedMd {
            client_specs,
            cfg,
            public,
            consensus: None,
            store: ClientStateStore::in_memory(0),
            spill: None,
            classes,
        }
    }

    /// Spill per-client local models to `spill.dir` instead of holding
    /// `n_clients` of them resident.
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Per-direction payload: the logit matrix on the public set.
    pub fn payload_bytes(&self) -> u64 {
        (self.public.dims()[0] * self.classes * 4) as u64
    }

    /// Mean per-client accuracy of the local models on `tests`. A count
    /// mismatch or unreadable stored model is a typed error, not a panic.
    pub fn evaluate_local_models(
        &self,
        tests: &[Dataset],
        eval_batch: usize,
    ) -> Result<f32, EngineError> {
        if tests.len() != self.store.n_clients() {
            return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                algorithm: self.name(),
                reason: format!(
                    "need one test set per client: {} sets for {} clients",
                    tests.len(),
                    self.store.n_clients()
                ),
            }));
        }
        let mut total = 0.0;
        for (k, t) in tests.iter().enumerate() {
            let spec = self.client_specs[k];
            let blob = self.store.read(k, |_| fresh_local_blob(spec))?;
            let mut model = model_from_blob(&blob, k, spec)?;
            total += model.evaluate(&t.images, &t.labels, eval_batch);
        }
        Ok(total / tests.len() as f32)
    }
}

/// Distill `targets` (softened consensus probabilities) into `model` on
/// the public images. Returns the number of digestion steps taken.
fn digest(
    model: &mut Model,
    public: &Tensor,
    targets: &Tensor,
    cfg: &FedMdConfig,
    sgd: kemf_nn::optim::SgdConfig,
    seed: u64,
) -> usize {
    let n = public.dims()[0];
    let mut opt = Sgd::new(kemf_nn::optim::SgdConfig { lr: cfg.digest_lr, ..sgd });
    let mut rng = seeded_rng(seed);
    let mut steps = 0;
    for _ in 0..cfg.digest_epochs {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for chunk in order.chunks(32) {
            let images = public.gather_rows(chunk);
            let target = targets.gather_rows(chunk);
            model.zero_grad();
            let logits = model.forward(&images, true);
            let (_, grad) = kl_to_target(&logits, &target, cfg.temperature);
            let _ = model.backward(&grad);
            let _ = clip_grad_norm(model.net_mut(), 5.0);
            opt.step(model.net_mut());
            steps += 1;
        }
    }
    steps
}

impl FedAlgorithm for FedMd {
    fn name(&self) -> String {
        "FedMD".into()
    }

    fn init(&mut self, ctx: &FlContext) -> Result<(), ConfigError> {
        if self.client_specs.len() != ctx.cfg.n_clients {
            return Err(ConfigError::AlgorithmSetup {
                algorithm: self.name(),
                reason: format!(
                    "need one client spec per client: {} specs for {} clients",
                    self.client_specs.len(),
                    ctx.cfg.n_clients
                ),
            });
        }
        self.store = match &self.spill {
            Some(spill) => ClientStateStore::sharded(ctx.cfg.n_clients, spill.clone())
                .map_err(|e| ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("opening spill store: {e}"),
                })?,
            None => {
                let mut store = ClientStateStore::in_memory(ctx.cfg.n_clients);
                let specs = &self.client_specs;
                store.seed_all(|k| fresh_local_blob(specs[k]));
                store
            }
        };
        Ok(())
    }

    fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        // The logit matrix on the public set, each way.
        ClientPlan::uniform(sampled, ModelView::Logits, WirePayload::symmetric(self.payload_bytes()))
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        self.store.begin_round(round);
        if sampled.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(round),
        };
        let consensus_targets = self
            .consensus
            .as_ref()
            .map(|c| soften(c, self.cfg.temperature));
        // Stream the cohort in bounded batches; only the per-client logit
        // matrices stay resident for the consensus average, so memory is
        // O(batch · model + cohort · logits).
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut member_logits: Vec<Tensor> = Vec::with_capacity(sampled.len());
        let mut loss_sum = 0.0f32;
        scope.phase(Phase::LocalUpdate, |c| -> Result<(), EngineError> {
            for batch in sampled.chunks(chunk) {
                // Sequential fetch (the store is `&mut self`): rebuild each
                // sampled client's local model.
                let mut locals: Vec<(usize, Model)> = Vec::with_capacity(batch.len());
                for &k in batch {
                    let spec = self.client_specs[k];
                    let blob = self.store.fetch(k, |_| fresh_local_blob(spec))?;
                    locals.push((k, model_from_blob(&blob, k, spec)?));
                }
                let cfg = self.cfg;
                let public = &self.public;
                let results: Vec<(usize, Model, Tensor, f32, usize)> = locals
                    .into_par_iter()
                    .map(|(k, mut model)| {
                        let seed =
                            child_seed(ctx.cfg.seed, 0x3D ^ ((round as u64) << 16 | k as u64));
                        // Digest the consensus, when one exists.
                        let digest_steps = if let Some(targets) = &consensus_targets {
                            digest(&mut model, public, targets, &cfg, local.sgd, seed)
                        } else {
                            0
                        };
                        // Revisit private data.
                        let shard = ctx.client_shard(k);
                        let out = local_train(&mut model, &shard, &local, seed ^ 7, None);
                        // Publish logits on the public set (batch statistics:
                        // local models take few steps per round, same rationale
                        // as FedKEMF's distillation targets).
                        let logits = model.predict_batch_stats(public);
                        (k, model, logits, out.mean_loss, digest_steps + out.steps)
                    })
                    .collect();
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.4 as u64).sum::<u64>();
                c.batches = c.steps;
                // Commit updated models back; collect logits in sampled order.
                for (k, model, logits, loss, _steps) in results {
                    self.store.commit(k, ClientBlob::new().with_model("model", model.state()))?;
                    member_logits.push(logits);
                    loss_sum += loss;
                }
            }
            Ok(())
        })?;
        scope.phase(Phase::Fusion, |c| {
            c.clients = member_logits.len();
            let refs: Vec<&Tensor> = member_logits.iter().collect();
            self.consensus = Some(elementwise_mean(&refs));
        });
        Ok(RoundOutcome { train_loss: loss_sum / member_logits.len().max(1) as f32 })
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        self.store.begin_round(wave);
        if sampled.is_empty() {
            return Ok(Vec::new());
        }
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(wave),
        };
        // Clients digest the consensus that was current when they were
        // dispatched — a stale worker keeps learning from the snapshot it
        // downloaded, exactly as a real device would.
        let consensus_targets = self
            .consensus
            .as_ref()
            .map(|c| soften(c, self.cfg.temperature));
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut out = Vec::with_capacity(sampled.len());
        scope.phase(Phase::LocalUpdate, |c| -> Result<(), EngineError> {
            for batch in sampled.chunks(chunk) {
                let mut locals: Vec<(usize, Model)> = Vec::with_capacity(batch.len());
                for &k in batch {
                    let spec = self.client_specs[k];
                    let blob = self.store.fetch(k, |_| fresh_local_blob(spec))?;
                    locals.push((k, model_from_blob(&blob, k, spec)?));
                }
                let cfg = self.cfg;
                let public = &self.public;
                let results: Vec<(usize, Model, Tensor, f32, usize)> = locals
                    .into_par_iter()
                    .map(|(k, mut model)| {
                        let seed =
                            child_seed(ctx.cfg.seed, 0x3D ^ ((wave as u64) << 16 | k as u64));
                        let digest_steps = if let Some(targets) = &consensus_targets {
                            digest(&mut model, public, targets, &cfg, local.sgd, seed)
                        } else {
                            0
                        };
                        let shard = ctx.client_shard(k);
                        let out = local_train(&mut model, &shard, &local, seed ^ 7, None);
                        let logits = model.predict_batch_stats(public);
                        (k, model, logits, out.mean_loss, digest_steps + out.steps)
                    })
                    .collect();
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.4 as u64).sum::<u64>();
                c.batches = c.steps;
                for (k, model, logits, loss, steps) in results {
                    out.push(PreparedUpdate {
                        client: k,
                        n_samples: ctx.client_shard_len(k),
                        steps,
                        loss,
                        payload: UpdatePayload::Logits(TensorBlob {
                            dims: logits.dims().to_vec(),
                            values: logits.data().to_vec(),
                        }),
                        commit: Some(
                            ClientBlob::new().with_model("model", model.state()),
                        ),
                    });
                }
            }
            Ok(())
        })?;
        Ok(out)
    }

    fn fuse(
        &mut self,
        round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        _ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        self.store.begin_round(round);
        if updates.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let dims = [self.public.dims()[0], self.classes];
        let mut logits: Vec<Tensor> = Vec::with_capacity(updates.len());
        let mut weights: Vec<f32> = Vec::with_capacity(updates.len());
        let mut loss_sum = 0.0f32;
        for (u, w) in updates {
            let UpdatePayload::Logits(blob) = u.payload else {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("client {}: expected a logit payload", u.client),
                }));
            };
            if blob.dims != dims {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!(
                        "client {}: logit payload is {:?}, public set needs {dims:?}",
                        u.client, blob.dims
                    ),
                }));
            }
            if let Some(commit) = u.commit {
                self.store.commit(u.client, commit)?;
            }
            logits.push(Tensor::from_vec(blob.values, &dims));
            weights.push(w);
            loss_sum += u.loss;
        }
        let reported = logits.len();
        scope.phase(Phase::Fusion, |c| {
            c.clients = reported;
            // Weighted elementwise mean with the same clone/axpy/scale
            // structure as `elementwise_mean`: with every weight at 1.0
            // the first scale is ×1.0 (a bitwise no-op), each axpy adds
            // 1.0·t, and Σw is the exact count — bit-identical.
            let mut acc = logits[0].clone();
            acc.scale_inplace(weights[0]);
            for (t, &w) in logits[1..].iter().zip(weights[1..].iter()) {
                acc.axpy(w, t);
            }
            let total: f32 = weights.iter().sum();
            acc.scale_inplace(1.0 / total);
            self.consensus = Some(acc);
        });
        Ok(RoundOutcome { train_loss: loss_sum / reported as f32 })
    }

    /// FedMD has no global model; report the mean client accuracy on the
    /// shared test set (the metric its paper uses).
    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        let n = self.store.n_clients();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for k in 0..n {
            let spec = self.client_specs[k];
            let blob = match self.store.read(k, |_| fresh_local_blob(spec)) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let Ok(mut model) = model_from_blob(&blob, k, spec) else { continue };
            total += model.evaluate(&ctx.test.images, &ctx.test.labels, ctx.cfg.eval_batch);
        }
        total / n as f32
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        // In sharded mode the local models already live in the spill
        // directory (write-through commits), so the checkpoint carries only
        // the population size for validation; memory mode embeds them all,
        // keeping the v1 checkpoint format unchanged.
        let mut s = AlgorithmState::new(self.name(), 1);
        if self.store.is_sharded() {
            s = s.with_scalar("sharded_clients", self.store.n_clients() as f64);
        } else {
            for k in 0..self.store.n_clients() {
                let blob = self.store.read(k, |_| ClientBlob::new())?;
                let m = blob.model("model").ok_or(StoreError::Corrupt {
                    client: k,
                    detail: "missing local-model entry `model`".into(),
                })?;
                s.push_model(format!("local.{k}"), m.clone());
            }
        }
        // Presence of the entry encodes the Option: no consensus exists
        // before the first completed round.
        if let Some(c) = &self.consensus {
            s.push_tensor("consensus", c.dims().to_vec(), c.data().to_vec());
        }
        Ok(s)
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let consensus = match state.opt_tensor("consensus") {
            Some(blob) => {
                let dims = [self.public.dims()[0], self.classes];
                check_tensor_dims("consensus", blob, &dims)?;
                Some(Tensor::from_vec(blob.values.clone(), &dims))
            }
            None => None,
        };
        if self.store.is_sharded() {
            let n = self.store.n_clients();
            let recorded = state.scalar("sharded_clients")?;
            if recorded != n as f64 {
                return Err(RestoreError::ShapeMismatch {
                    name: "sharded_clients".into(),
                    detail: format!("checkpoint covers {recorded} clients, store has {n}"),
                });
            }
        } else {
            // Pre-check every local model before mutating anything, so a
            // failed restore leaves the instance untouched.
            let n = self.store.n_clients();
            for k in 0..n {
                let name = format!("local.{k}");
                let layout = Model::new(self.client_specs[k]).state();
                check_model_layout(&name, state.model(&name)?, &layout)?;
            }
            for k in 0..n {
                let name = format!("local.{k}");
                let incoming = state.model(&name)?.clone();
                self.store
                    .commit(k, ClientBlob::new().with_model("model", incoming))
                    .map_err(|e| RestoreError::Store { detail: e.to_string() })?;
            }
        }
        self.consensus = consensus;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{assign_tiers, heterogeneous_specs, uniform_specs};
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_fl::config::FlConfig;
    use kemf_fl::engine::{Engine, RunOptions};
    use kemf_fl::metrics::History;
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn world(seed: u64, n: usize) -> (FlContext, SynthTask) {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(60 * n, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: n,
            sample_ratio: 1.0,
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            alpha: 0.5,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        (FlContext::new(cfg, &train, test), task)
    }

    #[test]
    fn fedmd_learns_above_chance() {
        let (ctx, task) = world(81, 4);
        let specs = uniform_specs(Arch::Cnn2, 4, 1, 12, 10, 2);
        let public = task.generate_unlabeled(100, 3);
        let mut algo = FedMd::new(specs, public, 10, FedMdConfig::default());
        let h = run(&mut algo, &ctx);
        assert!(h.best_accuracy() > 0.3, "got {}", h.best_accuracy());
    }

    #[test]
    fn fedmd_supports_heterogeneous_models() {
        let (ctx, task) = world(82, 6);
        let tiers = assign_tiers(6, 1);
        let specs = heterogeneous_specs(&tiers, 1, 12, 10, 2);
        let public = task.generate_unlabeled(80, 3);
        let mut algo = FedMd::new(specs, public, 10, FedMdConfig::default());
        let h = run(&mut algo, &ctx);
        assert!(h.accuracies().iter().all(|a| a.is_finite()));
        assert!(h.best_accuracy() > 0.15);
    }

    #[test]
    fn payload_is_logits_only() {
        let (ctx, task) = world(83, 3);
        let specs = uniform_specs(Arch::ResNet32, 3, 1, 12, 10, 2);
        let public = task.generate_unlabeled(50, 3);
        let mut algo = FedMd::new(specs, public, 10, FedMdConfig::default());
        assert_eq!(algo.payload_bytes(), 50 * 10 * 4);
        let model_bytes = Model::new(ModelSpec::scaled(Arch::ResNet32, 1, 12, 10, 0)).state_bytes() as u64;
        assert!(algo.payload_bytes() < model_bytes / 4, "logits ≪ model weights");
        let h = run(&mut algo, &ctx);
        assert_eq!(h.total_bytes(), 6 * 3 * 2 * algo.payload_bytes());
    }

    #[test]
    fn consensus_builds_after_first_round() {
        let (ctx, task) = world(84, 3);
        let specs = uniform_specs(Arch::Cnn2, 3, 1, 12, 10, 2);
        let public = task.generate_unlabeled(40, 3);
        let mut algo = FedMd::new(specs, public, 10, FedMdConfig::default());
        algo.init(&ctx).unwrap();
        assert!(algo.consensus.is_none());
        let mut sink = kemf_fl::trace::NoopSink;
        let mut scope = RoundScope::new(&mut sink, 0);
        algo.round(0, &[0, 1, 2], &ctx, &mut scope).unwrap();
        let c = algo.consensus.as_ref().expect("consensus after round 0");
        assert_eq!(c.dims(), &[40, 10]);
    }
}
