//! FedMD (Li & Wang 2019) — *heterogeneous federated learning via model
//! distillation* — the classic logit-communication baseline from the
//! paper's related work. Clients never share weights at all; each round:
//!
//! 1. the server broadcasts **consensus logits** on a public dataset;
//! 2. every client *digests* the consensus (distills it into its own,
//!    arbitrary-architecture model), then *revisits* its private data
//!    (a few epochs of supervised training);
//! 3. clients upload their own logits on the public set;
//! 4. the server averages them into the next consensus.
//!
//! The per-round payload is `2 × |public set| × classes × 4` bytes per
//! client — independent of every model size, like FedKEMF's knowledge
//! network but with no transferable global *model*: the server owns only
//! logits, so `global_model()` is `None` and evaluation reports the mean
//! client-model accuracy.

use kemf_data::dataset::Dataset;
use kemf_fl::config::ConfigError;
use kemf_fl::context::FlContext;
use kemf_fl::engine::{FedAlgorithm, RoundOutcome};
use kemf_fl::lifecycle::WirePayload;
use kemf_fl::local::{local_train, LocalCfg};
use kemf_fl::state::{check_model_layout, check_tensor_dims, AlgorithmState, RestoreError};
use kemf_fl::trace::{Phase, RoundScope};
use kemf_nn::loss::kl_to_target;
use kemf_nn::model::Model;
use kemf_nn::models::ModelSpec;
use kemf_nn::optim::{clip_grad_norm, Sgd};
use kemf_nn::loss::soften;
use kemf_tensor::ops::elementwise_mean;
use kemf_tensor::rng::{child_seed, seeded_rng};
use kemf_tensor::Tensor;
use rand::seq::SliceRandom;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// FedMD hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FedMdConfig {
    /// Epochs of consensus digestion per round.
    pub digest_epochs: usize,
    /// Digestion temperature.
    pub temperature: f32,
    /// Digestion learning rate.
    pub digest_lr: f32,
}

impl Default for FedMdConfig {
    fn default() -> Self {
        FedMdConfig { digest_epochs: 1, temperature: 2.0, digest_lr: 0.02 }
    }
}

/// The FedMD baseline (heterogeneous-capable).
pub struct FedMd {
    /// Per-client model specs (may differ per client).
    client_specs: Vec<ModelSpec>,
    cfg: FedMdConfig,
    /// Public reference set whose logits are communicated.
    public: Tensor,
    /// Current consensus logits `[pool, classes]` (None before round 0).
    consensus: Option<Tensor>,
    local_models: Vec<Option<Model>>,
    classes: usize,
}

impl FedMd {
    /// New FedMD population over a public reference set.
    pub fn new(client_specs: Vec<ModelSpec>, public: Tensor, classes: usize, cfg: FedMdConfig) -> Self {
        assert!(!client_specs.is_empty(), "need at least one client spec");
        FedMd { client_specs, cfg, public, consensus: None, local_models: Vec::new(), classes }
    }

    /// Per-direction payload: the logit matrix on the public set.
    pub fn payload_bytes(&self) -> u64 {
        (self.public.dims()[0] * self.classes * 4) as u64
    }

    /// Mean per-client accuracy of the local models on `tests`.
    pub fn evaluate_local_models(&mut self, tests: &[Dataset], eval_batch: usize) -> f32 {
        assert_eq!(tests.len(), self.local_models.len(), "one test set per client");
        let mut total = 0.0;
        for (m, t) in self.local_models.iter_mut().zip(tests.iter()) {
            total += m.as_mut().expect("init ran").evaluate(&t.images, &t.labels, eval_batch);
        }
        total / tests.len() as f32
    }
}

/// Distill `targets` (softened consensus probabilities) into `model` on
/// the public images. Returns the number of digestion steps taken.
fn digest(
    model: &mut Model,
    public: &Tensor,
    targets: &Tensor,
    cfg: &FedMdConfig,
    sgd: kemf_nn::optim::SgdConfig,
    seed: u64,
) -> usize {
    let n = public.dims()[0];
    let mut opt = Sgd::new(kemf_nn::optim::SgdConfig { lr: cfg.digest_lr, ..sgd });
    let mut rng = seeded_rng(seed);
    let mut steps = 0;
    for _ in 0..cfg.digest_epochs {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for chunk in order.chunks(32) {
            let images = public.gather_rows(chunk);
            let target = targets.gather_rows(chunk);
            model.zero_grad();
            let logits = model.forward(&images, true);
            let (_, grad) = kl_to_target(&logits, &target, cfg.temperature);
            let _ = model.backward(&grad);
            let _ = clip_grad_norm(model.net_mut(), 5.0);
            opt.step(model.net_mut());
            steps += 1;
        }
    }
    steps
}

impl FedAlgorithm for FedMd {
    fn name(&self) -> String {
        "FedMD".into()
    }

    fn init(&mut self, ctx: &FlContext) -> Result<(), ConfigError> {
        if self.client_specs.len() != ctx.cfg.n_clients {
            return Err(ConfigError::AlgorithmSetup {
                algorithm: self.name(),
                reason: format!(
                    "need one client spec per client: {} specs for {} clients",
                    self.client_specs.len(),
                    ctx.cfg.n_clients
                ),
            });
        }
        self.local_models = self.client_specs.iter().map(|s| Some(Model::new(*s))).collect();
        Ok(())
    }

    fn payload_per_client(&self) -> WirePayload {
        // The logit matrix on the public set, each way.
        WirePayload::symmetric(self.payload_bytes())
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> RoundOutcome {
        let local = LocalCfg {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(round),
        };
        let consensus_targets = self
            .consensus
            .as_ref()
            .map(|c| soften(c, self.cfg.temperature));
        let mut moved: Vec<(usize, Model)> = sampled
            .iter()
            .map(|&k| (k, self.local_models[k].take().expect("model present")))
            .collect();
        let cfg = self.cfg;
        let public = &self.public;
        let results: Vec<(usize, Model, Tensor, f32, usize)> = scope.phase(Phase::LocalUpdate, |c| {
            let results: Vec<(usize, Model, Tensor, f32, usize)> = moved
                .par_drain(..)
                .map(|(k, mut model)| {
                    let seed = child_seed(ctx.cfg.seed, 0x3D ^ ((round as u64) << 16 | k as u64));
                    // Digest the consensus, when one exists.
                    let digest_steps = if let Some(targets) = &consensus_targets {
                        digest(&mut model, public, targets, &cfg, local.sgd, seed)
                    } else {
                        0
                    };
                    // Revisit private data.
                    let out = local_train(&mut model, &ctx.client_data[k], &local, seed ^ 7, None);
                    // Publish logits on the public set (batch statistics:
                    // local models take few steps per round, same rationale
                    // as FedKEMF's distillation targets).
                    let logits = model.predict_batch_stats(public);
                    (k, model, logits, out.mean_loss, digest_steps + out.steps)
                })
                .collect();
            c.clients = results.len();
            c.steps = results.iter().map(|r| r.4 as u64).sum();
            c.batches = c.steps;
            results
        });
        let mut member_logits = Vec::with_capacity(results.len());
        let mut loss_sum = 0.0;
        for (k, model, logits, loss, _steps) in results {
            self.local_models[k] = Some(model);
            member_logits.push(logits);
            loss_sum += loss;
        }
        scope.phase(Phase::Fusion, |c| {
            c.clients = member_logits.len();
            let refs: Vec<&Tensor> = member_logits.iter().collect();
            self.consensus = Some(elementwise_mean(&refs));
        });
        RoundOutcome { train_loss: loss_sum / member_logits.len().max(1) as f32 }
    }

    /// FedMD has no global model; report the mean client accuracy on the
    /// shared test set (the metric its paper uses).
    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for m in self.local_models.iter_mut().flatten() {
            total += m.evaluate(&ctx.test.images, &ctx.test.labels, ctx.cfg.eval_batch);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f32
        }
    }

    fn state(&self) -> AlgorithmState {
        let mut s = AlgorithmState::new(self.name(), 1);
        for (k, m) in self.local_models.iter().enumerate() {
            let m = m.as_ref().expect("local models are only taken within round()");
            s.push_model(format!("local.{k}"), m.state());
        }
        // Presence of the entry encodes the Option: no consensus exists
        // before the first completed round.
        if let Some(c) = &self.consensus {
            s.push_tensor("consensus", c.dims().to_vec(), c.data().to_vec());
        }
        s
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        for (k, m) in self.local_models.iter().enumerate() {
            let name = format!("local.{k}");
            let live = m.as_ref().expect("local models are only taken within round()");
            check_model_layout(&name, state.model(&name)?, &live.state())?;
        }
        let consensus = match state.opt_tensor("consensus") {
            Some(blob) => {
                let dims = [self.public.dims()[0], self.classes];
                check_tensor_dims("consensus", blob, &dims)?;
                Some(Tensor::from_vec(blob.values.clone(), &dims))
            }
            None => None,
        };
        for (k, m) in self.local_models.iter_mut().enumerate() {
            let name = format!("local.{k}");
            m.as_mut().unwrap().set_state(state.model(&name)?);
        }
        self.consensus = consensus;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{assign_tiers, heterogeneous_specs, uniform_specs};
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_fl::config::FlConfig;
    use kemf_fl::engine::{Engine, RunOptions};
    use kemf_fl::metrics::History;
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn world(seed: u64, n: usize) -> (FlContext, SynthTask) {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(60 * n, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients: n,
            sample_ratio: 1.0,
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            alpha: 0.5,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        (FlContext::new(cfg, &train, test), task)
    }

    #[test]
    fn fedmd_learns_above_chance() {
        let (ctx, task) = world(81, 4);
        let specs = uniform_specs(Arch::Cnn2, 4, 1, 12, 10, 2);
        let public = task.generate_unlabeled(100, 3);
        let mut algo = FedMd::new(specs, public, 10, FedMdConfig::default());
        let h = run(&mut algo, &ctx);
        assert!(h.best_accuracy() > 0.3, "got {}", h.best_accuracy());
    }

    #[test]
    fn fedmd_supports_heterogeneous_models() {
        let (ctx, task) = world(82, 6);
        let tiers = assign_tiers(6, 1);
        let specs = heterogeneous_specs(&tiers, 1, 12, 10, 2);
        let public = task.generate_unlabeled(80, 3);
        let mut algo = FedMd::new(specs, public, 10, FedMdConfig::default());
        let h = run(&mut algo, &ctx);
        assert!(h.accuracies().iter().all(|a| a.is_finite()));
        assert!(h.best_accuracy() > 0.15);
    }

    #[test]
    fn payload_is_logits_only() {
        let (ctx, task) = world(83, 3);
        let specs = uniform_specs(Arch::ResNet32, 3, 1, 12, 10, 2);
        let public = task.generate_unlabeled(50, 3);
        let mut algo = FedMd::new(specs, public, 10, FedMdConfig::default());
        assert_eq!(algo.payload_bytes(), 50 * 10 * 4);
        let model_bytes = Model::new(ModelSpec::scaled(Arch::ResNet32, 1, 12, 10, 0)).state_bytes() as u64;
        assert!(algo.payload_bytes() < model_bytes / 4, "logits ≪ model weights");
        let h = run(&mut algo, &ctx);
        assert_eq!(h.total_bytes(), 6 * 3 * 2 * algo.payload_bytes());
    }

    #[test]
    fn consensus_builds_after_first_round() {
        let (ctx, task) = world(84, 3);
        let specs = uniform_specs(Arch::Cnn2, 3, 1, 12, 10, 2);
        let public = task.generate_unlabeled(40, 3);
        let mut algo = FedMd::new(specs, public, 10, FedMdConfig::default());
        algo.init(&ctx).unwrap();
        assert!(algo.consensus.is_none());
        let mut sink = kemf_fl::trace::NoopSink;
        let mut scope = RoundScope::new(&mut sink, 0);
        let _ = algo.round(0, &[0, 1, 2], &ctx, &mut scope);
        let c = algo.consensus.as_ref().expect("consensus after round 0");
        assert_eq!(c.dims(), &[40, 10]);
    }
}
