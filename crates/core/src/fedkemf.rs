//! FedKEMF — the paper's contribution, wired into the `kemf-fl` engine.
//!
//! Per round (Algorithms 1 and 2):
//! 1. sampled clients download the tiny global knowledge network θ_g;
//! 2. each client mutually trains (θ_local, θ_g) with deep mutual
//!    learning on its private shard and uploads only the updated θ_g^k;
//! 3. the server ensembles {θ_g^k} (max-logits by default) and distills
//!    the ensemble into the global θ_g on an unlabeled public pool —
//!    or, in the alternative fusion mode, weight-averages them;
//! 4. the local models never leave their devices, so clients may run
//!    heterogeneous architectures sized to their resources.

use crate::distill::{distill_ensemble, DistillConfig};
use crate::dml::{dml_local_update, DmlConfig};
use crate::fusion::{weight_average_fusion, weight_average_fusion_weighted, FusionMode};
use kemf_fl::client_store::{ClientBlob, ClientStateStore, SpillConfig, StoreError};
use kemf_fl::config::ConfigError;
use kemf_fl::context::FlContext;
use kemf_fl::engine::{EngineError, FedAlgorithm, RoundOutcome};
use kemf_fl::lifecycle::{ClientPlan, ModelView, WirePayload};
use kemf_fl::local::{local_train, LocalCfg};
use kemf_fl::scheduler::{PreparedUpdate, UpdatePayload};
use kemf_fl::state::{check_model_layout, AlgorithmState, RestoreError};
use kemf_fl::trace::{Phase, RoundScope};
use kemf_data::dataset::Dataset;
use kemf_nn::model::Model;
use kemf_nn::models::ModelSpec;
use kemf_nn::serialize::ModelState;
use kemf_tensor::rng::child_seed;
use kemf_tensor::Tensor;
use rayon::prelude::*;

/// FedKEMF configuration beyond the generic `FlConfig`.
#[derive(Clone)]
pub struct FedKemfConfig {
    /// Architecture of the tiny knowledge network θ_g.
    pub knowledge_spec: ModelSpec,
    /// Per-client local-model specs (uniform or resource-heterogeneous);
    /// length must equal the client count.
    pub client_specs: Vec<ModelSpec>,
    /// Server-side unlabeled pool for ensemble distillation.
    pub public_pool: Tensor,
    /// Distillation settings (strategy, temperature, epochs).
    pub distill: DistillConfig,
    /// Server fusion mode.
    pub fusion: FusionMode,
    /// Weight of the mutual KL term in DML (1.0 = the paper).
    pub kl_weight: f32,
    /// Mutual-target temperature in DML (1.0 = the paper).
    pub dml_temperature: f32,
    /// Ablation switch: `false` decouples the networks (each trains on
    /// plain cross-entropy; no knowledge extraction).
    pub mutual: bool,
    /// Rounds over which the mutual-KL weight ramps linearly from 0 to
    /// `kl_weight`. Early local models are noise; distilling toward them
    /// from round 0 measurably drags the knowledge network (see the
    /// ablation harness). 0 = constant weight (paper-literal Algorithm 1).
    pub kl_warmup_rounds: usize,
    /// Spill per-client local models to disk instead of holding
    /// `n_clients` of them resident; `None` (the default) keeps the
    /// classic in-memory population.
    pub spill: Option<SpillConfig>,
}

impl FedKemfConfig {
    /// Paper-faithful defaults for a uniform single-model deployment.
    pub fn uniform(knowledge_spec: ModelSpec, client_specs: Vec<ModelSpec>, public_pool: Tensor) -> Self {
        FedKemfConfig {
            knowledge_spec,
            client_specs,
            public_pool,
            distill: DistillConfig::default(),
            fusion: FusionMode::EnsembleDistill,
            // Scaled-regime default (see EXPERIMENTS.md): at this
            // reproduction's short horizons the full paper weight of 1.0
            // lets noisy early local models drag the knowledge network.
            // `paper_literal()` restores Algorithm 1 exactly.
            kl_weight: 0.3,
            dml_temperature: 1.0,
            mutual: true,
            kl_warmup_rounds: 10,
            spill: None,
        }
    }

    /// Spill per-client local models to `spill.dir` (population-scale
    /// cohorts; resident memory becomes O(cohort), not O(population)).
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Paper-literal Algorithm 1 weighting: mutual KL weight 1.0 from
    /// round 0 (no warm-up).
    pub fn paper_literal(mut self) -> Self {
        self.kl_weight = 1.0;
        self.kl_warmup_rounds = 0;
        self
    }
}

/// The FedKEMF server + client population.
pub struct FedKemf {
    cfg: FedKemfConfig,
    global_knowledge: ModelState,
    eval_model: Model,
    /// Persistent per-client local models (deployed on-device; never
    /// communicated), fetched and committed through the client-state
    /// store: resident for the classic in-memory mode, spilled to disk
    /// for population-scale cohorts.
    store: ClientStateStore,
}

/// A fresh (never-sampled) client's deployed model: built from its spec,
/// whose seed makes it deterministic. Memory mode seeds every slot with
/// this at init; sharded mode materializes it lazily on first fetch.
pub(crate) fn fresh_local_blob(spec: ModelSpec) -> ClientBlob {
    ClientBlob::new().with_model("model", Model::new(spec).state())
}

/// Rebuild client `k`'s deployed model from its stored blob, with the
/// layout validated against the client's spec as a typed error — a blob
/// from the wrong population must not panic the training process.
pub(crate) fn model_from_blob(blob: &ClientBlob, k: usize, spec: ModelSpec) -> Result<Model, StoreError> {
    let st = blob.model("model").ok_or_else(|| StoreError::Corrupt {
        client: k,
        detail: "missing deployed-model entry `model`".into(),
    })?;
    let mut model = Model::new(spec);
    let layout = model.state();
    if st.params.lens != layout.params.lens || st.buffers.lens != layout.buffers.lens {
        return Err(StoreError::Corrupt {
            client: k,
            detail: format!(
                "stored model layout ({} params) does not match the client spec ({} params)",
                st.params.numel(),
                layout.params.numel()
            ),
        });
    }
    model.set_state(st);
    Ok(model)
}

impl FedKemf {
    /// New FedKEMF instance.
    pub fn new(cfg: FedKemfConfig) -> Self {
        let eval_model = Model::new(cfg.knowledge_spec);
        let global_knowledge = eval_model.state();
        FedKemf { cfg, global_knowledge, eval_model, store: ClientStateStore::in_memory(0) }
    }

    /// Current global knowledge-network state.
    pub fn global_knowledge(&self) -> &ModelState {
        &self.global_knowledge
    }

    /// Per-direction payload: only the tiny knowledge network crosses the
    /// wire — the communication headline of the paper.
    pub fn payload_bytes(&self) -> u64 {
        self.global_knowledge.bytes() as u64
    }

    /// Per-client accuracy of the *deployed local models* on per-client
    /// test sets. Clients that were never sampled evaluate at their
    /// current (possibly initial) weights. A test-set/population count
    /// mismatch or an unreadable stored model is a typed error, not a
    /// panic.
    pub fn evaluate_local_models_per_client(
        &self,
        client_tests: &[Dataset],
        eval_batch: usize,
    ) -> Result<Vec<f32>, EngineError> {
        if client_tests.len() != self.store.n_clients() {
            return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                algorithm: self.name(),
                reason: format!(
                    "need one test set per client: {} sets for {} clients",
                    client_tests.len(),
                    self.store.n_clients()
                ),
            }));
        }
        let mut out = Vec::with_capacity(client_tests.len());
        for (k, t) in client_tests.iter().enumerate() {
            let spec = self.cfg.client_specs[k];
            let blob = self.store.read(k, |_| fresh_local_blob(spec))?;
            let mut model = model_from_blob(&blob, k, spec)?;
            out.push(model.evaluate(&t.images, &t.labels, eval_batch));
        }
        Ok(out)
    }

    /// Average accuracy of the deployed local models on per-client test
    /// sets (the paper's multi-model metric, Table 3).
    pub fn evaluate_local_models(
        &self,
        client_tests: &[Dataset],
        eval_batch: usize,
    ) -> Result<f32, EngineError> {
        let per_client = self.evaluate_local_models_per_client(client_tests, eval_batch)?;
        Ok(per_client.iter().sum::<f32>() / per_client.len().max(1) as f32)
    }
}

impl FedAlgorithm for FedKemf {
    fn name(&self) -> String {
        match self.cfg.fusion {
            FusionMode::EnsembleDistill => "FedKEMF".into(),
            FusionMode::WeightAverage => "FedKEMF-WA".into(),
        }
    }

    fn init(&mut self, ctx: &FlContext) -> Result<(), ConfigError> {
        if self.cfg.client_specs.len() != ctx.cfg.n_clients {
            return Err(ConfigError::AlgorithmSetup {
                algorithm: self.name(),
                reason: format!(
                    "need one client spec per client: {} specs for {} clients",
                    self.cfg.client_specs.len(),
                    ctx.cfg.n_clients
                ),
            });
        }
        self.store = match &self.cfg.spill {
            Some(spill) => ClientStateStore::sharded(ctx.cfg.n_clients, spill.clone())
                .map_err(|e| ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!("opening spill store: {e}"),
                })?,
            None => {
                let mut store = ClientStateStore::in_memory(ctx.cfg.n_clients);
                let specs = &self.cfg.client_specs;
                store.seed_all(|k| fresh_local_blob(specs[k]));
                store
            }
        };
        Ok(())
    }

    fn client_plans(&self, _round: usize, sampled: &[usize]) -> Vec<ClientPlan> {
        // Only the tiny knowledge network crosses the wire, each way.
        ClientPlan::uniform(sampled, ModelView::Full, WirePayload::symmetric(self.payload_bytes()))
    }

    fn round(
        &mut self,
        round: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        self.store.begin_round(round);
        if sampled.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let ramp = if self.cfg.kl_warmup_rounds == 0 {
            1.0
        } else {
            ((round + 1) as f32 / self.cfg.kl_warmup_rounds as f32).min(1.0)
        };
        let dml_cfg = DmlConfig {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(round),
            kl_weight: self.cfg.kl_weight * ramp,
            temperature: self.cfg.dml_temperature,
            clip_norm: 5.0,
        };
        // Stream the cohort through local update in bounded batches;
        // only the tiny uploaded knowledge networks stay resident for
        // fusion, so memory is O(batch · local + cohort · knet).
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut teachers: Vec<Model> = Vec::with_capacity(sampled.len());
        let mut sample_counts: Vec<usize> = Vec::with_capacity(sampled.len());
        let mut loss_sum = 0.0f32;
        scope.phase(Phase::LocalUpdate, |c| -> Result<(), EngineError> {
            for batch in sampled.chunks(chunk) {
                // Sequential fetch (the store is `&mut self`): rebuild
                // each sampled client's deployed model.
                let mut locals: Vec<(usize, Model)> = Vec::with_capacity(batch.len());
                for &k in batch {
                    let spec = self.cfg.client_specs[k];
                    let blob = self.store.fetch(k, |_| fresh_local_blob(spec))?;
                    locals.push((k, model_from_blob(&blob, k, spec)?));
                }
                let global = &self.global_knowledge;
                let knowledge_spec = self.cfg.knowledge_spec;
                let mutual = self.cfg.mutual;
                let results: Vec<(usize, Model, Model, f32, usize)> = locals
                    .into_par_iter()
                    .map(|(k, mut local)| {
                        let mut knowledge = Model::new(knowledge_spec);
                        knowledge.set_state(global);
                        let seed =
                            child_seed(ctx.cfg.seed, 0xD31 ^ ((round as u64) << 20 | k as u64));
                        let shard = ctx.client_shard(k);
                        let (loss, steps) = if mutual {
                            let out =
                                dml_local_update(&mut local, &mut knowledge, &shard, &dml_cfg, seed);
                            (out.mean_knowledge_loss, out.steps)
                        } else {
                            // Ablation: decoupled training (no knowledge extraction).
                            let plain = LocalCfg {
                                epochs: dml_cfg.epochs,
                                batch: dml_cfg.batch,
                                sgd: dml_cfg.sgd,
                            };
                            let a = local_train(&mut local, &shard, &plain, seed, None);
                            let out = local_train(&mut knowledge, &shard, &plain, seed ^ 1, None);
                            (out.mean_loss, a.steps + out.steps)
                        };
                        (k, local, knowledge, loss, steps)
                    })
                    .collect();
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.4 as u64).sum::<u64>();
                c.batches = c.steps;
                // Commit updated local models back to the store; collect
                // uploaded knowledge networks in sampled order.
                for (k, local, knowledge, loss, _steps) in results {
                    self.store.commit(k, ClientBlob::new().with_model("model", local.state()))?;
                    sample_counts.push(ctx.client_shard_len(k));
                    teachers.push(knowledge);
                    loss_sum += loss;
                }
            }
            Ok(())
        })?;
        let train_loss = loss_sum / teachers.len().max(1) as f32;

        // Server fusion.
        scope.phase(Phase::Fusion, |c| {
            c.clients = teachers.len();
            match self.cfg.fusion {
                FusionMode::EnsembleDistill => {
                    // FedDF-style warm start (Lin et al. 2020, the fusion the
                    // paper builds on): since every knowledge network shares
                    // one architecture, initialize the student at their
                    // sample-weighted average, then refine it by distilling
                    // the ensemble. Distillation alone transfers too little
                    // per round to accumulate progress across rounds.
                    let mut student = Model::new(self.cfg.knowledge_spec);
                    let states: Vec<ModelState> = teachers.iter().map(Model::state).collect();
                    student.set_state(&weight_average_fusion(&states, &sample_counts));
                    let seed = child_seed(ctx.cfg.seed, 0xD157 ^ round as u64);
                    let out = distill_ensemble(
                        &mut student,
                        &mut teachers,
                        &self.cfg.public_pool,
                        &self.cfg.distill,
                        seed,
                    );
                    c.steps = out.steps as u64;
                    c.batches = out.batches as u64;
                    self.global_knowledge = student.state();
                }
                FusionMode::WeightAverage => {
                    let states: Vec<ModelState> = teachers.iter().map(Model::state).collect();
                    self.global_knowledge = weight_average_fusion(&states, &sample_counts);
                }
            }
        });
        Ok(RoundOutcome { train_loss })
    }

    fn train_cohort(
        &mut self,
        wave: usize,
        sampled: &[usize],
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<Vec<PreparedUpdate>, EngineError> {
        self.store.begin_round(wave);
        if sampled.is_empty() {
            return Ok(Vec::new());
        }
        let ramp = if self.cfg.kl_warmup_rounds == 0 {
            1.0
        } else {
            ((wave + 1) as f32 / self.cfg.kl_warmup_rounds as f32).min(1.0)
        };
        let dml_cfg = DmlConfig {
            epochs: ctx.cfg.local_epochs,
            batch: ctx.cfg.batch_size,
            sgd: ctx.cfg.sgd_at(wave),
            kl_weight: self.cfg.kl_weight * ramp,
            temperature: self.cfg.dml_temperature,
            clip_norm: 5.0,
        };
        let chunk = ctx.cfg.cohort_chunk(sampled.len());
        let mut out = Vec::with_capacity(sampled.len());
        scope.phase(Phase::LocalUpdate, |c| -> Result<(), EngineError> {
            for batch in sampled.chunks(chunk) {
                let mut locals: Vec<(usize, Model)> = Vec::with_capacity(batch.len());
                for &k in batch {
                    let spec = self.cfg.client_specs[k];
                    let blob = self.store.fetch(k, |_| fresh_local_blob(spec))?;
                    locals.push((k, model_from_blob(&blob, k, spec)?));
                }
                let global = &self.global_knowledge;
                let knowledge_spec = self.cfg.knowledge_spec;
                let mutual = self.cfg.mutual;
                let results: Vec<(usize, Model, Model, f32, usize)> = locals
                    .into_par_iter()
                    .map(|(k, mut local)| {
                        let mut knowledge = Model::new(knowledge_spec);
                        knowledge.set_state(global);
                        let seed =
                            child_seed(ctx.cfg.seed, 0xD31 ^ ((wave as u64) << 20 | k as u64));
                        let shard = ctx.client_shard(k);
                        let (loss, steps) = if mutual {
                            let out =
                                dml_local_update(&mut local, &mut knowledge, &shard, &dml_cfg, seed);
                            (out.mean_knowledge_loss, out.steps)
                        } else {
                            let plain = LocalCfg {
                                epochs: dml_cfg.epochs,
                                batch: dml_cfg.batch,
                                sgd: dml_cfg.sgd,
                            };
                            let a = local_train(&mut local, &shard, &plain, seed, None);
                            let out = local_train(&mut knowledge, &shard, &plain, seed ^ 1, None);
                            (out.mean_loss, a.steps + out.steps)
                        };
                        (k, local, knowledge, loss, steps)
                    })
                    .collect();
                c.clients += results.len();
                c.steps += results.iter().map(|r| r.4 as u64).sum::<u64>();
                c.batches = c.steps;
                // The refreshed deployed model rides along as a deferred
                // commit: an evicted or quorum-aborted update must not
                // have touched the device.
                for (k, local, knowledge, loss, steps) in results {
                    out.push(PreparedUpdate {
                        client: k,
                        n_samples: ctx.client_shard_len(k),
                        steps,
                        loss,
                        payload: UpdatePayload::State(knowledge.state()),
                        commit: Some(
                            ClientBlob::new().with_model("model", local.state()),
                        ),
                    });
                }
            }
            Ok(())
        })?;
        Ok(out)
    }

    fn fuse(
        &mut self,
        round: usize,
        updates: Vec<(PreparedUpdate, f32)>,
        ctx: &FlContext,
        scope: &mut RoundScope<'_>,
    ) -> Result<RoundOutcome, EngineError> {
        self.store.begin_round(round);
        if updates.is_empty() {
            return Ok(RoundOutcome { train_loss: f32::NAN });
        }
        let mut states: Vec<ModelState> = Vec::with_capacity(updates.len());
        let mut sample_counts: Vec<usize> = Vec::with_capacity(updates.len());
        let mut weights: Vec<f32> = Vec::with_capacity(updates.len());
        let mut loss_sum = 0.0f32;
        for (u, w) in updates {
            let UpdatePayload::State(state) = u.payload else {
                return Err(EngineError::Config(ConfigError::AlgorithmSetup {
                    algorithm: self.name(),
                    reason: format!(
                        "client {}: expected a knowledge-network state payload",
                        u.client
                    ),
                }));
            };
            if let Some(blob) = u.commit {
                self.store.commit(u.client, blob)?;
            }
            states.push(state);
            sample_counts.push(u.n_samples);
            weights.push(w);
            loss_sum += u.loss;
        }
        let train_loss = loss_sum / states.len() as f32;
        scope.phase(Phase::Fusion, |c| {
            c.clients = states.len();
            match self.cfg.fusion {
                FusionMode::EnsembleDistill => {
                    // Staleness discounting applies to the warm-start
                    // average; the distillation pass itself treats every
                    // teacher alike (MaxLogits has no weighted analogue —
                    // see DESIGN.md).
                    let mut student = Model::new(self.cfg.knowledge_spec);
                    student.set_state(&weight_average_fusion_weighted(
                        &states,
                        &sample_counts,
                        &weights,
                    ));
                    let mut teachers: Vec<Model> = states
                        .iter()
                        .map(|s| {
                            let mut t = Model::new(self.cfg.knowledge_spec);
                            t.set_state(s);
                            t
                        })
                        .collect();
                    let seed = child_seed(ctx.cfg.seed, 0xD157 ^ round as u64);
                    let out = distill_ensemble(
                        &mut student,
                        &mut teachers,
                        &self.cfg.public_pool,
                        &self.cfg.distill,
                        seed,
                    );
                    c.steps = out.steps as u64;
                    c.batches = out.batches as u64;
                    self.global_knowledge = student.state();
                }
                FusionMode::WeightAverage => {
                    self.global_knowledge =
                        weight_average_fusion_weighted(&states, &sample_counts, &weights);
                }
            }
        });
        Ok(RoundOutcome { train_loss })
    }

    fn evaluate(&mut self, ctx: &FlContext) -> f32 {
        self.eval_model.set_state(&self.global_knowledge);
        self.eval_model
            .evaluate(&ctx.test.images, &ctx.test.labels, ctx.cfg.eval_batch)
    }

    fn state(&self) -> Result<AlgorithmState, EngineError> {
        // The local models never leave their devices in the protocol, but
        // a checkpoint is the device: dropping them would silently reset
        // every client's deployed model on resume. In sharded mode they
        // already live in the spill directory (write-through commits), so
        // the checkpoint carries only the population size for validation.
        let mut s = AlgorithmState::new(self.name(), 1)
            .with_model("knowledge", self.global_knowledge.clone());
        if self.store.is_sharded() {
            s = s.with_scalar("sharded_clients", self.store.n_clients() as f64);
        } else {
            for k in 0..self.store.n_clients() {
                let blob = self.store.read(k, |_| ClientBlob::new())?;
                let m = blob.model("model").ok_or(StoreError::Corrupt {
                    client: k,
                    detail: "missing deployed-model entry `model`".into(),
                })?;
                s.push_model(format!("local.{k}"), m.clone());
            }
        }
        Ok(s)
    }

    fn restore(&mut self, state: &AlgorithmState) -> Result<(), RestoreError> {
        state.expect_header(&self.name(), 1)?;
        let knowledge = state.model("knowledge")?;
        check_model_layout("knowledge", knowledge, &self.global_knowledge)?;
        if self.store.is_sharded() {
            let n = self.store.n_clients();
            let recorded = state.scalar("sharded_clients")?;
            if recorded != n as f64 {
                return Err(RestoreError::ShapeMismatch {
                    name: "sharded_clients".into(),
                    detail: format!("checkpoint covers {recorded} clients, store has {n}"),
                });
            }
        } else {
            // Pre-check every local model before mutating anything, so a
            // failed restore leaves the instance untouched.
            let n = self.store.n_clients();
            for k in 0..n {
                let name = format!("local.{k}");
                let layout = Model::new(self.cfg.client_specs[k]).state();
                check_model_layout(&name, state.model(&name)?, &layout)?;
            }
            for k in 0..n {
                let name = format!("local.{k}");
                let incoming = state.model(&name)?.clone();
                self.store
                    .commit(k, ClientBlob::new().with_model("model", incoming))
                    .map_err(|e| RestoreError::Store { detail: e.to_string() })?;
            }
        }
        self.global_knowledge = knowledge.clone();
        Ok(())
    }

    fn global_model(&self) -> Option<(ModelSpec, ModelState)> {
        Some((self.cfg.knowledge_spec, self.global_knowledge.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{assign_tiers, heterogeneous_specs, uniform_specs};
    use kemf_data::synth::{SynthConfig, SynthTask};
    use kemf_fl::config::FlConfig;
    use kemf_fl::engine::{Engine, RunOptions};
    use kemf_fl::metrics::History;
    use kemf_nn::models::Arch;

    fn run(algo: &mut dyn FedAlgorithm, ctx: &FlContext) -> History {
        Engine::run(algo, ctx, RunOptions::new()).unwrap().history
    }

    fn mk(seed: u64, n_clients: usize) -> (FlContext, SynthTask) {
        let task = SynthTask::new(SynthConfig::mnist_like(seed));
        let train = task.generate(60 * n_clients, 0);
        let test = task.generate(80, 1);
        let cfg = FlConfig {
            n_clients,
            sample_ratio: 1.0,
            rounds: 5,
            local_epochs: 2,
            batch_size: 16,
            alpha: 0.5,
            min_per_client: 10,
            seed,
            ..Default::default()
        };
        (FlContext::new(cfg, &train, test), task)
    }

    fn knowledge_spec() -> ModelSpec {
        ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1000)
    }

    #[test]
    fn fedkemf_learns_above_chance() {
        let (ctx, task) = mk(61, 4);
        let specs = uniform_specs(Arch::Cnn2, 4, 1, 12, 10, 2);
        let pool = task.generate_unlabeled(120, 5);
        let mut algo = FedKemf::new(FedKemfConfig::uniform(knowledge_spec(), specs, pool));
        let h = run(&mut algo, &ctx);
        assert!(h.best_accuracy() > 0.3, "got {}", h.best_accuracy());
    }

    #[test]
    fn payload_is_knowledge_network_only() {
        let (ctx, task) = mk(62, 3);
        // Big local models, tiny knowledge network: bytes must follow the
        // knowledge network.
        let specs = uniform_specs(Arch::ResNet20, 3, 1, 12, 10, 2);
        let pool = task.generate_unlabeled(60, 5);
        let mut algo = FedKemf::new(FedKemfConfig::uniform(knowledge_spec(), specs, pool));
        let knet_bytes = algo.payload_bytes();
        let local_model_bytes = Model::new(ModelSpec::scaled(Arch::ResNet20, 1, 12, 10, 0)).state_bytes() as u64;
        assert!(local_model_bytes > knet_bytes / 2, "sanity: local models are not free");
        let h = run(&mut algo, &ctx);
        assert_eq!(h.total_bytes(), 5 * 3 * 2 * knet_bytes);
    }

    #[test]
    fn heterogeneous_zoo_trains_all_models() {
        let (ctx, task) = mk(63, 6);
        let tiers = assign_tiers(6, 7);
        let specs = heterogeneous_specs(&tiers, 1, 12, 10, 8);
        let pool = task.generate_unlabeled(60, 5);
        let mut algo = FedKemf::new(FedKemfConfig::uniform(knowledge_spec(), specs.clone(), pool));
        let h = run(&mut algo, &ctx);
        assert!(h.accuracies().iter().all(|a| a.is_finite()));
        // Stored local models kept their per-client architectures: each
        // blob's parameter layout matches the client's own spec.
        for (k, spec) in specs.iter().enumerate() {
            let blob = algo.store.read(k, |_| ClientBlob::new()).unwrap();
            let stored = blob.model("model").unwrap();
            assert_eq!(stored.params.lens, Model::new(*spec).state().params.lens);
        }
        // Per-client local evaluation works and all models learned
        // something beyond chance on their own shard distribution.
        let client_tests: Vec<_> = (0..6).map(|i| task.generate(40, 100 + i as u64)).collect();
        let avg = algo.evaluate_local_models(&client_tests, 32).unwrap();
        assert!(avg > 0.15, "average local accuracy {avg}");
        // A test-set count that doesn't match the population is a typed
        // error, not the assert it used to be.
        let err = algo.evaluate_local_models(&client_tests[..2], 32).unwrap_err();
        assert!(
            matches!(err, EngineError::Config(ConfigError::AlgorithmSetup { .. })),
            "wrong error: {err}"
        );
    }

    #[test]
    fn weight_average_fusion_mode_runs() {
        let (ctx, task) = mk(64, 3);
        let specs = uniform_specs(Arch::Cnn2, 3, 1, 12, 10, 2);
        let pool = task.generate_unlabeled(40, 5);
        let mut cfg = FedKemfConfig::uniform(knowledge_spec(), specs, pool);
        cfg.fusion = FusionMode::WeightAverage;
        let mut algo = FedKemf::new(cfg);
        assert_eq!(algo.name(), "FedKEMF-WA");
        let h = run(&mut algo, &ctx);
        assert!(h.best_accuracy() > 0.2, "got {}", h.best_accuracy());
    }

    #[test]
    fn decoupled_ablation_runs() {
        let (ctx, task) = mk(65, 3);
        let specs = uniform_specs(Arch::Cnn2, 3, 1, 12, 10, 2);
        let pool = task.generate_unlabeled(40, 5);
        let mut cfg = FedKemfConfig::uniform(knowledge_spec(), specs, pool);
        cfg.mutual = false;
        let mut algo = FedKemf::new(cfg);
        let h = run(&mut algo, &ctx);
        assert!(h.accuracies().iter().all(|a| a.is_finite()));
    }

    #[test]
    fn int8_server_inference_matches_f32_final_accuracy() {
        // Acceptance bound for the quantized ensemble-inference path: run
        // a full FedKEMF training with the int8 teacher pass enabled, then
        // evaluate the final-round global knowledge network with exact f32
        // and with the int8 forward. Quantized server inference must move
        // final-round accuracy by less than 0.5% (absolute). The test set
        // is sized so 0.5% is resolvable (1 sample = 0.25%).
        let task = SynthTask::new(SynthConfig::mnist_like(67));
        let train = task.generate(60 * 4, 0);
        let test = task.generate(400, 1);
        let cfg = FlConfig {
            n_clients: 4,
            sample_ratio: 1.0,
            rounds: 5,
            local_epochs: 2,
            batch_size: 16,
            alpha: 0.5,
            min_per_client: 10,
            seed: 67,
            ..Default::default()
        };
        let ctx = FlContext::new(cfg, &train, test.clone());
        let specs = uniform_specs(Arch::Cnn2, 4, 1, 12, 10, 2);
        let pool = task.generate_unlabeled(120, 5);
        let mut kemf_cfg = FedKemfConfig::uniform(knowledge_spec(), specs, pool);
        kemf_cfg.distill.precision = kemf_fl::compress::ComputePrecision::Int8;
        let mut algo = FedKemf::new(kemf_cfg);
        let h = run(&mut algo, &ctx);
        assert!(h.best_accuracy() > 0.2, "int8-distilled run should still learn: {}", h.best_accuracy());
        let mut final_model = Model::new(knowledge_spec());
        final_model.set_state(algo.global_knowledge());
        let exact = final_model.evaluate(&test.images, &test.labels, 32);
        final_model.set_precision(kemf_nn::layer::Precision::Int8);
        let quant = final_model.evaluate(&test.images, &test.labels, 32);
        assert!(
            (exact - quant).abs() < 0.005,
            "int8 server inference moved final accuracy too far: {exact} vs {quant}"
        );
    }

    #[test]
    fn fedkemf_is_deterministic() {
        let run_once = || {
            let (ctx, task) = mk(66, 3);
            let specs = uniform_specs(Arch::Cnn2, 3, 1, 12, 10, 2);
            let pool = task.generate_unlabeled(40, 5);
            let mut algo = FedKemf::new(FedKemfConfig::uniform(knowledge_spec(), specs, pool));
            run(&mut algo, &ctx).accuracies()
        };
        assert_eq!(run_once(), run_once());
    }
}
