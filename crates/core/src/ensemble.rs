//! Ensemble strategies for the collected knowledge networks (Eq. 5 and
//! the paper's ablation): max-logits (default), average-logits, and
//! majority vote.

use kemf_fl::compress::ComputePrecision;
use kemf_nn::layer::Precision;
use kemf_nn::model::Model;
use kemf_tensor::ops::{argmax_rows, elementwise_max, elementwise_mean};
use kemf_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Standardize each row (zero mean, unit variance over classes). Applied
/// to every member before logit ensembling so that a single
/// badly-calibrated member cannot dominate by sheer logit scale — an
/// issue for max-logits when teachers are trained for few steps.
pub fn standardize_rows(logits: &Tensor) -> Tensor {
    let (n, c) = logits.shape().as_matrix();
    assert!(c > 1, "standardize_rows needs at least two classes");
    let mut out = logits.clone();
    let data = out.data_mut();
    for r in 0..n {
        let row = &mut data[r * c..(r + 1) * c];
        let mean: f32 = row.iter().sum::<f32>() / c as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / c as f32;
        let inv = 1.0 / var.sqrt().max(1e-6);
        for v in row.iter_mut() {
            *v = (*v - mean) * inv;
        }
    }
    out
}

/// How the server combines the client knowledge networks' outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnsembleStrategy {
    /// Element-wise maximum of the logit vectors (Eq. 5; the paper's
    /// choice — "the max logits get the best results in practice").
    MaxLogits,
    /// Element-wise mean of the logit vectors (FedDF-style).
    AvgLogits,
    /// Vote histogram over the members' argmax predictions.
    MajorityVote,
}

/// Combine per-member logits `[N, C]` into one ensemble logit tensor.
///
/// For `MajorityVote` the result rows are vote frequencies (a valid
/// probability vector scaled to logit-like range via identity — callers
/// soften it like any other logits, which preserves the vote ranking).
pub fn ensemble_logits(member_logits: &[Tensor], strategy: EnsembleStrategy) -> Tensor {
    assert!(!member_logits.is_empty(), "ensemble of zero members");
    match strategy {
        EnsembleStrategy::MaxLogits => {
            // Scale-normalize members first: max-logits is otherwise won
            // by whichever member happens to be most overconfident.
            let std: Vec<Tensor> = member_logits.iter().map(standardize_rows).collect();
            let refs: Vec<&Tensor> = std.iter().collect();
            elementwise_max(&refs)
        }
        EnsembleStrategy::AvgLogits => {
            let refs: Vec<&Tensor> = member_logits.iter().collect();
            elementwise_mean(&refs)
        }
        EnsembleStrategy::MajorityVote => {
            let (n, c) = member_logits[0].shape().as_matrix();
            let mut votes = Tensor::zeros(&[n, c]);
            for m in member_logits {
                assert_eq!(m.shape(), member_logits[0].shape(), "member shape mismatch");
                for (i, pred) in argmax_rows(m).into_iter().enumerate() {
                    votes.data_mut()[i * c + pred] += 1.0;
                }
            }
            votes.scale_inplace(1.0 / member_logits.len() as f32);
            votes
        }
    }
}

/// Run every member model over a batch and ensemble the logits — the
/// paper's `Θ(x)` (Eq. 5).
pub fn ensemble_forward(
    members: &mut [Model],
    images: &Tensor,
    strategy: EnsembleStrategy,
) -> Tensor {
    ensemble_forward_with_precision(members, images, strategy, ComputePrecision::F32)
}

/// [`ensemble_forward`] with an explicit member compute format. `Int8`
/// runs each member's forward through the quantized GEMM path; every
/// member is switched back to exact f32 before returning, so the choice
/// is scoped to this one pass and cannot leak into later training.
pub fn ensemble_forward_with_precision(
    members: &mut [Model],
    images: &Tensor,
    strategy: EnsembleStrategy,
    precision: ComputePrecision,
) -> Tensor {
    assert!(!members.is_empty(), "ensemble of zero members");
    let logits: Vec<Tensor> = members
        .iter_mut()
        .map(|m| {
            m.set_precision(precision.to_layer());
            let z = m.predict(images);
            m.set_precision(Precision::F32);
            z
        })
        .collect();
    ensemble_logits(&logits, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, n: usize, c: usize) -> Tensor {
        Tensor::from_vec(v, &[n, c])
    }

    #[test]
    fn max_logits_dominates_standardized_members() {
        let a = t(vec![1.0, 5.0, 2.0, 0.0], 2, 2);
        let b = t(vec![3.0, 2.0, 1.0, 4.0], 2, 2);
        let e = ensemble_logits(&[a.clone(), b.clone()], EnsembleStrategy::MaxLogits);
        // Members are row-standardized before the max, so the result
        // dominates the standardized members element-wise.
        let sa = standardize_rows(&a);
        let sb = standardize_rows(&b);
        for (i, &v) in e.data().iter().enumerate() {
            assert!(v >= sa.data()[i] && v >= sb.data()[i]);
        }
        // Row 0: member a prefers class 1, member b class 0 with equal
        // (unit) scale after standardization → a tie at +1 for both slots.
        assert_eq!(e.data()[0], e.data()[1]);
    }

    #[test]
    fn standardize_rows_is_rank_preserving_and_unit_scale() {
        let a = t(vec![10.0, 50.0, 20.0, -3.0], 1, 4);
        let s = standardize_rows(&a);
        let order = |v: &[f32]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
            idx
        };
        assert_eq!(order(a.data()), order(s.data()));
        let mean: f32 = s.data().iter().sum::<f32>() / 4.0;
        let var: f32 = s.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5 && (var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn avg_logits_is_mean() {
        let a = t(vec![2.0, 0.0], 1, 2);
        let b = t(vec![0.0, 4.0], 1, 2);
        let e = ensemble_logits(&[a, b], EnsembleStrategy::AvgLogits);
        assert_eq!(e.data(), &[1.0, 2.0]);
    }

    #[test]
    fn majority_vote_counts_argmaxes() {
        let a = t(vec![9.0, 0.0], 1, 2); // votes class 0
        let b = t(vec![0.0, 9.0], 1, 2); // votes class 1
        let c = t(vec![5.0, 1.0], 1, 2); // votes class 0
        let e = ensemble_logits(&[a, b, c], EnsembleStrategy::MajorityVote);
        kemf_tensor::assert_close(e.data(), &[2.0 / 3.0, 1.0 / 3.0], 1e-6);
    }

    #[test]
    fn single_member_avg_is_identity_and_max_preserves_ranking() {
        let a = t(vec![1.0, -2.0, 0.5, 3.0], 2, 2);
        assert_eq!(
            ensemble_logits(std::slice::from_ref(&a), EnsembleStrategy::AvgLogits).data(),
            a.data()
        );
        // Max standardizes, which preserves each row's argmax.
        let e = ensemble_logits(std::slice::from_ref(&a), EnsembleStrategy::MaxLogits);
        assert_eq!(argmax_rows(&e), argmax_rows(&a));
    }

    #[test]
    #[should_panic]
    fn empty_ensemble_panics() {
        let _ = ensemble_logits(&[], EnsembleStrategy::MaxLogits);
    }

    #[test]
    fn int8_ensemble_forward_tracks_f32() {
        use kemf_data::synth::{SynthConfig, SynthTask};
        use kemf_nn::models::{Arch, ModelSpec};
        let mut members = vec![
            Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 21)),
            Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 22)),
        ];
        let task = SynthTask::new(SynthConfig::mnist_like(23));
        let x = task.generate_unlabeled(6, 24);
        let exact = ensemble_forward(&mut members, &x, EnsembleStrategy::AvgLogits);
        let quant = ensemble_forward_with_precision(
            &mut members,
            &x,
            EnsembleStrategy::AvgLogits,
            ComputePrecision::Int8,
        );
        let max_abs = exact.data().iter().fold(0f32, |a, v| a.max(v.abs())).max(1.0);
        for (e, q) in exact.data().iter().zip(quant.data()) {
            assert!((e - q).abs() <= 0.1 * max_abs, "int8 drifted too far: {e} vs {q}");
        }
        // The switch must not leak: a plain forward afterwards is exact f32.
        let again = ensemble_forward(&mut members, &x, EnsembleStrategy::AvgLogits);
        assert_eq!(exact.data(), again.data());
    }
}
