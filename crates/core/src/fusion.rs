//! Multi-model knowledge fusion modes.
//!
//! The paper offers two server-side fusion methods for the collected
//! knowledge networks: classic weight averaging (FedAvg-style, possible
//! because every knowledge network shares one architecture) and ensemble
//! distillation (the paper's focus). The ablation harness compares them.

use kemf_nn::serialize::ModelState;
use serde::{Deserialize, Serialize};

/// Server fusion method for the uploaded knowledge networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FusionMode {
    /// Ensemble the knowledge networks and distill into the global one
    /// (Algorithm 2 — the paper's main method).
    EnsembleDistill,
    /// Sample-count-weighted averaging of the knowledge-network weights
    /// (the paper's "traditional fusion" alternative).
    WeightAverage,
}

/// Weight-average fusion of knowledge-network states.
pub fn weight_average_fusion(states: &[ModelState], sample_counts: &[usize]) -> ModelState {
    assert_eq!(states.len(), sample_counts.len(), "state/count length mismatch");
    let coeffs: Vec<f32> = sample_counts.iter().map(|&n| n as f32).collect();
    ModelState::weighted_average(states, &coeffs)
}

/// Weight-average fusion with an extra per-state multiplier (buffered-
/// asynchronous staleness discounting): coefficient `weights[i] ×
/// sample_counts[i]`. With every multiplier at exactly `1.0` this is
/// bit-identical to [`weight_average_fusion`] — `1.0 × n` is `n` in f32.
pub fn weight_average_fusion_weighted(
    states: &[ModelState],
    sample_counts: &[usize],
    weights: &[f32],
) -> ModelState {
    assert_eq!(states.len(), sample_counts.len(), "state/count length mismatch");
    assert_eq!(states.len(), weights.len(), "state/weight length mismatch");
    let coeffs: Vec<f32> = sample_counts
        .iter()
        .zip(weights.iter())
        .map(|(&n, &w)| w * n as f32)
        .collect();
    ModelState::weighted_average(states, &coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kemf_nn::model::Model;
    use kemf_nn::models::{Arch, ModelSpec};

    #[test]
    fn average_of_identical_states_is_identity() {
        let m = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 0));
        let s = m.state();
        let fused = weight_average_fusion(&[s.clone(), s.clone()], &[10, 30]);
        kemf_tensor::assert_close(&fused.params.values, &s.params.values, 1e-6);
        kemf_tensor::assert_close(&fused.buffers.values, &s.buffers.values, 1e-6);
    }

    #[test]
    fn weighting_respects_sample_counts() {
        let a = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 1)).state();
        let b = Model::new(ModelSpec::scaled(Arch::Cnn2, 1, 12, 10, 2)).state();
        let fused = weight_average_fusion(&[a.clone(), b.clone()], &[30, 10]);
        let expect: Vec<f32> = a
            .params
            .values
            .iter()
            .zip(b.params.values.iter())
            .map(|(&x, &y)| 0.75 * x + 0.25 * y)
            .collect();
        kemf_tensor::assert_close(&fused.params.values, &expect, 1e-5);
    }
}
