//! # kemf-core — FedKEMF
//!
//! The paper's contribution: **resource-aware federated learning with
//! knowledge extraction and multi-model fusion** (Yu, Qian, Jannesari,
//! SC 2023).
//!
//! * [`dml`] — deep-mutual-learning knowledge extraction (Algorithm 1):
//!   the client's local model and the tiny knowledge network teach each
//!   other; only the knowledge network is uploaded.
//! * [`ensemble`] — max-logits / avg-logits / majority-vote combination
//!   of the collected knowledge networks (Eq. 5 + ablation).
//! * [`distill`] — server-side ensemble distillation into the global
//!   knowledge network on unlabeled data (Algorithm 2, Eq. 4).
//! * [`fusion`] — the alternative weight-average fusion mode.
//! * [`resource`] — device tiers and heterogeneous model assignment
//!   (ResNet-20/32/44 side by side, Table 3).
//! * [`fedkemf`] — the full algorithm, pluggable into `kemf-fl::engine`.
//! * [`fedgems`] — the server-larger-than-client baseline: a big server
//!   model fed by selective per-sample fusion of client logits
//!   (communication stays logit-sized either way).
//!
//! ```no_run
//! use kemf_core::prelude::*;
//! use kemf_data::prelude::*;
//! use kemf_fl::prelude::*;
//! use kemf_nn::prelude::*;
//!
//! let task = SynthTask::new(SynthConfig::cifar_like(0));
//! let train = task.generate(400, 0);
//! let test = task.generate(100, 1);
//! let cfg = FlConfig { n_clients: 8, ..Default::default() };
//! let ctx = FlContext::new(cfg, &train, test);
//! let knowledge = ModelSpec::scaled(Arch::ResNet20, 3, 16, 10, 999);
//! let clients = uniform_specs(Arch::Vgg11, 8, 3, 16, 10, 1);
//! let pool = task.generate_unlabeled(200, 7);
//! let mut algo = FedKemf::new(FedKemfConfig::uniform(knowledge, clients, pool));
//! let report = Engine::run(&mut algo, &ctx, RunOptions::new()).unwrap();
//! println!("{}", report.history.to_csv());
//! ```

pub mod distill;
pub mod dml;
pub mod ensemble;
pub mod feddf;
pub mod fedgems;
pub mod fedkemf;
pub mod fedmd;
pub mod fusion;
pub mod resource;

pub mod prelude {
    //! Common imports for downstream crates.
    pub use crate::distill::{distill_ensemble, DistillConfig, DistillOutcome};
    pub use crate::dml::{dml_local_update, DmlConfig, DmlOutcome};
    pub use crate::ensemble::{
        ensemble_forward, ensemble_forward_with_precision, ensemble_logits, EnsembleStrategy,
    };
    pub use crate::feddf::FedDf;
    pub use crate::fedgems::{FedGems, FedGemsConfig};
    pub use crate::fedkemf::{FedKemf, FedKemfConfig};
    pub use crate::fedmd::{FedMd, FedMdConfig};
    pub use crate::fusion::{weight_average_fusion, FusionMode};
    pub use crate::resource::{assign_tiers, heterogeneous_specs, uniform_specs, ResourceTier};
}
