//! # kemf-data
//!
//! Datasets and federated partitioning for the FedKEMF stack:
//!
//! * [`synth`] — seeded synthetic vision tasks standing in for CIFAR-10
//!   and MNIST (offline substitution documented in DESIGN.md), with
//!   multi-mode class structure, translations, and tunable noise;
//! * [`dirichlet`] — the non-IID benchmark partitioner (per-class
//!   `Dir(α)` proportions, Li et al. 2021) with in-house Gamma sampling;
//! * [`dataset`] — in-memory datasets, shuffled mini-batching, subsets;
//! * [`stats`] — heterogeneity diagnostics for partitions.
//!
//! ```
//! use kemf_data::synth::{SynthConfig, SynthTask};
//! use kemf_data::dirichlet::dirichlet_partition;
//!
//! let task = SynthTask::new(SynthConfig::cifar_like(0));
//! let train = task.generate(200, 0);
//! let shards = dirichlet_partition(&train.labels, 10, 4, 0.1, 10, 0);
//! assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 200);
//! ```

pub mod augment;
pub mod dataset;
pub mod dirichlet;
pub mod partition;
pub mod stats;
pub mod synth;

pub mod prelude {
    //! Common imports for downstream crates.
    pub use crate::augment::{AugmentConfig, Augmenter};
    pub use crate::dataset::Dataset;
    pub use crate::dirichlet::dirichlet_partition;
    pub use crate::partition::{quantity_skew_partition, shard_partition};
    pub use crate::stats::heterogeneity;
    pub use crate::synth::{SynthConfig, SynthTask};
}
